//! The replica: acceptor + proposer + learner + state-machine host.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use obs::{Counter, FieldValue, Gauge, Histogram, Obs, SpanHandle, TraceContext};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::{Context, NodeId, SimTime, TimerToken};

use crate::ballot::{Ballot, Slot};
use crate::msg::{
    AcceptedEntry, BatchEntry, ChosenEntry, ClientOp, Command, Msg, QuorumRule, SnapshotData,
    MSG_KINDS,
};

/// A deterministic replicated state machine.
pub trait StateMachine: Clone {
    /// Commands the machine applies.
    type Command: Clone + std::fmt::Debug;
    /// Responses it produces.
    type Response: Clone + std::fmt::Debug;

    /// Apply one command, mutating the state and producing a response.
    /// Must be deterministic: identical command sequences yield identical
    /// states on every replica.
    fn apply(&mut self, cmd: &Self::Command) -> Self::Response;

    /// Whether `cmd` leaves the state unchanged when applied. Read-only
    /// commands may be served by followers from their applied prefix
    /// (session monotonicity, gated by the client's floor) instead of
    /// going through the log. Must agree with [`StateMachine::peek`]:
    /// `is_read_only(cmd)` implies `peek(cmd)` returns `Some`.
    fn is_read_only(_cmd: &Self::Command) -> bool {
        false
    }

    /// Evaluate a read-only command against the current state without
    /// mutating it. Returns `None` for commands that are not read-only.
    fn peek(&self, _cmd: &Self::Command) -> Option<Self::Response> {
        None
    }
}

/// Static replica configuration.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// The quorum rule (majority for the lock service, RS-Paxos for the
    /// coded storage service).
    pub quorum: QuorumRule,
    /// Internal bookkeeping tick.
    pub tick: SimTime,
    /// Leader heartbeat period.
    pub heartbeat_every: SimTime,
    /// Election timeout range (randomized per deadline).
    pub election_timeout: (SimTime, SimTime),
    /// Re-broadcast period for unacknowledged proposals.
    pub proposal_retry: SimTime,
    /// Maximum entries per catch-up reply batch.
    pub catchup_batch: usize,
    /// Compact the log (snapshot + prune) once this many slots have been
    /// applied since the previous compaction. `None` disables compaction.
    pub compact_after: Option<u64>,
    /// Maximum client operations folded into one slot. `1` disables
    /// batching (each request gets its own slot, the pre-batching wire
    /// behavior, byte-identical message streams).
    pub batch_max_ops: usize,
    /// How long the leader lingers on a partial batch before proposing
    /// it anyway. Only consulted when batching is enabled.
    pub batch_delay: SimTime,
    /// Maximum in-flight (accepted-but-unchosen) proposals at the
    /// leader. `0` means unlimited — the pre-pipelining behavior.
    /// With a bound, excess requests queue at the leader and are
    /// batched into slots as the window frees up.
    pub pipeline: usize,
    /// Serve read-only commands ([`StateMachine::is_read_only`]) from
    /// the local applied state instead of the log. Guarantees session
    /// monotonicity (a read never precedes the issuing client's last
    /// acknowledged write), not full linearizability.
    pub local_reads: bool,
    /// Observability sink (metrics + tracing). Disabled by default; when
    /// enabled the replica counts messages by kind, tracks elections and
    /// ballot churn, and times phase-1/phase-2 round trips in sim time.
    pub obs: Obs,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            quorum: QuorumRule::Majority,
            tick: SimTime::from_millis(50),
            heartbeat_every: SimTime::from_millis(200),
            election_timeout: (SimTime::from_millis(800), SimTime::from_millis(1600)),
            proposal_retry: SimTime::from_millis(400),
            catchup_batch: 512,
            compact_after: Some(4096),
            batch_max_ops: 1,
            batch_delay: SimTime::from_millis(5),
            pipeline: 0,
            local_reads: false,
            obs: Obs::disabled(),
        }
    }
}

const TICK_TOKEN: TimerToken = TimerToken(0);
/// Linger timer for a partial batch (token 1 is the client tick).
const BATCH_TOKEN: TimerToken = TimerToken(2);

/// The proposer's phase.
#[derive(Clone, Debug)]
enum Phase<C> {
    /// Passive: following a (possibly unknown) leader.
    Follower,
    /// Campaigning: collecting promises for `ballot`.
    Preparing {
        promises: HashMap<NodeId, (Vec<AcceptedEntry<C>>, Slot)>,
    },
    /// Leading: the stable proposer for `ballot`.
    Leading,
}

/// An in-flight proposal at the leader.
#[derive(Clone, Debug)]
struct Proposal<C> {
    value: Command<C>,
    acks: HashSet<NodeId>,
    sent_at: SimTime,
    /// Open per-operation propose span, a causal child of the request
    /// that triggered the proposal (inert when tracing is off).
    propose_span: SpanHandle,
    /// Open quorum-wait trace span, a causal child of `propose_span`.
    span: SpanHandle,
}

/// Pre-resolved instrument handles for the replica's hot paths, so the
/// per-message cost is an atomic add (or a `None` check when disabled)
/// instead of a registry lookup.
#[derive(Clone, Debug)]
struct ReplicaMetrics {
    obs: Obs,
    sent: [Counter; MSG_KINDS.len()],
    recv: [Counter; MSG_KINDS.len()],
    elections: Counter,
    leadership: Counter,
    ballot_round: Gauge,
    phase1_micros: Histogram,
    phase2_micros: Histogram,
    batches_proposed: Counter,
    batched_ops: Counter,
    reads_local: Counter,
    reads_deferred: Counter,
}

impl ReplicaMetrics {
    fn new(obs: Obs) -> Self {
        ReplicaMetrics {
            sent: std::array::from_fn(|i| obs.counter(&format!("paxos.msg_sent.{}", MSG_KINDS[i]))),
            recv: std::array::from_fn(|i| obs.counter(&format!("paxos.msg_recv.{}", MSG_KINDS[i]))),
            elections: obs.counter("paxos.elections_started"),
            leadership: obs.counter("paxos.leadership_acquired"),
            ballot_round: obs.gauge("paxos.ballot_round"),
            phase1_micros: obs.histogram("paxos.phase1_micros"),
            phase2_micros: obs.histogram("paxos.phase2_micros"),
            batches_proposed: obs.counter("paxos.batches_proposed"),
            batched_ops: obs.counter("paxos.batched_ops"),
            reads_local: obs.counter("paxos.reads_local"),
            reads_deferred: obs.counter("paxos.reads_deferred"),
            obs,
        }
    }
}

/// Sim-time milliseconds as trace microseconds.
fn sim_micros(t: SimTime) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

/// A client request parked at the leader: waiting for leadership, for a
/// reconfiguration to commit, for the pipeline window to free up, or for
/// its batch to fill.
#[derive(Clone, Debug)]
struct PendingOp<C> {
    client: NodeId,
    req_id: u64,
    op: ClientOp<C>,
    trace: TraceContext,
    /// Arrival time, for the batch linger policy.
    at: SimTime,
}

/// A follower-local read parked until the applied prefix reaches the
/// issuing client's session floor. Volatile: cleared on reboot (the
/// client retransmits and eventually falls back to the leader).
#[derive(Clone, Debug)]
struct WaitingRead<C> {
    client: NodeId,
    req_id: u64,
    cmd: C,
    floor: Slot,
}

/// Per-slot acceptor state.
#[derive(Clone, Debug)]
struct SlotState<C> {
    accepted: Option<(Ballot, Command<C>)>,
    chosen: Option<Command<C>>,
}

impl<C> Default for SlotState<C> {
    fn default() -> Self {
        SlotState {
            accepted: None,
            chosen: None,
        }
    }
}

/// A Multi-Paxos replica hosting a [`StateMachine`].
#[derive(Clone, Debug)]
pub struct Replica<SM: StateMachine> {
    me: NodeId,
    cfg: ReplicaConfig,
    /// Current membership view, sorted.
    view: Vec<NodeId>,
    /// Number of reconfigurations applied.
    view_id: u64,
    /// True once this replica applied its own removal.
    retired: bool,

    sm: SM,
    /// Per-slot protocol state (pruned below `applied`).
    slots: BTreeMap<Slot, SlotState<SM::Command>>,
    /// First unchosen slot (everything below is chosen).
    commit_index: Slot,
    /// First unapplied slot (`applied ≤ commit_index`).
    applied: Slot,
    /// Compaction floor: slots below this were pruned into the snapshot
    /// implied by the live state machine.
    floor: Slot,
    /// Exactly-once cache: client → (last applied req_id, response).
    dedup: HashMap<NodeId, (u64, Option<SM::Response>)>,

    /// Highest ballot promised (acceptor duty).
    promised: Ballot,
    /// Our own ballot when campaigning or leading.
    ballot: Ballot,
    phase: Phase<SM::Command>,
    /// Who we believe leads (for request forwarding).
    leader: Option<NodeId>,
    /// In-flight proposals (leader only).
    proposals: BTreeMap<Slot, Proposal<SM::Command>>,
    /// Next free slot (leader only).
    next_slot: Slot,
    /// Requests waiting for leadership, for a reconfig to commit, for
    /// the pipeline window, or for their batch to fill — each with the
    /// causal trace it arrived under.
    pending: VecDeque<PendingOp<SM::Command>>,
    /// True while a Reconfig proposal is in flight (stalls later ones).
    reconfig_in_flight: bool,
    /// Follower-local reads waiting for the applied prefix to reach
    /// their session floor; drained in one combined pass per advance.
    waiting_reads: Vec<WaitingRead<SM::Command>>,

    election_deadline: SimTime,
    last_heartbeat_sent: SimTime,
    rng: ChaCha8Rng,
    metrics: ReplicaMetrics,
    /// Open phase-1 trace span and its start time while campaigning.
    phase1_open: Option<(SpanHandle, SimTime)>,
}

impl<SM: StateMachine> Replica<SM> {
    /// Create a replica with the given identity, initial view, state
    /// machine and RNG seed (used only for election jitter).
    pub fn new(me: NodeId, view: Vec<NodeId>, sm: SM, cfg: ReplicaConfig, seed: u64) -> Self {
        let mut view = view;
        view.sort_unstable();
        view.dedup();
        assert!(view.contains(&me) || view.is_empty(), "replica not in view");
        let metrics = ReplicaMetrics::new(cfg.obs.clone());
        Replica {
            me,
            cfg,
            view,
            view_id: 0,
            retired: false,
            sm,
            slots: BTreeMap::new(),
            commit_index: 0,
            applied: 0,
            floor: 0,
            dedup: HashMap::new(),
            promised: Ballot::BOTTOM,
            ballot: Ballot::BOTTOM,
            phase: Phase::Follower,
            leader: None,
            proposals: BTreeMap::new(),
            next_slot: 0,
            pending: VecDeque::new(),
            reconfig_in_flight: false,
            waiting_reads: Vec::new(),
            election_deadline: SimTime::ZERO,
            last_heartbeat_sent: SimTime::ZERO,
            rng: ChaCha8Rng::seed_from_u64(seed ^ (me.0 as u64).wrapping_mul(0x9E37_79B9)),
            metrics,
            phase1_open: None,
        }
    }

    // ------------------------------------------------------ introspection

    /// This replica's node id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// The current membership view.
    pub fn view(&self) -> &[NodeId] {
        &self.view
    }

    /// Number of reconfigurations applied so far.
    pub fn view_id(&self) -> u64 {
        self.view_id
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        matches!(self.phase, Phase::Leading)
    }

    /// The believed leader, if any.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader
    }

    /// First unchosen slot.
    pub fn commit_index(&self) -> Slot {
        self.commit_index
    }

    /// The hosted state machine (applied prefix).
    pub fn state_machine(&self) -> &SM {
        &self.sm
    }

    /// The compaction floor: slots below this are no longer in the log.
    pub fn compaction_floor(&self) -> Slot {
        self.floor
    }

    /// Package the applied state as a snapshot.
    fn snapshot(&self) -> SnapshotData<SM> {
        SnapshotData {
            applied: self.applied,
            view: self.view.clone(),
            view_id: self.view_id,
            sm: self.sm.clone(),
            dedup: self
                .dedup
                .iter()
                .map(|(&c, (r, resp))| (c, *r, resp.clone()))
                .collect(),
        }
    }

    /// Adopt a snapshot that is ahead of the local applied prefix.
    fn install_snapshot(&mut self, snap: SnapshotData<SM>, now: SimTime) {
        if snap.applied <= self.applied {
            return;
        }
        self.sm = snap.sm;
        self.dedup = snap
            .dedup
            .into_iter()
            .map(|(c, r, resp)| (c, (r, resp)))
            .collect();
        if snap.view_id >= self.view_id {
            self.view = snap.view;
            self.view_id = snap.view_id;
        }
        self.applied = snap.applied;
        self.commit_index = self.commit_index.max(snap.applied);
        self.floor = self.floor.max(snap.applied);
        let cut: Vec<Slot> = self.slots.range(..snap.applied).map(|(&s, _)| s).collect();
        for s in cut {
            self.slots.remove(&s);
        }
        if !self.view.contains(&self.me) {
            self.retired = true;
            self.step_down(now);
        }
    }

    /// Snapshot and prune the applied prefix when due.
    fn maybe_compact(&mut self) {
        let Some(every) = self.cfg.compact_after else {
            return;
        };
        if self.applied.saturating_sub(self.floor) < every {
            return;
        }
        self.floor = self.applied;
        let cut: Vec<Slot> = self.slots.range(..self.floor).map(|(&s, _)| s).collect();
        for s in cut {
            self.slots.remove(&s);
        }
    }

    /// Whether this replica applied its own removal from the view.
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// The chosen log prefix as applied commands (for consistency checks).
    pub fn applied_prefix(&self) -> Vec<(Slot, Command<SM::Command>)> {
        self.slots
            .iter()
            .filter(|(s, _)| **s < self.applied)
            .filter_map(|(s, st)| st.chosen.clone().map(|v| (*s, v)))
            .collect()
    }

    fn quorum(&self) -> usize {
        self.cfg.quorum.quorum_size(self.view.len())
    }

    // ------------------------------------------------------ observability

    /// Send one message, counting it by kind.
    fn send_msg(&self, ctx: &mut Context<Msg<SM>>, to: NodeId, msg: Msg<SM>) {
        self.metrics.sent[msg.kind_index()].inc();
        ctx.send(to, msg);
    }

    /// Broadcast to the view (self excluded, matching
    /// [`Context::broadcast`]), counting each copy by kind.
    fn broadcast_msg(&self, ctx: &mut Context<Msg<SM>>, msg: Msg<SM>) {
        let fanout = self.view.iter().filter(|&&p| p != self.me).count();
        self.metrics.sent[msg.kind_index()].add(fanout as u64);
        ctx.broadcast(self.view.iter(), msg);
    }

    /// [`Replica::broadcast_msg`] under an explicit trace context, so
    /// per-operation protocol traffic (Accepts, Commits) stays parented
    /// under the operation's propose span rather than whatever message
    /// happened to trigger the broadcast.
    fn broadcast_msg_traced(&self, ctx: &mut Context<Msg<SM>>, msg: Msg<SM>, trace: TraceContext) {
        let me = self.me;
        let fanout = self.view.iter().filter(|&&p| p != me).count();
        self.metrics.sent[msg.kind_index()].add(fanout as u64);
        for &p in &self.view {
            if p != me {
                ctx.send_traced(p, msg.clone(), trace);
            }
        }
    }

    /// Drive the shared trace clock to the simulation's current time.
    fn sync_obs_time(&self, now: SimTime) {
        self.metrics.obs.set_time_micros(sim_micros(now));
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        let (lo, hi) = self.cfg.election_timeout;
        let span = hi.as_millis().saturating_sub(lo.as_millis()).max(1);
        let jitter = self.rng.gen_range(0..span);
        self.election_deadline = now + lo + SimTime::from_millis(jitter);
    }

    fn step_down(&mut self, now: SimTime) {
        if let Some((span, _)) = self.phase1_open.take() {
            self.metrics
                .obs
                .trace
                .span_close(span, "paxos.election", &[("won", FieldValue::Bool(false))]);
        }
        let open_spans: Vec<(SpanHandle, SpanHandle)> = self
            .proposals
            .values()
            .map(|p| (p.span, p.propose_span))
            .collect();
        for (span, propose_span) in open_spans {
            self.metrics.obs.trace.span_close(
                span,
                "paxos.quorum_wait",
                &[("aborted", FieldValue::Bool(true))],
            );
            self.metrics.obs.trace.span_close(
                propose_span,
                "paxos.propose",
                &[("aborted", FieldValue::Bool(true))],
            );
        }
        self.phase = Phase::Follower;
        self.proposals.clear();
        self.reconfig_in_flight = false;
        self.reset_election_deadline(now);
    }

    /// Recover after a crash: drop volatile (in-memory) state, keep the
    /// durable (on-disk) state — `promised`, accepted/chosen slots, the
    /// applied state machine and the exactly-once cache.
    ///
    /// Paxos quorum intersection is only sound if acceptor state survives
    /// restarts: a node that re-promises with an empty accepted set can
    /// complete a new-leader quorum that excludes every acker of an
    /// already-chosen value, letting the new leader choose a different
    /// command for the same slot. A replica whose disk is truly gone must
    /// rejoin as a *new* node via reconfiguration, not reuse its id.
    pub fn reboot(&mut self) {
        self.step_down(SimTime::ZERO);
        self.leader = None;
        // In-flight client requests died with the process; clients retry.
        self.pending.clear();
        self.waiting_reads.clear();
        // `on_start` re-arms the tick timer and election deadline at boot.
    }

    // ----------------------------------------------------------- election

    fn start_election(&mut self, ctx: &mut Context<Msg<SM>>) {
        if self.retired || !self.view.contains(&self.me) {
            return;
        }
        let round = self.promised.round.max(self.ballot.round) + 1;
        self.ballot = Ballot {
            round,
            node: self.me,
        };
        self.promised = self.ballot;
        self.leader = None;
        let mut promises = HashMap::new();
        promises.insert(
            self.me,
            (self.accepted_tail(self.commit_index), self.commit_index),
        );
        self.phase = Phase::Preparing { promises };
        self.reset_election_deadline(ctx.now);
        self.metrics.elections.inc();
        self.metrics.ballot_round.set(round as f64);
        if let Some((span, _)) = self.phase1_open.take() {
            // A re-election supersedes the previous campaign.
            self.metrics
                .obs
                .trace
                .span_close(span, "paxos.election", &[("won", FieldValue::Bool(false))]);
        }
        let span = self.metrics.obs.trace.span_open(
            "paxos.election",
            &[
                ("node", FieldValue::U64(self.me.0 as u64)),
                ("round", FieldValue::U64(round)),
            ],
        );
        self.phase1_open = Some((span, ctx.now));
        let msg = Msg::Prepare {
            ballot: self.ballot,
            from_slot: self.commit_index,
        };
        self.broadcast_msg(ctx, msg);
        // A single-node view elects itself immediately.
        self.try_become_leader(ctx);
    }

    fn accepted_tail(&self, from: Slot) -> Vec<AcceptedEntry<SM::Command>> {
        self.slots
            .range(from..)
            .filter_map(|(&slot, st)| {
                if st.chosen.is_some() {
                    return None;
                }
                st.accepted.as_ref().map(|(ballot, value)| AcceptedEntry {
                    slot,
                    ballot: *ballot,
                    value: value.clone(),
                })
            })
            .collect()
    }

    fn chosen_tail(&self, from: Slot) -> Vec<ChosenEntry<SM::Command>> {
        self.slots
            .range(from..)
            .filter_map(|(&slot, st)| {
                st.chosen.as_ref().map(|value| ChosenEntry {
                    slot,
                    value: value.clone(),
                })
            })
            .collect()
    }

    fn try_become_leader(&mut self, ctx: &mut Context<Msg<SM>>) {
        let quorum = self.quorum();
        let Phase::Preparing { promises } = &self.phase else {
            return;
        };
        if promises.len() < quorum {
            return;
        }
        let promises = promises.clone();
        // Merge accepted values: per slot, keep the highest-ballot value.
        let mut merged: BTreeMap<Slot, (Ballot, Command<SM::Command>)> = BTreeMap::new();
        let mut max_commit = self.commit_index;
        for (accepted, ci) in promises.values() {
            max_commit = max_commit.max(*ci);
            for e in accepted {
                let replace = merged
                    .get(&e.slot)
                    .map(|(b, _)| *b < e.ballot)
                    .unwrap_or(true);
                if replace {
                    merged.insert(e.slot, (e.ballot, e.value.clone()));
                }
            }
        }
        self.phase = Phase::Leading;
        self.leader = Some(self.me);
        self.metrics.leadership.inc();
        self.metrics.obs.trace.event(
            "paxos.takeover",
            &[
                ("node", FieldValue::U64(self.me.0 as u64)),
                ("round", FieldValue::U64(self.ballot.round)),
                ("commit_index", FieldValue::U64(self.commit_index)),
                ("merged", FieldValue::U64(merged.len() as u64)),
                (
                    "merged_hi",
                    FieldValue::U64(merged.keys().next_back().copied().unwrap_or(0)),
                ),
                (
                    "promisers",
                    FieldValue::U64(promises.keys().fold(0u64, |m, n| m | (1 << (n.0 as u64 % 64)))),
                ),
            ],
        );
        if let Some((span, started)) = self.phase1_open.take() {
            self.metrics
                .phase1_micros
                .record(sim_micros(ctx.now.saturating_sub(started)));
            self.metrics
                .obs
                .trace
                .span_close(span, "paxos.election", &[("won", FieldValue::Bool(true))]);
        }
        self.last_heartbeat_sent = SimTime::ZERO; // heartbeat asap
                                                  // Re-propose merged values, fill gaps with no-ops up to the top.
        // Fresh proposals must start past every slot already decided, not
        // just past the merged *accepted* entries: a chosen slot adopted
        // from a promise can sit beyond a gap (commit_index stalls at the
        // gap), and a peer's commit index proves everything below it was
        // chosen somewhere. Assigning a fresh command to such a slot would
        // overwrite a decided value.
        let top = merged.keys().next_back().copied().map(|s| s + 1).unwrap_or(0);
        let chosen_top = self
            .slots
            .iter()
            .rev()
            .find(|(_, st)| st.chosen.is_some())
            .map(|(&s, _)| s + 1)
            .unwrap_or(0);
        self.next_slot = self
            .commit_index
            .max(top)
            .max(chosen_top)
            .max(max_commit);
        let mut to_propose: Vec<(Slot, Command<SM::Command>)> = Vec::new();
        for slot in self.commit_index..self.next_slot {
            if self.slot_state(slot).chosen.is_some() {
                continue;
            }
            let value = merged
                .get(&slot)
                .map(|(_, v)| v.clone())
                .unwrap_or(Command::Noop);
            to_propose.push((slot, value));
        }
        for (slot, value) in to_propose {
            // Re-proposals triggered by the view change are causally the
            // election's work: parent them under whatever message closed
            // the quorum (usually the deciding Promise).
            let trace = ctx.trace();
            self.send_accepts(slot, value, trace, ctx);
        }
        // Lagging behind a peer's commit index: fetch the chosen prefix.
        if max_commit > self.commit_index {
            if let Some((&peer, _)) = promises.iter().find(|(_, (_, ci))| *ci >= max_commit) {
                if peer != self.me {
                    self.send_msg(
                        ctx,
                        peer,
                        Msg::CatchupRequest {
                            from_slot: self.commit_index,
                        },
                    );
                }
            }
        }
        self.flush_pending(ctx);
        self.send_heartbeat(ctx);
    }

    // --------------------------------------------------------- proposing

    fn slot_state(&mut self, slot: Slot) -> &mut SlotState<SM::Command> {
        self.slots.entry(slot).or_default()
    }

    fn send_accepts(
        &mut self,
        slot: Slot,
        value: Command<SM::Command>,
        trace: TraceContext,
        ctx: &mut Context<Msg<SM>>,
    ) {
        let ballot = self.ballot;
        // Self-accept immediately.
        let st = self.slot_state(slot);
        st.accepted = Some((ballot, value.clone()));
        let mut acks = HashSet::new();
        acks.insert(self.me);
        // Per-operation spans: the propose span is a causal child of the
        // request (or election) that produced the value; the quorum wait
        // nests inside it and the phase-2 broadcast rides its context.
        let propose_span = self.metrics.obs.trace.span_open_causal(
            "paxos.propose",
            trace,
            &[
                ("slot", FieldValue::U64(slot)),
                ("node", FieldValue::U64(self.me.0 as u64)),
            ],
        );
        let span = self.metrics.obs.trace.span_open_causal(
            "paxos.quorum_wait",
            propose_span.context(),
            &[("slot", FieldValue::U64(slot))],
        );
        self.proposals.insert(
            slot,
            Proposal {
                value: value.clone(),
                acks,
                sent_at: ctx.now,
                propose_span,
                span,
            },
        );
        self.broadcast_msg_traced(
            ctx,
            Msg::Accept {
                ballot,
                slot,
                value,
            },
            span.context(),
        );
        self.maybe_choose(slot, ctx);
    }

    /// Whether requests go through the batching/pipelining queue rather
    /// than the classic one-request-one-slot fast path. Off by default;
    /// the classic path keeps byte-identical message streams.
    fn batching_enabled(&self) -> bool {
        self.cfg.batch_max_ops > 1 || self.cfg.pipeline > 0
    }

    /// Whether a proposal for `(client, req_id)` is already in flight.
    fn in_flight_dup(&self, client: NodeId, req_id: u64) -> bool {
        self.proposals.values().any(|p| match &p.value {
            Command::App {
                client: c,
                req_id: r,
                ..
            }
            | Command::Reconfig {
                client: c,
                req_id: r,
                ..
            } => *c == client && *r == req_id,
            Command::Batch(entries) => entries
                .iter()
                .any(|e| e.client == client && e.req_id == req_id),
            Command::Noop => false,
        })
    }

    fn flush_pending(&mut self, ctx: &mut Context<Msg<SM>>) {
        if !matches!(self.phase, Phase::Leading) {
            return;
        }
        if self.batching_enabled() {
            self.maybe_flush_batches(true, ctx);
            return;
        }
        while !self.reconfig_in_flight {
            let Some(p) = self.pending.pop_front() else {
                break;
            };
            self.propose_op(p.client, p.req_id, p.op, p.trace, ctx);
        }
    }

    /// Queue one request for batched proposing (dedup/stale/duplicate
    /// checks up front, mirroring [`Replica::propose_op`]).
    fn enqueue_op(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: ClientOp<SM::Command>,
        trace: TraceContext,
        ctx: &mut Context<Msg<SM>>,
    ) {
        if let Some((last, resp)) = self.dedup.get(&client) {
            if *last == req_id {
                let resp = resp.clone();
                let at = self.applied;
                self.send_msg(ctx, client, Msg::Response { req_id, resp, at });
                return;
            }
            if *last > req_id {
                return; // stale duplicate
            }
        }
        if self.in_flight_dup(client, req_id)
            || self
                .pending
                .iter()
                .any(|p| p.client == client && p.req_id == req_id)
        {
            return; // retransmission of something already queued
        }
        self.pending.push_back(PendingOp {
            client,
            req_id,
            op,
            trace,
            at: ctx.now,
        });
        self.maybe_flush_batches(false, ctx);
    }

    /// Drain the pending queue into slot proposals: full batches go out
    /// immediately, a partial batch lingers up to `batch_delay` (unless
    /// `force`), and the pipeline cap bounds in-flight proposals. Called
    /// on request arrival, on the linger timer, when a slot is chosen,
    /// and (forced) at leadership acquisition.
    fn maybe_flush_batches(&mut self, force: bool, ctx: &mut Context<Msg<SM>>) {
        if !matches!(self.phase, Phase::Leading) {
            return;
        }
        let max_ops = self.cfg.batch_max_ops.max(1);
        loop {
            if self.reconfig_in_flight || self.pending.is_empty() {
                return;
            }
            if self.cfg.pipeline > 0 && self.proposals.len() >= self.cfg.pipeline {
                return; // window full; maybe_choose re-flushes on commit
            }
            // A reconfiguration is never batched: propose it alone.
            if matches!(
                self.pending.front().map(|p| &p.op),
                Some(ClientOp::Reconfig { .. })
            ) {
                let p = self.pending.pop_front().expect("checked non-empty");
                self.propose_op(p.client, p.req_id, p.op, p.trace, ctx);
                continue;
            }
            let apps = self
                .pending
                .iter()
                .take_while(|p| matches!(p.op, ClientOp::App(_)))
                .count();
            let oldest = self.pending.front().map(|p| p.at).unwrap_or(ctx.now);
            let age = ctx.now.saturating_sub(oldest);
            if !force && apps < max_ops && age < self.cfg.batch_delay {
                // Linger: re-check when the oldest entry's delay expires.
                let wait = self.cfg.batch_delay.saturating_sub(age);
                ctx.set_timer(wait.max(SimTime::from_millis(1)), BATCH_TOKEN);
                return;
            }
            let take = apps.min(max_ops);
            let mut entries: Vec<BatchEntry<SM::Command>> = Vec::with_capacity(take);
            let mut trace: Option<TraceContext> = None;
            for _ in 0..take {
                let p = self.pending.pop_front().expect("counted above");
                let ClientOp::App(cmd) = p.op else {
                    unreachable!("take_while yields only App ops");
                };
                // The batch's protocol traffic is parented under the
                // first entry's trace; later joiners get a causal marker
                // in their own traces instead.
                if trace.is_none() {
                    trace = Some(p.trace);
                } else {
                    self.metrics.obs.trace.event_causal(
                        "paxos.batch_join",
                        p.trace,
                        &[("req_id", FieldValue::U64(p.req_id))],
                    );
                }
                entries.push(BatchEntry {
                    client: p.client,
                    req_id: p.req_id,
                    cmd,
                });
            }
            self.metrics.batches_proposed.inc();
            self.metrics.batched_ops.add(entries.len() as u64);
            let value = if entries.len() == 1 {
                let e = entries.pop().expect("len checked");
                Command::App {
                    client: e.client,
                    req_id: e.req_id,
                    cmd: e.cmd,
                }
            } else {
                Command::Batch(entries)
            };
            while self
                .slots
                .get(&self.next_slot)
                .is_some_and(|st| st.chosen.is_some())
            {
                self.next_slot += 1;
            }
            let slot = self.next_slot;
            self.next_slot += 1;
            self.send_accepts(slot, value, trace.expect("take >= 1"), ctx);
        }
    }

    fn propose_op(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: ClientOp<SM::Command>,
        trace: TraceContext,
        ctx: &mut Context<Msg<SM>>,
    ) {
        // Dedup retransmissions of the last applied request.
        if let Some((last, resp)) = self.dedup.get(&client) {
            if *last == req_id {
                let resp = resp.clone();
                let at = self.applied;
                self.send_msg(ctx, client, Msg::Response { req_id, resp, at });
                return;
            }
            if *last > req_id {
                return; // stale duplicate
            }
        }
        // Duplicate of an in-flight proposal: ignore (it will answer).
        if self.in_flight_dup(client, req_id) {
            return;
        }
        let value = match op {
            ClientOp::App(cmd) => Command::App {
                client,
                req_id,
                cmd,
            },
            ClientOp::Reconfig { add, remove } => {
                if self.reconfig_in_flight {
                    self.pending.push_back(PendingOp {
                        client,
                        req_id,
                        op: ClientOp::Reconfig { add, remove },
                        trace,
                        at: ctx.now,
                    });
                    return;
                }
                self.reconfig_in_flight = true;
                Command::Reconfig {
                    client,
                    req_id,
                    add,
                    remove,
                }
            }
        };
        // Never allocate a slot that is already decided (a commit adopted
        // from a peer can land beyond the contiguous prefix).
        while self
            .slots
            .get(&self.next_slot)
            .is_some_and(|st| st.chosen.is_some())
        {
            self.next_slot += 1;
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        self.send_accepts(slot, value, trace, ctx);
    }

    fn maybe_choose(&mut self, slot: Slot, ctx: &mut Context<Msg<SM>>) {
        let quorum = self.quorum();
        let Some(p) = self.proposals.get(&slot) else {
            return;
        };
        if p.acks.len() < quorum {
            return;
        }
        let p = self.proposals.remove(&slot).expect("checked above");
        let value = p.value;
        self.metrics
            .phase2_micros
            .record(sim_micros(ctx.now.saturating_sub(p.sent_at)));
        self.metrics.obs.trace.span_close(
            p.span,
            "paxos.quorum_wait",
            &[
                ("slot", FieldValue::U64(slot)),
                ("acks", FieldValue::U64(p.acks.len() as u64)),
            ],
        );
        let propose_ctx = p.propose_span.context();
        self.metrics.obs.trace.event_causal(
            "paxos.commit",
            propose_ctx,
            &[("slot", FieldValue::U64(slot))],
        );
        self.metrics
            .obs
            .trace
            .span_close(p.propose_span, "paxos.propose", &[("slot", FieldValue::U64(slot))]);
        // Chosen values are write-once (mirroring `note_chosen`): if a
        // commit for this slot was adopted while our proposal was in
        // flight, Paxos guarantees the values agree — keep and re-announce
        // the stored one rather than trusting the in-flight copy.
        let st = self.slot_state(slot);
        if st.chosen.is_none() {
            st.chosen = Some(value);
        }
        let value = st.chosen.clone().expect("just set");
        self.broadcast_msg_traced(
            ctx,
            Msg::Commit {
                entry: ChosenEntry { slot, value },
            },
            propose_ctx,
        );
        self.advance(ctx);
        // A slot just left the pipeline window: queued requests may go.
        if self.batching_enabled() {
            self.maybe_flush_batches(false, ctx);
        }
    }

    // ----------------------------------------------------------- learning

    fn note_chosen(&mut self, entry: ChosenEntry<SM::Command>, ctx: &mut Context<Msg<SM>>) {
        let st = self.slot_state(entry.slot);
        if st.chosen.is_none() {
            st.chosen = Some(entry.value);
        }
        self.advance(ctx);
    }

    /// Apply every contiguously chosen slot, then compact when due.
    fn advance(&mut self, ctx: &mut Context<Msg<SM>>) {
        loop {
            let Some(value) = self
                .slots
                .get(&self.commit_index)
                .and_then(|st| st.chosen.clone())
            else {
                break;
            };
            let slot = self.commit_index;
            self.commit_index += 1;
            self.apply(slot, value, ctx);
        }
        self.maybe_compact();
        self.serve_waiting_reads(ctx);
    }

    /// The flat-combining pass: one scan at the current applied point
    /// answers every parked read whose session floor has been reached.
    fn serve_waiting_reads(&mut self, ctx: &mut Context<Msg<SM>>) {
        if self.waiting_reads.is_empty() {
            return;
        }
        let applied = self.applied;
        let (ready, still): (Vec<_>, Vec<_>) = self
            .waiting_reads
            .drain(..)
            .partition(|r| r.floor <= applied);
        self.waiting_reads = still;
        for r in ready {
            self.serve_read(r.client, r.req_id, &r.cmd, ctx);
        }
    }

    /// Answer a read-only command from the local applied state.
    fn serve_read(
        &mut self,
        client: NodeId,
        req_id: u64,
        cmd: &SM::Command,
        ctx: &mut Context<Msg<SM>>,
    ) {
        let resp = self
            .sm
            .peek(cmd)
            .expect("is_read_only commands must be peekable");
        let at = self.applied;
        self.metrics.reads_local.inc();
        self.send_msg(ctx, client, Msg::ReadResponse { req_id, resp, at });
    }

    fn apply(&mut self, slot: Slot, value: Command<SM::Command>, ctx: &mut Context<Msg<SM>>) {
        debug_assert_eq!(slot, self.applied, "out-of-order apply");
        self.applied = slot + 1;
        // Applies triggered by a traced Commit/Accepted land inside the
        // operation's trace; catch-up applies carry their own context.
        self.metrics.obs.trace.event_causal(
            "paxos.apply",
            ctx.trace(),
            &[
                ("slot", FieldValue::U64(slot)),
                ("node", FieldValue::U64(self.me.0 as u64)),
            ],
        );
        match value {
            Command::Noop => {}
            Command::App {
                client,
                req_id,
                cmd,
            } => {
                self.apply_app(client, req_id, &cmd, ctx);
            }
            Command::Batch(entries) => {
                // Atomic within the slot: every entry applies (in order)
                // before the next slot is considered.
                for e in entries {
                    self.apply_app(e.client, e.req_id, &e.cmd, ctx);
                }
            }
            Command::Reconfig {
                client,
                req_id,
                add,
                remove,
            } => {
                let mut joiners = Vec::new();
                for n in add {
                    if !self.view.contains(&n) {
                        self.view.push(n);
                        joiners.push(n);
                    }
                }
                self.view.retain(|n| !remove.contains(n));
                self.view.sort_unstable();
                self.view_id += 1;
                self.dedup.insert(client, (req_id, None));
                if !self.view.contains(&self.me) {
                    self.retired = true;
                    self.step_down(ctx.now);
                }
                if matches!(self.phase, Phase::Leading) {
                    self.reconfig_in_flight = false;
                    let at = self.applied;
                    self.send_msg(
                        ctx,
                        client,
                        Msg::Response {
                            req_id,
                            resp: None,
                            at,
                        },
                    );
                    // New members need the history to join the view: the
                    // snapshot for the compacted prefix plus the live tail.
                    let snapshot = (self.floor > 0).then(|| self.snapshot());
                    let entries = self.chosen_tail(self.floor);
                    for peer in joiners {
                        if peer != self.me {
                            self.send_msg(
                                ctx,
                                peer,
                                Msg::CatchupReply {
                                    snapshot: snapshot.clone(),
                                    entries: entries.clone(),
                                },
                            );
                        }
                    }
                    self.flush_pending(ctx);
                }
            }
        }
    }

    /// Apply one application command with exactly-once semantics and
    /// (at the leader) answer the client. Shared by singleton and
    /// batched slot values; `self.applied` already points past the
    /// containing slot, so it doubles as the response's `at`.
    fn apply_app(
        &mut self,
        client: NodeId,
        req_id: u64,
        cmd: &SM::Command,
        ctx: &mut Context<Msg<SM>>,
    ) {
        let already = self
            .dedup
            .get(&client)
            .map(|(last, _)| *last >= req_id)
            .unwrap_or(false);
        let resp = if already {
            self.dedup.get(&client).and_then(|(_, r)| r.clone())
        } else {
            let r = self.sm.apply(cmd);
            self.dedup.insert(client, (req_id, Some(r.clone())));
            Some(r)
        };
        if matches!(self.phase, Phase::Leading) {
            let at = self.applied;
            self.send_msg(
                ctx,
                client,
                Msg::Response { req_id, resp, at },
            );
        }
    }

    // ---------------------------------------------------------- heartbeat

    fn send_heartbeat(&mut self, ctx: &mut Context<Msg<SM>>) {
        self.last_heartbeat_sent = ctx.now;
        self.broadcast_msg(
            ctx,
            Msg::Heartbeat {
                ballot: self.ballot,
                commit_index: self.commit_index,
            },
        );
    }

    // ---------------------------------------------------- actor callbacks

    /// Boot: arm the tick timer and stagger the first election.
    pub fn on_start(&mut self, ctx: &mut Context<Msg<SM>>) {
        self.reset_election_deadline(ctx.now);
        ctx.set_timer(self.cfg.tick, TICK_TOKEN);
    }

    /// Periodic bookkeeping.
    pub fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<Msg<SM>>) {
        self.sync_obs_time(ctx.now);
        if token == BATCH_TOKEN {
            // A batch linger expired; flush whatever is due.
            self.maybe_flush_batches(false, ctx);
            return;
        }
        ctx.set_timer(self.cfg.tick, TICK_TOKEN);
        if self.retired {
            return;
        }
        match self.phase {
            Phase::Leading => {
                if ctx.now.saturating_sub(self.last_heartbeat_sent) >= self.cfg.heartbeat_every {
                    self.send_heartbeat(ctx);
                }
                // Backstop for the linger timer (lost across reboots).
                if self.batching_enabled() && !self.pending.is_empty() {
                    self.maybe_flush_batches(false, ctx);
                }
                // Re-broadcast stale proposals. Retries are causally part
                // of the original quorum wait, not the timer that noticed
                // the staleness.
                let stale: Vec<(Slot, Command<SM::Command>, TraceContext)> = self
                    .proposals
                    .iter()
                    .filter(|(_, p)| ctx.now.saturating_sub(p.sent_at) >= self.cfg.proposal_retry)
                    .map(|(&s, p)| (s, p.value.clone(), p.span.context()))
                    .collect();
                let ballot = self.ballot;
                for (slot, value, trace) in stale {
                    if let Some(p) = self.proposals.get_mut(&slot) {
                        p.sent_at = ctx.now;
                    }
                    self.broadcast_msg_traced(
                        ctx,
                        Msg::Accept {
                            ballot,
                            slot,
                            value,
                        },
                        trace,
                    );
                }
            }
            _ => {
                if ctx.now >= self.election_deadline {
                    self.start_election(ctx);
                }
            }
        }
    }

    /// Message dispatch.
    pub fn on_message(&mut self, from: NodeId, msg: Msg<SM>, ctx: &mut Context<Msg<SM>>) {
        self.sync_obs_time(ctx.now);
        self.metrics.recv[msg.kind_index()].inc();
        if self.retired {
            // A retired node still answers catch-up (it has the history).
            if let Msg::CatchupRequest { from_slot } = msg {
                let snapshot = (from_slot < self.floor).then(|| self.snapshot());
                let entries = self.chosen_tail(from_slot.max(self.floor));
                self.send_msg(ctx, from, Msg::CatchupReply { snapshot, entries });
            }
            return;
        }
        match msg {
            Msg::Prepare { ballot, from_slot } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if ballot.node != self.me {
                        if matches!(self.phase, Phase::Leading | Phase::Preparing { .. }) {
                            self.step_down(ctx.now);
                        }
                        self.leader = None;
                        self.reset_election_deadline(ctx.now);
                    }
                    let snapshot = (from_slot < self.floor).then(|| self.snapshot());
                    let reply = Msg::Promise {
                        ballot,
                        accepted: self.accepted_tail(from_slot),
                        chosen: self.chosen_tail(from_slot),
                        commit_index: self.commit_index,
                        snapshot,
                    };
                    self.send_msg(ctx, from, reply);
                } else {
                    self.send_msg(
                        ctx,
                        from,
                        Msg::Reject {
                            promised: self.promised,
                        },
                    );
                }
            }
            Msg::Promise {
                ballot,
                accepted,
                chosen,
                commit_index,
                snapshot,
            } => {
                // Adopt state regardless of phase: a snapshot first (it
                // may cover compacted history), then any chosen entries.
                if let Some(snap) = snapshot {
                    self.install_snapshot(snap, ctx.now);
                }
                for e in chosen {
                    self.note_chosen(e, ctx);
                }
                if ballot != self.ballot {
                    return;
                }
                if let Phase::Preparing { promises } = &mut self.phase {
                    promises.insert(from, (accepted, commit_index));
                    self.try_become_leader(ctx);
                }
            }
            Msg::Accept {
                ballot,
                slot,
                value,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if ballot.node != self.me {
                        if matches!(self.phase, Phase::Leading | Phase::Preparing { .. }) {
                            self.step_down(ctx.now);
                        }
                        self.leader = Some(ballot.node);
                        self.reset_election_deadline(ctx.now);
                    }
                    self.slot_state(slot).accepted = Some((ballot, value));
                    self.send_msg(ctx, from, Msg::Accepted { ballot, slot });
                } else {
                    self.send_msg(
                        ctx,
                        from,
                        Msg::Reject {
                            promised: self.promised,
                        },
                    );
                }
            }
            Msg::Accepted { ballot, slot } => {
                if ballot == self.ballot && matches!(self.phase, Phase::Leading) {
                    if let Some(p) = self.proposals.get_mut(&slot) {
                        p.acks.insert(from);
                        self.maybe_choose(slot, ctx);
                    }
                }
            }
            Msg::Reject { promised } => {
                if promised > self.promised {
                    self.promised = promised;
                }
                if promised > self.ballot
                    && matches!(self.phase, Phase::Leading | Phase::Preparing { .. })
                {
                    self.step_down(ctx.now);
                }
            }
            Msg::Commit { entry } => {
                self.note_chosen(entry, ctx);
            }
            Msg::Heartbeat {
                ballot,
                commit_index,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if ballot.node != self.me {
                        if matches!(self.phase, Phase::Leading | Phase::Preparing { .. }) {
                            self.step_down(ctx.now);
                        }
                        self.leader = Some(ballot.node);
                    }
                    self.reset_election_deadline(ctx.now);
                    if commit_index > self.commit_index {
                        self.send_msg(
                            ctx,
                            ballot.node,
                            Msg::CatchupRequest {
                                from_slot: self.commit_index,
                            },
                        );
                    }
                }
            }
            Msg::CatchupRequest { from_slot } => {
                let snapshot = (from_slot < self.floor).then(|| self.snapshot());
                let mut entries = self.chosen_tail(from_slot.max(self.floor));
                entries.truncate(self.cfg.catchup_batch);
                self.send_msg(ctx, from, Msg::CatchupReply { snapshot, entries });
            }
            Msg::CatchupReply { snapshot, entries } => {
                if let Some(snap) = snapshot {
                    self.install_snapshot(snap, ctx.now);
                }
                for e in entries {
                    self.note_chosen(e, ctx);
                }
            }
            Msg::Request { client, req_id, op } => {
                self.handle_request(client, req_id, op, ctx);
            }
            Msg::ReadRequest {
                client,
                req_id,
                cmd,
                floor,
            } => {
                if self.cfg.local_reads && SM::is_read_only(&cmd) {
                    if self.applied >= floor {
                        self.serve_read(client, req_id, &cmd, ctx);
                    } else {
                        // Behind the client's session: park until the
                        // applied prefix catches up (served in the next
                        // combined pass), preserving monotonicity.
                        self.metrics.reads_deferred.inc();
                        self.waiting_reads.push(WaitingRead {
                            client,
                            req_id,
                            cmd,
                            floor,
                        });
                    }
                } else {
                    // Local reads disabled (or not actually read-only):
                    // serialize through the log like any other request.
                    self.handle_request(client, req_id, ClientOp::App(cmd), ctx);
                }
            }
            Msg::Response { .. } | Msg::ReadResponse { .. } => {
                // Replicas never receive responses; ignore.
            }
        }
    }

    /// Route one client operation: propose (or enqueue for batching)
    /// when leading, forward to the believed leader otherwise.
    fn handle_request(
        &mut self,
        client: NodeId,
        req_id: u64,
        op: ClientOp<SM::Command>,
        ctx: &mut Context<Msg<SM>>,
    ) {
        match self.phase {
            Phase::Leading => {
                let trace = ctx.trace();
                if self.batching_enabled() {
                    self.enqueue_op(client, req_id, op, trace, ctx);
                } else {
                    self.propose_op(client, req_id, op, trace, ctx);
                }
            }
            _ => {
                if let Some(leader) = self.leader {
                    if leader != self.me {
                        self.send_msg(ctx, leader, Msg::Request { client, req_id, op });
                    }
                }
                // No leader known: drop; the client retransmits.
            }
        }
    }
}
