//! Optimal vote assignment (Eq. 11) with the Amir & Wool monarchy/dummy
//! rules — the *optimal availability acceptance set* of Definition 2.
//!
//! The paper (§4.1) uses these results to justify its design choice: the
//! optimal static quorum system for heterogeneous failure probabilities is
//! weighted voting with `w_i = log₂((1−p_i)/p_i)`; when failure
//! probabilities are (nearly) equal this degenerates to simple majority,
//! which is why Jupiter equalizes per-node failure probabilities and keeps
//! plain majority quorums. The constructions here provide the baseline for
//! that argument and the ablation benchmarks.
//!
//! A caveat worth knowing (and covered by the property tests): Eq. 11
//! gives the *real-valued* optimal weights. After integer quantization
//! under a strict-majority tie rule, the induced system can be slightly
//! *worse* than simple majority on mildly heterogeneous profiles — live
//! sets whose quantized weight lands exactly on half the total fail the
//! strict test. This is a second, practical reason (beyond protocol
//! compatibility, which the paper cites) to equalize failure
//! probabilities and use plain majority.

use crate::systems::WeightedMajority;

/// Resolution used when quantizing real-valued log-odds weights to the
/// integer votes a voting protocol needs. 16 steps per unit keeps the
/// quantization error far below the availability differences we measure.
const WEIGHT_SCALE: f64 = 16.0;

/// The optimal (real-valued) weights for failure probabilities `fps`:
///
/// * all `p_i ≥ 1/2` → monarchy: the single most reliable node gets weight
///   1, everyone else 0;
/// * otherwise → nodes with `p_i > 1/2` become dummies (weight 0), nodes
///   with `p_i < 1/2` get `log₂((1−p_i)/p_i)` (Eq. 11), and `p_i = 1/2`
///   contributes weight 0 naturally.
pub fn optimal_weights(fps: &[f64]) -> Vec<f64> {
    assert!(!fps.is_empty());
    for &p in fps {
        assert!((0.0..=1.0).contains(&p), "failure probability {p} invalid");
    }
    if fps.iter().all(|&p| p >= 0.5) {
        // Monarchy: king = least unreliable (ties → lowest index).
        let king = fps
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN fp"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut w = vec![0.0; fps.len()];
        w[king] = 1.0;
        return w;
    }
    fps.iter()
        .map(|&p| {
            if p >= 0.5 {
                0.0
            } else if p <= 0.0 {
                // A perfectly reliable node dominates; cap its weight so
                // quantization stays finite (it becomes a monarch anyway).
                f64::INFINITY
            } else {
                ((1.0 - p) / p).log2()
            }
        })
        .collect()
}

/// Quantize real weights to integer votes at `WEIGHT_SCALE` resolution.
/// Infinite weights (perfect nodes) map to a weight exceeding the sum of
/// all finite ones, making the perfect node a monarch.
pub fn quantize_weights(weights: &[f64]) -> Vec<u64> {
    let finite_sum: f64 = weights.iter().filter(|w| w.is_finite()).sum();
    let monarch_weight = ((finite_sum * WEIGHT_SCALE) as u64 + 1) * 2;
    let q: Vec<u64> = weights
        .iter()
        .map(|&w| {
            if w.is_infinite() {
                monarch_weight
            } else {
                (w * WEIGHT_SCALE).round() as u64
            }
        })
        .collect();
    if q.iter().sum::<u64>() == 0 {
        // Degenerate (all weights rounded to zero, e.g. every p ≈ 1/2):
        // crown the largest-weight node.
        let king = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN weight"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let mut q = vec![0; weights.len()];
        q[king] = 1;
        return q;
    }
    q
}

/// The optimal-availability weighted-majority system for `fps`.
pub fn optimal_system(fps: &[f64]) -> WeightedMajority {
    WeightedMajority::new(quantize_weights(&optimal_weights(fps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::availability::acceptance_availability;
    use crate::systems::{MajorityQuorum, QuorumSystem};

    #[test]
    fn equal_probabilities_give_equal_weights() {
        let w = optimal_weights(&[0.01; 5]);
        for &x in &w {
            assert!((x - w[0]).abs() < 1e-12);
        }
        let sys = optimal_system(&[0.01; 5]);
        // Equal weights ⇒ behaves exactly like simple majority.
        let maj = MajorityQuorum::new(5);
        for mask in 0..(1u32 << 5) {
            assert_eq!(sys.is_quorum(mask), maj.is_quorum(mask));
        }
    }

    #[test]
    fn monarchy_when_all_unreliable() {
        let w = optimal_weights(&[0.7, 0.6, 0.9]);
        assert_eq!(w, vec![0.0, 1.0, 0.0]);
        let sys = optimal_system(&[0.7, 0.6, 0.9]);
        assert!(sys.is_quorum(0b010));
        assert!(!sys.is_quorum(0b101));
    }

    #[test]
    fn unreliable_nodes_become_dummies() {
        let w = optimal_weights(&[0.1, 0.6, 0.2]);
        assert_eq!(w[1], 0.0);
        assert!(w[0] > w[2] && w[2] > 0.0);
    }

    #[test]
    fn paper_example_dominated_vote() {
        // §4.1: p = (0.01, 0.1, 0.1) ⇒ node 0's weight exceeds the sum of
        // the other two (log₂99 ≈ 6.63 > 2·log₂9 ≈ 6.34) — a monarchy in
        // effect.
        let sys = optimal_system(&[0.01, 0.1, 0.1]);
        assert!(sys.is_quorum(0b001), "king alone should be a quorum");
        assert!(!sys.is_quorum(0b110), "subjects alone should not");
    }

    #[test]
    fn optimal_at_least_as_good_as_majority() {
        // Across assorted heterogeneous profiles the weighted system's
        // availability dominates simple majority (Definition 2).
        let profiles: [&[f64]; 5] = [
            &[0.01, 0.02, 0.3, 0.4, 0.05],
            &[0.2, 0.2, 0.2],
            &[0.01, 0.45, 0.45, 0.45, 0.45],
            &[0.1, 0.1, 0.1, 0.4, 0.4, 0.4, 0.05],
            &[0.3, 0.05, 0.05, 0.3, 0.3],
        ];
        for fps in profiles {
            let opt = optimal_system(fps).availability(fps);
            let maj = MajorityQuorum::new(fps.len()).availability(fps);
            assert!(
                opt >= maj - 1e-12,
                "weighted {opt} < majority {maj} for {fps:?}"
            );
        }
    }

    #[test]
    fn perfect_node_becomes_monarch() {
        let sys = optimal_system(&[0.0, 0.1, 0.1]);
        assert!(sys.is_quorum(0b001));
        let fps = [0.0, 0.1, 0.1];
        let av = acceptance_availability(3, &fps, |m| sys.is_quorum(m));
        assert!((av - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_half_probabilities_fall_back_to_equal_votes() {
        let q = quantize_weights(&optimal_weights(&[0.5, 0.5, 0.4999]));
        assert!(q.iter().sum::<u64>() > 0);
    }
}
