//! Structured event tracing over a pluggable clock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::json;

/// What an [`Event`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A point-in-time occurrence.
    Instant,
    /// The opening edge of a [`Span`].
    SpanStart,
    /// The closing edge of a [`Span`]; carries `duration_micros`.
    SpanEnd,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Instant => "instant",
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
        }
    }
}

/// A typed field value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Timestamp from the tracer's [`Clock`], in microseconds.
    pub at_micros: u64,
    /// Event name (dotted-path convention, e.g. `replay.interval`).
    pub name: String,
    /// Point event or span edge.
    pub kind: EventKind,
    /// Span id tying a start to its end, for span edges.
    pub span_id: Option<u64>,
    /// Causal trace this event belongs to; 0 means untraced (and the
    /// field is omitted from JSON, keeping legacy output byte-stable).
    pub trace_id: u64,
    /// Span (possibly on another node) that caused this event; 0 = root.
    pub parent_span: u64,
    /// Attached key/value fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// A causal context carried across node boundaries: which trace an
/// operation belongs to and which span caused the current work.
///
/// `Copy` and two words wide so it rides on every simnet message
/// envelope for free. The all-zero value ([`TraceContext::NONE`]) means
/// "untraced" — timers, boot work, and anything outside an operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Trace id grouping all spans of one end-to-end operation.
    pub trace_id: u64,
    /// The span that caused the message/work this context annotates.
    pub span_id: u64,
}

impl TraceContext {
    /// The untraced context.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
    };

    /// Whether this context carries a real trace.
    pub fn is_some(self) -> bool {
        self.trace_id != 0
    }

    /// The same trace with `span_id` as the causal parent.
    pub fn child_of(self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
        }
    }
}

struct TracerInner {
    clock: Arc<dyn Clock>,
    /// Bounded ring buffer of the most recent events.
    events: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
    next_span_id: AtomicU64,
}

/// Records [`Event`]s into a bounded ring buffer, timestamping from a
/// [`Clock`]. Cloning shares the buffer; disabled tracers record
/// nothing and never read the clock.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// Default ring-buffer capacity (events kept before the oldest are
    /// dropped and counted in [`Tracer::dropped`]).
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// An enabled tracer timestamping from `clock`, keeping at most
    /// `capacity` events.
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                capacity: capacity.max(1),
                dropped: AtomicU64::new(0),
                next_span_id: AtomicU64::new(1),
            })),
        }
    }

    /// A tracer that records nothing.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether events are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock reading (0 when disabled).
    pub fn now_micros(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_micros())
    }

    /// Drive the clock forward, when it is settable (see
    /// [`Clock::set_micros`]).
    pub fn set_time_micros(&self, micros: u64) {
        if let Some(inner) = &self.inner {
            inner.clock.set_micros(micros);
        }
    }

    /// Record a point event with `fields`.
    pub fn event(&self, name: &str, fields: &[(&str, FieldValue)]) {
        self.event_causal(name, TraceContext::NONE, fields);
    }

    /// Record a point event attributed to a causal trace: the event
    /// carries `tctx`'s trace id and names `tctx.span_id` as its cause.
    pub fn event_causal(&self, name: &str, tctx: TraceContext, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        inner.push(Event {
            at_micros: inner.clock.now_micros(),
            name: name.to_owned(),
            kind: EventKind::Instant,
            span_id: None,
            trace_id: tctx.trace_id,
            parent_span: tctx.span_id,
            fields: owned_fields(fields),
        });
    }

    /// Open a span: records the start edge now and the end edge (with
    /// duration) when the returned guard drops or [`Span::end`] runs.
    pub fn span(&self, name: &str, fields: &[(&str, FieldValue)]) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                tracer: Tracer::disabled(),
                id: 0,
                name: String::new(),
                start_micros: 0,
                finished: true,
            };
        };
        let id = inner.next_span_id.fetch_add(1, Ordering::Relaxed);
        let start_micros = inner.clock.now_micros();
        inner.push(Event {
            at_micros: start_micros,
            name: name.to_owned(),
            kind: EventKind::SpanStart,
            span_id: Some(id),
            trace_id: 0,
            parent_span: 0,
            fields: owned_fields(fields),
        });
        Span {
            tracer: self.clone(),
            id,
            name: name.to_owned(),
            start_micros,
            finished: false,
        }
    }

    /// Open a span without a guard: records the start edge and returns
    /// a [`SpanHandle`] (`Copy`, storable in `Clone`/`Debug` state
    /// machines) to pass to [`Tracer::span_close`] later. Returns the
    /// inert handle when disabled.
    pub fn span_open(&self, name: &str, fields: &[(&str, FieldValue)]) -> SpanHandle {
        self.span_open_causal(name, TraceContext::NONE, fields)
    }

    /// Open a guard-free span as a causal child: the start edge carries
    /// `tctx`'s trace id and names `tctx.span_id` (possibly a span on a
    /// remote node) as its parent. The returned handle's
    /// [`SpanHandle::context`] continues the trace with this span as
    /// the new parent.
    pub fn span_open_causal(
        &self,
        name: &str,
        tctx: TraceContext,
        fields: &[(&str, FieldValue)],
    ) -> SpanHandle {
        let Some(inner) = &self.inner else {
            return SpanHandle::inert();
        };
        let id = inner.next_span_id.fetch_add(1, Ordering::Relaxed);
        let start_micros = inner.clock.now_micros();
        inner.push(Event {
            at_micros: start_micros,
            name: name.to_owned(),
            kind: EventKind::SpanStart,
            span_id: Some(id),
            trace_id: tctx.trace_id,
            parent_span: tctx.span_id,
            fields: owned_fields(fields),
        });
        SpanHandle {
            id,
            start_micros,
            trace_id: tctx.trace_id,
        }
    }

    /// Close a span opened with [`Tracer::span_open`], recording the
    /// end edge with `duration_micros` plus `fields`. No-op for inert
    /// handles; closing the same handle twice records two end edges, so
    /// callers should take the handle out of their state when closing.
    pub fn span_close(&self, handle: SpanHandle, name: &str, fields: &[(&str, FieldValue)]) {
        let Some(inner) = &self.inner else { return };
        if handle.id == 0 {
            return;
        }
        let now = inner.clock.now_micros();
        let mut all = owned_fields(fields);
        all.push((
            "duration_micros".to_owned(),
            FieldValue::U64(now.saturating_sub(handle.start_micros)),
        ));
        inner.push(Event {
            at_micros: now,
            name: name.to_owned(),
            kind: EventKind::SpanEnd,
            span_id: Some(handle.id),
            trace_id: handle.trace_id,
            parent_span: 0,
            fields: all,
        });
    }

    /// Number of events evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.events.lock().unwrap().iter().cloned().collect()
        })
    }

    /// The trace as one JSON object:
    /// `{"dropped": n, "events": [...]}`; each event is also valid as a
    /// standalone JSON-lines record via [`event_to_json`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{{\"dropped\":{},\"events\":[", self.dropped()));
        for (i, event) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_to_json(event));
        }
        out.push_str("]}");
        out
    }

    /// The buffered events as JSON lines (one event object per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event_to_json(&event));
            out.push('\n');
        }
        out
    }
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Tracer")
                .field("events", &inner.events.lock().unwrap().len())
                .field("capacity", &inner.capacity)
                .field("dropped", &inner.dropped.load(Ordering::Relaxed))
                .finish(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}

impl TracerInner {
    fn push(&self, event: Event) {
        let mut events = self.events.lock().unwrap();
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

fn owned_fields(fields: &[(&str, FieldValue)]) -> Vec<(String, FieldValue)> {
    fields
        .iter()
        .map(|(k, v)| ((*k).to_owned(), v.clone()))
        .collect()
}

/// One event as a JSON object (used for both the array export and
/// JSON-lines output).
pub fn event_to_json(event: &Event) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"at_micros\":{},\"name\":",
        event.at_micros
    ));
    json::push_str_lit(&mut out, &event.name);
    out.push_str(&format!(",\"kind\":\"{}\"", event.kind.as_str()));
    if let Some(id) = event.span_id {
        out.push_str(&format!(",\"span_id\":{id}"));
    }
    if event.trace_id != 0 {
        out.push_str(&format!(",\"trace_id\":{}", event.trace_id));
    }
    if event.parent_span != 0 {
        out.push_str(&format!(",\"parent_span\":{}", event.parent_span));
    }
    if !event.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_lit(&mut out, key);
            out.push(':');
            field_value_to_json(&mut out, value);
        }
        out.push('}');
    }
    out.push('}');
    out
}

/// Append one [`FieldValue`] as a JSON value.
pub(crate) fn field_value_to_json(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => out.push_str(&v.to_string()),
        FieldValue::I64(v) => out.push_str(&v.to_string()),
        FieldValue::F64(v) => json::push_f64(out, *v),
        FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        FieldValue::Str(v) => json::push_str_lit(out, v),
    }
}

/// A guard-free open span: just the span id and start timestamp, so it
/// is `Copy` and can live inside `Clone`/`Debug` state (e.g. a Paxos
/// replica's in-flight proposals). Obtained from [`Tracer::span_open`],
/// closed with [`Tracer::span_close`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanHandle {
    /// Span id tying the edges together; 0 means inert.
    pub id: u64,
    /// Clock reading at the start edge.
    pub start_micros: u64,
    /// Causal trace the span belongs to; 0 for plain (uncausal) spans.
    pub trace_id: u64,
}

impl SpanHandle {
    /// The no-op handle (what disabled tracers hand out).
    pub fn inert() -> SpanHandle {
        SpanHandle {
            id: 0,
            start_micros: 0,
            trace_id: 0,
        }
    }

    /// The trace context continuing this span's trace with this span as
    /// the causal parent — what a message caused by this span carries.
    pub fn context(self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.id,
        }
    }
}

/// Guard for an open span; ends the span on drop. Obtained from
/// [`Tracer::span`].
#[must_use = "a span measures until it is dropped or `.end()` is called"]
pub struct Span {
    tracer: Tracer,
    id: u64,
    name: String,
    start_micros: u64,
    finished: bool,
}

impl Span {
    /// Close the span now, attaching `fields` to the end edge.
    pub fn end_with(mut self, fields: &[(&str, FieldValue)]) {
        self.finish(fields);
    }

    /// Close the span now.
    pub fn end(mut self) {
        self.finish(&[]);
    }

    /// Microseconds elapsed since the span opened.
    pub fn elapsed_micros(&self) -> u64 {
        self.tracer
            .now_micros()
            .saturating_sub(self.start_micros)
    }

    fn finish(&mut self, fields: &[(&str, FieldValue)]) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(inner) = &self.tracer.inner else {
            return;
        };
        let now = inner.clock.now_micros();
        let mut all = owned_fields(fields);
        all.push((
            "duration_micros".to_owned(),
            FieldValue::U64(now.saturating_sub(self.start_micros)),
        ));
        inner.push(Event {
            at_micros: now,
            name: self.name.clone(),
            kind: EventKind::SpanEnd,
            span_id: Some(self.id),
            trace_id: 0,
            parent_span: 0,
            fields: all,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish(&[]);
    }
}
