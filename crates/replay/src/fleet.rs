//! Multi-group deployments: the paper scales service *performance* by
//! "launching multiple Paxos groups" (§3.2) — each group is an
//! independent quorum over its own spot instances, while all groups trade
//! in the same market.
//!
//! Groups share zones (failure independence is required *within* a group,
//! not across groups), so out-of-bid events correlate across groups —
//! when a zone's price spikes, every group loses its instance there at
//! once. The fleet accounting surfaces both the per-group view and the
//! correlated aggregate ("all groups up"), which is the availability a
//! sharded service presents when every shard must answer.

use jupiter::{BiddingStrategy, ServiceSpec};
use obs::Obs;
use spot_market::{Market, Price, Termination};

use crate::lifecycle::{replay_strategy_observed, ReplayConfig};
use crate::results::ReplayResult;

/// The outcome of replaying `groups` identical service groups.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-group replays (all identical under a deterministic strategy —
    /// kept separate so heterogeneous strategies can be compared).
    pub groups: Vec<ReplayResult>,
    /// Fraction of evaluated minutes with *every* group at quorum.
    pub all_up_availability: f64,
    /// Total fleet cost.
    pub total_cost: Price,
}

/// Replay `groups` independent groups of `spec` under the same strategy
/// construction, in the same market.
///
/// `make_strategy(group_index)` builds each group's strategy; identical
/// strategies produce identical bid schedules (and therefore perfectly
/// correlated failures — the honest model for same-zone deployments).
pub fn fleet_replay<S, F>(
    market: &Market,
    spec: &ServiceSpec,
    groups: usize,
    config: ReplayConfig,
    make_strategy: F,
) -> FleetResult
where
    S: BiddingStrategy,
    F: FnMut(usize) -> S,
{
    fleet_replay_observed(market, spec, groups, config, make_strategy, &Obs::disabled())
}

/// [`fleet_replay`] with observability: each group's replay records into
/// the shared [`Obs`], and the fleet level adds a counter for instances
/// that died in the same minute they were granted (bids that only just
/// covered the request-time price).
pub fn fleet_replay_observed<S, F>(
    market: &Market,
    spec: &ServiceSpec,
    groups: usize,
    config: ReplayConfig,
    mut make_strategy: F,
    obs: &Obs,
) -> FleetResult
where
    S: BiddingStrategy,
    F: FnMut(usize) -> S,
{
    assert!(groups >= 1, "a fleet needs at least one group");
    let results: Vec<ReplayResult> = (0..groups)
        .map(|g| replay_strategy_observed(market, spec, make_strategy(g), config, obs))
        .collect();

    obs.counter("fleet.granted_and_killed_same_minute")
        .add(count_zero_lifetime(&results) as u64);

    let window = results[0].window_minutes;
    let all_up = aggregate_all_up(&results, obs);
    let total_cost = results.iter().map(|r| r.total_cost).sum();
    FleetResult {
        all_up_availability: all_up as f64 / window.max(1) as f64,
        total_cost,
        groups: results,
    }
}

/// Instances that were provider-killed in the very minute they were
/// granted (the bid only just covered the request-time price). Recorded
/// as `fleet.granted_and_killed_same_minute` — in release builds too,
/// since a fleet that burns whole instance-grants for zero runtime is an
/// accounting signal, not a debugging aid.
pub(crate) fn count_zero_lifetime(results: &[ReplayResult]) -> usize {
    results
        .iter()
        .flat_map(|r| &r.instances)
        .filter(|i| i.termination == Termination::Provider && i.ended_at <= i.granted_at)
        .count()
}

/// Aggregate availability: with identical deterministic schedules the
/// groups' up/down timelines coincide, so "all up" equals the minimum
/// per-interval uptime; computed interval-by-interval to stay exact for
/// heterogeneous strategies too.
///
/// Groups that fail to line up — a missing interval or a disagreeing
/// interval start — are treated as *down* for that interval and counted
/// in `fleet.interval_missing_group` / `fleet.interval_misaligned`.
/// These used to be `debug_assert`s, which made release builds silently
/// drop the evidence that the aggregate was conservative.
pub(crate) fn aggregate_all_up(results: &[ReplayResult], obs: &Obs) -> u64 {
    let missing_group = obs.counter("fleet.interval_missing_group");
    let misaligned = obs.counter("fleet.interval_misaligned");
    let Some(reference) = results.first() else {
        return 0;
    };
    let mut all_up = 0u64;
    for (i, iv) in reference.intervals.iter().enumerate() {
        let mut up = u64::MAX;
        for r in results {
            match r.intervals.get(i) {
                None => {
                    missing_group.inc();
                    up = 0;
                }
                Some(x) => {
                    if x.start != iv.start {
                        misaligned.inc();
                    }
                    up = up.min(x.up_minutes);
                }
            }
        }
        all_up += up;
    }
    all_up
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::InstanceRecord;
    use crate::results::IntervalOutcome;
    use jupiter::{ExtraStrategy, JupiterStrategy};
    use spot_market::{InstanceType, MarketConfig};

    /// A hand-built group result with the given interval starts/uptimes.
    fn synthetic(starts_ups: &[(u64, u64)], records: Vec<InstanceRecord>) -> ReplayResult {
        ReplayResult {
            strategy: "synthetic".into(),
            total_cost: Price::ZERO,
            window_minutes: 720,
            up_minutes: starts_ups.iter().map(|&(_, u)| u).sum(),
            degraded_minutes: 0,
            on_demand_cost: Price::ZERO,
            instances: records,
            intervals: starts_ups
                .iter()
                .map(|&(start, up)| IntervalOutcome {
                    start,
                    group_size: 5,
                    quorum: 3,
                    cost_upper_bound: Price::ZERO,
                    up_minutes: up,
                    degraded_minutes: 0,
                    max_live: 5,
                    kills: 0,
                })
                .collect(),
            metrics: None,
            series: Vec::new(),
            alerts: Vec::new(),
            audit: Vec::new(),
        }
    }

    #[test]
    fn missing_intervals_count_as_down_and_are_recorded_in_release() {
        // Group b stops reporting after its first interval: the fleet is
        // down for the unreported stretch, and the drop is *counted*
        // (this accounting used to be debug_assert-only, i.e. silently
        // absent from release builds).
        let a = synthetic(&[(0, 360), (360, 300)], vec![]);
        let b = synthetic(&[(0, 100)], vec![]);
        let (obs, _clock) = Obs::simulated();
        let up = aggregate_all_up(&[a, b], &obs);
        assert_eq!(up, 100, "min(360,100) + nothing for the missing interval");
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("fleet.interval_missing_group"), Some(1));
        assert_eq!(snap.counter("fleet.interval_misaligned"), Some(0));
    }

    #[test]
    fn misaligned_interval_starts_are_recorded() {
        let a = synthetic(&[(0, 360), (360, 360)], vec![]);
        let b = synthetic(&[(0, 360), (300, 200)], vec![]);
        let (obs, _clock) = Obs::simulated();
        let up = aggregate_all_up(&[a, b], &obs);
        assert_eq!(up, 360 + 200);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("fleet.interval_misaligned"), Some(1));
    }

    #[test]
    fn killed_in_grant_minute_counter_regression() {
        let zone = spot_market::topology::all_zones()[0];
        let record = |granted_at: u64, ended_at: u64, termination| InstanceRecord {
            zone,
            instance_type: spot_market::InstanceType::M1Small,
            bid: Price::from_dollars(0.01),
            granted_at,
            running_from: granted_at,
            ended_at,
            termination,
            on_demand: false,
            cost: Price::ZERO,
        };
        let results = vec![
            synthetic(
                &[(0, 360)],
                vec![
                    record(10, 10, Termination::Provider), // zero lifetime
                    record(20, 80, Termination::Provider),
                    record(30, 30, Termination::User), // boundary churn, not a kill
                ],
            ),
            synthetic(&[(0, 360)], vec![record(5, 5, Termination::Provider)]),
        ];
        assert_eq!(count_zero_lifetime(&results), 2);
    }

    fn market() -> Market {
        let mut cfg = MarketConfig::paper(19, 2 * 7 * 24 * 60);
        cfg.zones.truncate(8);
        cfg.types = vec![InstanceType::M1Small];
        Market::generate(cfg)
    }

    #[test]
    fn identical_groups_cost_linearly_and_correlate() {
        let m = market();
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 10 * 24 * 60, 6);
        let one = fleet_replay(&m, &spec, 1, config, |_| ExtraStrategy::new(0, 0.2));
        let three = fleet_replay(&m, &spec, 3, config, |_| ExtraStrategy::new(0, 0.2));
        // Deterministic strategies: every group identical.
        assert_eq!(three.total_cost, one.total_cost * 3);
        assert!((three.all_up_availability - one.all_up_availability).abs() < 1e-12);
        assert_eq!(three.groups.len(), 3);
    }

    #[test]
    fn mixed_fleet_is_limited_by_its_weakest_group() {
        let m = market();
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 10 * 24 * 60, 6);
        // Group 0 runs Jupiter; group 1 runs the flaky heuristic.
        let strategies: Vec<Box<dyn BiddingStrategy>> = vec![
            Box::new(JupiterStrategy::new()),
            Box::new(ExtraStrategy::new(0, 0.1)),
        ];
        let mut iter = strategies.into_iter();
        let fleet = fleet_replay(&m, &spec, 2, config, |_| iter.next().expect("two"));
        let weakest = fleet
            .groups
            .iter()
            .map(|g| g.availability())
            .fold(f64::INFINITY, f64::min);
        assert!(
            fleet.all_up_availability <= weakest + 1e-12,
            "all-up {} > weakest group {}",
            fleet.all_up_availability,
            weakest
        );
    }
}
