//! The decision audit log: every bid selection and every repair action
//! recorded as a versioned structured record in a bounded ring, so a
//! fired alert (see [`crate::monitor`]) can be cross-referenced to the
//! decisions that preceded it. Export is JSON lines via
//! [`AuditRecord::to_json`] / [`audit_jsonl`].

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::json;

/// Version stamped into every serialized audit record; bump on any
/// breaking change to [`AuditRecord::to_json`].
///
/// v2: `bid_selection` gained `instance_type` and `capacity_weight`
/// (heterogeneous pools), and the `scale_decision` kind was added (the
/// load-driven auto-scaler).
///
/// v3: the `migration` kind was added (the proactive-migration
/// controller of the capacity-reclaim era).
pub const AUDIT_SCHEMA_VERSION: u32 = 3;

/// What kind of decision a record captures.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditKind {
    /// One pool's bid within a bidding decision (boundary or repair
    /// rebid).
    BidSelection {
        /// Zone label (e.g. `us-east-1a`).
        zone: String,
        /// Instance-type pool within the zone (API name, e.g.
        /// `m1.small`).
        instance_type: String,
        /// Serving strength of one replica in this pool relative to the
        /// baseline type.
        capacity_weight: f64,
        /// The bid, in dollars per hour.
        bid_dollars: f64,
        /// Spot price at decision time, dollars per hour.
        spot_price_dollars: f64,
        /// Model-predicted availability of the instance over the
        /// decision horizon (`1 − FP`); negative when no model view was
        /// available.
        predicted_availability: f64,
        /// Cost upper bound this bid contributes for the horizon,
        /// dollars (bid × horizon hours).
        predicted_cost_dollars: f64,
        /// Fingerprint of the frozen kernel the prediction came from
        /// (0 when untrained).
        kernel_id: u64,
        /// Whether the decision round was served from the bid-grid FP
        /// cache (no fresh forecast work).
        fp_cache_hit: bool,
        /// Whether the spot request was granted.
        granted: bool,
    },
    /// One repair-controller action.
    RepairAction {
        /// What the controller did: `rebid`, `backoff`,
        /// `on_demand_top_up`, `budget_exhausted`, or `too_late`.
        action: String,
        /// Zone acted on (the on-demand zone for top-ups; empty for
        /// fleet-wide actions like backoff).
        zone: String,
        /// Market minute of the out-of-bid death that triggered the
        /// repair pass.
        trigger_death_minute: u64,
        /// The replacement bid in dollars per hour (0 for non-launch
        /// actions).
        bid_dollars: f64,
        /// Billing delta committed by the action, dollars (the hourly
        /// on-demand rate for top-ups, the bid upper bound for spot
        /// replacements, 0 otherwise).
        billing_delta_dollars: f64,
    },
    /// One proactive-migration action taken on an interruption notice
    /// (capacity-reclaim era).
    Migration {
        /// What the controller did: `drained` (replacement up before the
        /// deadline), `late_drain` (replacement launched but missed the
        /// deadline), `no_pool` (no diversified pool available),
        /// `no_grant` (the declared price cap did not grant).
        action: String,
        /// Zone of the instance under notice.
        from_zone: String,
        /// Zone the replacement launched in (empty when none launched).
        to_zone: String,
        /// Market minute the controller acted at (the notice or the
        /// earlier rebalance recommendation it chose to act on).
        notice_minute: u64,
        /// Market minute the reclamation lands.
        deadline_minute: u64,
        /// The replacement's declared price cap in dollars per hour (0
        /// when none launched).
        bid_dollars: f64,
    },
    /// One auto-scaler re-targeting of the fleet's capacity-weighted
    /// strength.
    ScaleDecision {
        /// What the controller did: `scale_out`, `scale_in`, or `hold`.
        action: String,
        /// Why: `demand_exceeds_target`, `slo_burn`,
        /// `sustained_headroom`, or `within_band`.
        reason: String,
        /// The strength target before this decision.
        from_strength: u64,
        /// The strength target after this decision.
        to_strength: u64,
        /// The demand (in strength units) forecast for the upcoming
        /// interval.
        demand_strength: f64,
        /// The availability observed over the interval that just ended
        /// (1.0 before the first interval completes).
        observed_availability: f64,
    },
}

impl AuditKind {
    /// The record's `kind` tag in JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AuditKind::BidSelection { .. } => "bid_selection",
            AuditKind::RepairAction { .. } => "repair_action",
            AuditKind::Migration { .. } => "migration",
            AuditKind::ScaleDecision { .. } => "scale_decision",
        }
    }
}

/// One audit-log entry.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditRecord {
    /// Monotonic sequence number within the log (starts at 1); alerts
    /// reference these in `audit_refs`.
    pub seq: u64,
    /// Market minute the decision was made at.
    pub at_minute: u64,
    /// The decision itself.
    pub kind: AuditKind,
}

impl AuditRecord {
    /// The record as one JSON object (a valid JSON-lines record),
    /// carrying an explicit `schema_version`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema_version\":{AUDIT_SCHEMA_VERSION},\"seq\":{},\"at_minute\":{},\"kind\":\"{}\"",
            self.seq,
            self.at_minute,
            self.kind.label()
        ));
        match &self.kind {
            AuditKind::BidSelection {
                zone,
                instance_type,
                capacity_weight,
                bid_dollars,
                spot_price_dollars,
                predicted_availability,
                predicted_cost_dollars,
                kernel_id,
                fp_cache_hit,
                granted,
            } => {
                out.push_str(",\"zone\":");
                json::push_str_lit(&mut out, zone);
                out.push_str(",\"instance_type\":");
                json::push_str_lit(&mut out, instance_type);
                out.push_str(",\"capacity_weight\":");
                json::push_f64(&mut out, *capacity_weight);
                out.push_str(",\"bid_dollars\":");
                json::push_f64(&mut out, *bid_dollars);
                out.push_str(",\"spot_price_dollars\":");
                json::push_f64(&mut out, *spot_price_dollars);
                out.push_str(",\"predicted_availability\":");
                json::push_f64(&mut out, *predicted_availability);
                out.push_str(",\"predicted_cost_dollars\":");
                json::push_f64(&mut out, *predicted_cost_dollars);
                out.push_str(&format!(
                    ",\"kernel_id\":{kernel_id},\"fp_cache_hit\":{fp_cache_hit},\"granted\":{granted}"
                ));
            }
            AuditKind::RepairAction {
                action,
                zone,
                trigger_death_minute,
                bid_dollars,
                billing_delta_dollars,
            } => {
                out.push_str(",\"action\":");
                json::push_str_lit(&mut out, action);
                out.push_str(",\"zone\":");
                json::push_str_lit(&mut out, zone);
                out.push_str(&format!(",\"trigger_death_minute\":{trigger_death_minute}"));
                out.push_str(",\"bid_dollars\":");
                json::push_f64(&mut out, *bid_dollars);
                out.push_str(",\"billing_delta_dollars\":");
                json::push_f64(&mut out, *billing_delta_dollars);
            }
            AuditKind::Migration {
                action,
                from_zone,
                to_zone,
                notice_minute,
                deadline_minute,
                bid_dollars,
            } => {
                out.push_str(",\"action\":");
                json::push_str_lit(&mut out, action);
                out.push_str(",\"from_zone\":");
                json::push_str_lit(&mut out, from_zone);
                out.push_str(",\"to_zone\":");
                json::push_str_lit(&mut out, to_zone);
                out.push_str(&format!(
                    ",\"notice_minute\":{notice_minute},\"deadline_minute\":{deadline_minute}"
                ));
                out.push_str(",\"bid_dollars\":");
                json::push_f64(&mut out, *bid_dollars);
            }
            AuditKind::ScaleDecision {
                action,
                reason,
                from_strength,
                to_strength,
                demand_strength,
                observed_availability,
            } => {
                out.push_str(",\"action\":");
                json::push_str_lit(&mut out, action);
                out.push_str(",\"reason\":");
                json::push_str_lit(&mut out, reason);
                out.push_str(&format!(
                    ",\"from_strength\":{from_strength},\"to_strength\":{to_strength}"
                ));
                out.push_str(",\"demand_strength\":");
                json::push_f64(&mut out, *demand_strength);
                out.push_str(",\"observed_availability\":");
                json::push_f64(&mut out, *observed_availability);
            }
        }
        out.push('}');
        out
    }
}

struct AuditRing {
    records: VecDeque<AuditRecord>,
    next_seq: u64,
    dropped: u64,
}

struct AuditInner {
    ring: Mutex<AuditRing>,
    capacity: usize,
}

/// Bounded ring of [`AuditRecord`]s. Cloning shares the ring;
/// [`AuditLog::disabled`] records nothing and returns no sequence
/// numbers.
#[derive(Clone, Default)]
pub struct AuditLog {
    inner: Option<Arc<AuditInner>>,
}

impl AuditLog {
    /// Default ring capacity — sized for a full multi-week replay
    /// (hundreds of boundary decisions × fleet size, plus repairs).
    pub const DEFAULT_CAPACITY: usize = 16_384;

    /// An enabled log keeping at most `capacity` records.
    pub fn new(capacity: usize) -> AuditLog {
        AuditLog {
            inner: Some(Arc::new(AuditInner {
                ring: Mutex::new(AuditRing {
                    records: VecDeque::new(),
                    next_seq: 1,
                    dropped: 0,
                }),
                capacity: capacity.max(1),
            })),
        }
    }

    /// A log that records nothing.
    pub fn disabled() -> AuditLog {
        AuditLog { inner: None }
    }

    /// Whether records are kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Append a record; returns its sequence number, or `None` when
    /// disabled.
    pub fn record(&self, at_minute: u64, kind: AuditKind) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        let mut ring = inner.ring.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.records.len() >= inner.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(AuditRecord {
            seq,
            at_minute,
            kind,
        });
        Some(seq)
    }

    /// Copy of the buffered records, oldest first.
    pub fn snapshot(&self) -> Vec<AuditRecord> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            i.ring.lock().unwrap().records.iter().cloned().collect()
        })
    }

    /// Records evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.lock().unwrap().dropped)
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.ring.lock().unwrap().records.len())
    }

    /// Whether no record has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => {
                let ring = inner.ring.lock().unwrap();
                f.debug_struct("AuditLog")
                    .field("records", &ring.records.len())
                    .field("dropped", &ring.dropped)
                    .finish()
            }
            None => f.write_str("AuditLog(disabled)"),
        }
    }
}

/// Audit records as JSON lines (one [`AuditRecord::to_json`] object per
/// line).
pub fn audit_jsonl(records: &[AuditRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    out
}

/// Alert events as JSON lines (one
/// [`crate::monitor::AlertEvent::to_json`] object per line).
pub fn alerts_jsonl(alerts: &[crate::monitor::AlertEvent]) -> String {
    let mut out = String::new();
    for a in alerts {
        out.push_str(&a.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid_kind() -> AuditKind {
        AuditKind::BidSelection {
            zone: "us-east-1a".into(),
            instance_type: "m1.small".into(),
            capacity_weight: 1.0,
            bid_dollars: 0.0105,
            spot_price_dollars: 0.0085,
            predicted_availability: 0.9931,
            predicted_cost_dollars: 0.063,
            kernel_id: 0xBEEF,
            fp_cache_hit: true,
            granted: true,
        }
    }

    #[test]
    fn ring_bounds_and_sequences() {
        let log = AuditLog::new(2);
        for minute in 0..3 {
            log.record(minute, bid_kind());
        }
        let records = log.snapshot();
        assert_eq!(records.len(), 2);
        assert_eq!(log.dropped(), 1);
        assert_eq!(records[0].seq, 2);
        assert_eq!(records[1].seq, 3);
    }

    #[test]
    fn disabled_log_is_inert() {
        let log = AuditLog::disabled();
        assert_eq!(log.record(0, bid_kind()), None);
        assert!(log.is_empty());
    }

    #[test]
    fn json_carries_schema_version_and_kind() {
        let log = AuditLog::new(8);
        log.record(10_080, bid_kind());
        log.record(
            10_141,
            AuditKind::RepairAction {
                action: "on_demand_top_up".into(),
                zone: "us-west-1a".into(),
                trigger_death_minute: 10_135,
                bid_dollars: 0.0,
                billing_delta_dollars: 0.06,
            },
        );
        log.record(
            10_240,
            AuditKind::Migration {
                action: "drained".into(),
                from_zone: "us-east-1a".into(),
                to_zone: "us-west-1a".into(),
                notice_minute: 10_230,
                deadline_minute: 10_244,
                bid_dollars: 0.012,
            },
        );
        log.record(
            10_440,
            AuditKind::ScaleDecision {
                action: "scale_out".into(),
                reason: "demand_exceeds_target".into(),
                from_strength: 5,
                to_strength: 9,
                demand_strength: 8.4,
                observed_availability: 0.997,
            },
        );
        let jsonl = audit_jsonl(&log.snapshot());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"schema_version\":3,\"seq\":1,"));
        assert!(lines[0].contains("\"kind\":\"bid_selection\""));
        assert!(lines[0].contains("\"instance_type\":\"m1.small\""));
        assert!(lines[0].contains("\"capacity_weight\":1"));
        assert!(lines[0].contains("\"fp_cache_hit\":true"));
        assert!(lines[1].contains("\"kind\":\"repair_action\""));
        assert!(lines[1].contains("\"trigger_death_minute\":10135"));
        assert!(lines[2].contains("\"kind\":\"migration\""));
        assert!(lines[2].contains("\"action\":\"drained\""));
        assert!(lines[2].contains("\"from_zone\":\"us-east-1a\",\"to_zone\":\"us-west-1a\""));
        assert!(lines[2].contains("\"notice_minute\":10230,\"deadline_minute\":10244"));
        assert!(lines[3].contains("\"kind\":\"scale_decision\""));
        assert!(lines[3].contains("\"from_strength\":5,\"to_strength\":9"));
    }
}
