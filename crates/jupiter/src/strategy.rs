//! The strategy interface and market snapshots.

use spot_market::{InstanceType, Price, Zone};
use spot_model::{FailureModel, Forecast};

use crate::service::ServiceSpec;

/// Everything a strategy may know about one (zone, instance-type) pool at
/// bidding time.
pub struct ZoneState<'a> {
    /// The zone.
    pub zone: Zone,
    /// The instance-type pool within the zone.
    pub instance_type: InstanceType,
    /// Current spot price.
    pub spot_price: Price,
    /// Minutes the spot price has held its current value (the semi-Markov
    /// sojourn age).
    pub sojourn_age: u32,
    /// The on-demand price (the framework's bid cap, §4.2).
    pub on_demand: Price,
    /// The pool's trained failure model.
    pub model: &'a FailureModel,
}

impl ZoneState<'_> {
    /// Serving strength of one replica in this pool.
    pub fn capacity_weight(&self) -> u32 {
        self.instance_type.capacity_weight()
    }

    /// Forecast this zone over `horizon` minutes (None if untrained).
    pub fn forecast(&self, horizon: u32) -> Option<Forecast> {
        self.model
            .forecast(self.spot_price, self.sojourn_age, horizon)
    }

    /// The minimal bid meeting `target_fp` from a precomputed forecast,
    /// capped strictly below on-demand; `None` when infeasible.
    pub fn min_bid(&self, forecast: &Forecast, target_fp: f64) -> Option<Price> {
        let candidates = std::iter::once(self.spot_price)
            .chain(forecast.levels().iter().copied())
            .filter(|&b| b >= self.spot_price && b < self.on_demand);
        let mut best: Option<Price> = None;
        for b in candidates {
            if self.model.fp_from_forecast(forecast, b, self.spot_price) <= target_fp {
                best = Some(best.map_or(b, |prev: Price| prev.min(b)));
            }
        }
        best
    }
}

/// One placed bid: an instance to run in a (zone, type) pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolBid {
    /// The zone.
    pub zone: Zone,
    /// The instance-type pool.
    pub instance_type: InstanceType,
    /// The bid price.
    pub bid: Price,
}

/// A bidding decision: which (zone, type) pools to hold instances in and
/// at what bids, for the coming interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BidDecision {
    /// Pool and bid for every instance to run.
    pub bids: Vec<PoolBid>,
}

impl BidDecision {
    /// An empty decision (run nothing — the strategy found no feasible
    /// deployment; the framework falls back to on-demand).
    pub fn empty() -> Self {
        BidDecision { bids: Vec::new() }
    }

    /// Build a single-type decision from `(zone, bid)` pairs — the shape
    /// every pre-heterogeneous strategy produces.
    pub fn single_type(ty: InstanceType, bids: Vec<(Zone, Price)>) -> Self {
        BidDecision {
            bids: bids
                .into_iter()
                .map(|(zone, bid)| PoolBid {
                    zone,
                    instance_type: ty,
                    bid,
                })
                .collect(),
        }
    }

    /// The number of instances.
    pub fn n(&self) -> usize {
        self.bids.len()
    }

    /// Total capacity-weighted serving strength of the decision.
    pub fn strength(&self) -> u32 {
        self.bids
            .iter()
            .map(|b| b.instance_type.capacity_weight())
            .sum()
    }

    /// The objective value: the cost upper bound Σ bids (one interval at
    /// worst-case prices).
    pub fn cost_upper_bound(&self) -> Price {
        self.bids.iter().map(|b| b.bid).sum()
    }

    /// The bid in the `(zone, ty)` pool, if one was placed.
    pub fn bid_for(&self, zone: Zone, ty: InstanceType) -> Option<Price> {
        self.bids
            .iter()
            .find(|b| b.zone == zone && b.instance_type == ty)
            .map(|b| b.bid)
    }
}

/// A bidding strategy: market snapshot in, bid decision out.
pub trait BiddingStrategy: Send + Sync {
    /// Short display name ("Jupiter", "Extra(0,0.2)", …).
    fn name(&self) -> String;

    /// Decide bids for the next interval of `horizon_minutes`.
    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision;
}

impl BiddingStrategy for Box<dyn BiddingStrategy> {
    fn name(&self) -> String {
        self.as_ref().name()
    }

    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision {
        self.as_ref().decide(zones, spec, horizon_minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::topology::all_zones;

    #[test]
    fn decision_accessors() {
        let zones = all_zones();
        let d = BidDecision {
            bids: vec![
                PoolBid {
                    zone: zones[0],
                    instance_type: InstanceType::M1Small,
                    bid: Price::from_dollars(0.01),
                },
                PoolBid {
                    zone: zones[1],
                    instance_type: InstanceType::M3Large,
                    bid: Price::from_dollars(0.02),
                },
            ],
        };
        assert_eq!(d.n(), 2);
        assert_eq!(d.strength(), 5);
        assert_eq!(d.cost_upper_bound(), Price::from_dollars(0.03));
        assert_eq!(
            d.bid_for(zones[0], InstanceType::M1Small),
            Some(Price::from_dollars(0.01))
        );
        assert_eq!(d.bid_for(zones[0], InstanceType::M3Large), None);
        assert_eq!(d.bid_for(zones[5], InstanceType::M1Small), None);
        let e = BidDecision::empty();
        assert_eq!(e.n(), 0);
        assert_eq!(e.cost_upper_bound(), Price::ZERO);
    }

    #[test]
    fn single_type_constructor_tags_every_bid() {
        let zones = all_zones();
        let d = BidDecision::single_type(
            InstanceType::M1Small,
            vec![(zones[0], Price::from_dollars(0.01))],
        );
        assert_eq!(d.bids[0].instance_type, InstanceType::M1Small);
        assert_eq!(d.strength(), 1);
    }
}
