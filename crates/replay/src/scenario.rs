//! The declarative scenario engine: one market, one shared model store,
//! many (strategy × interval) replay cells.
//!
//! Every sweep in the paper's evaluation replays the *same* market window
//! under a grid of strategies and bidding intervals. The hand-rolled
//! drivers used to rebuild and retrain a [`jupiter::BiddingFramework`] per
//! cell — zones × strategies × intervals kernel fits for identical
//! training data. A [`Scenario`] owns the market (`Arc`-shared across
//! cells) and a [`ModelStore`] memoizing one [`spot_model::FrozenKernel`]
//! per (zone, type, training prefix); a [`SweepSpec`] declares the cell
//! grid; [`Scenario::run`] enumerates it rayon-parallel and merges each
//! cell's private obs registry into the scenario registry under a
//! `cell.{strategy}.{interval}h.` prefix.
//!
//! ```text
//!          Scenario (shared, read-only across cells)
//!          ├── Arc<Market>      — the price history
//!          ├── ModelStore       — Arc<FrozenKernel> per (zone, type, prefix)
//!          └── Obs              — merged per-cell registries + model_store.*
//!                 │ run(&SweepSpec)
//!                 ▼
//!          cell = (strategy factory, interval)   (private per cell)
//!          ├── BiddingFramework — forks shared kernels copy-on-write
//!          └── Obs              — replay.* counters for this cell only
//! ```

use std::sync::Arc;

use jupiter::{BiddingStrategy, ModelStore, ServiceSpec};
use obs::Obs;
use rayon::prelude::*;
use spot_market::{BidEra, InstanceType, Market, Price};

use crate::adaptive::{replay_adaptive_stored, AdaptiveConfig};
use crate::lifecycle::{on_demand_baseline_cost, replay_repair_stored, ReplayConfig};
use crate::repair::{RepairConfig, RepairPolicy};
use crate::results::ReplayResult;

/// Builds one strategy instance for one cell. The factory receives the
/// cell's private [`Obs`] so strategies that record decision metrics
/// (e.g. `JupiterStrategy::with_obs`) stay separable per cell.
pub type StrategyFactory = Box<dyn Fn(&Obs) -> Box<dyn BiddingStrategy> + Send + Sync>;

/// A declarative sweep: which service to deploy and the strategy ×
/// interval grid to replay it under.
pub struct SweepSpec {
    service: ServiceSpec,
    strategies: Vec<StrategyFactory>,
    intervals: Vec<u64>,
    repairs: Vec<RepairConfig>,
    /// Instance-pool columns; an empty inner vec means "as the service
    /// declares" (the default single column).
    pools: Vec<Vec<InstanceType>>,
    /// Interruption-era columns; defaults to the single
    /// [`BidEra::Bidding`] column, so pre-era sweeps replay byte-identically.
    eras: Vec<BidEra>,
}

impl SweepSpec {
    /// An empty sweep of `service`; add strategies and intervals with the
    /// builder methods. The repair axis defaults to the single
    /// [`RepairConfig::off`] column, so sweeps that never mention repair
    /// replay exactly as before.
    pub fn new(service: ServiceSpec) -> Self {
        SweepSpec {
            service,
            strategies: Vec::new(),
            intervals: Vec::new(),
            repairs: vec![RepairConfig::off()],
            pools: vec![Vec::new()],
            eras: vec![BidEra::Bidding],
        }
    }

    /// Add one strategy column to the grid.
    pub fn strategy(
        mut self,
        make: impl Fn(&Obs) -> Box<dyn BiddingStrategy> + Send + Sync + 'static,
    ) -> Self {
        self.strategies.push(Box::new(make));
        self
    }

    /// Set the bidding intervals (hours) to sweep.
    pub fn intervals(mut self, hours: impl Into<Vec<u64>>) -> Self {
        self.intervals = hours.into();
        self
    }

    /// Set the repair-policy columns to sweep (replacing the default
    /// single off column).
    pub fn repairs(mut self, repairs: impl Into<Vec<RepairConfig>>) -> Self {
        self.repairs = repairs.into();
        assert!(!self.repairs.is_empty(), "the repair axis cannot be empty");
        self
    }

    /// Set the instance-pool columns to sweep (the `hetero` axis,
    /// replacing the default single as-declared column): each entry
    /// replays the whole grid with the service deployed over exactly that
    /// set of (zone × type) pools, so single-type fleets race directly
    /// against mixes over the same market. The service's strength floor
    /// (`min_strength`) carries over unchanged into every column.
    pub fn pools(mut self, pools: impl Into<Vec<Vec<InstanceType>>>) -> Self {
        self.pools = pools.into();
        assert!(!self.pools.is_empty(), "the pool axis cannot be empty");
        assert!(
            self.pools.iter().all(|p| !p.is_empty()),
            "a pool column must name at least one instance type"
        );
        self
    }

    /// Set the interruption-era columns to sweep (replacing the default
    /// single [`BidEra::Bidding`] column): each entry replays the whole
    /// grid under that death regime over the same market, so the paper's
    /// bid-vs-price kills race directly against capacity-driven
    /// reclamations with advance notice.
    pub fn eras(mut self, eras: impl Into<Vec<BidEra>>) -> Self {
        self.eras = eras.into();
        assert!(!self.eras.is_empty(), "the era axis cannot be empty");
        self
    }

    /// The service this sweep deploys.
    pub fn service(&self) -> &ServiceSpec {
        &self.service
    }

    /// Number of cells the grid enumerates.
    pub fn cells(&self) -> usize {
        self.strategies.len()
            * self.intervals.len()
            * self.repairs.len()
            * self.pools.len()
            * self.eras.len()
    }
}

/// One completed cell of a sweep.
pub struct CellOutcome {
    /// The cell's bidding interval in hours.
    pub interval_hours: u64,
    /// The repair policy this cell replayed under.
    pub repair: RepairPolicy,
    /// The interruption era this cell replayed under.
    pub era: BidEra,
    /// The instance-type pools the cell's service was deployed over.
    pub pool_types: Vec<InstanceType>,
    /// The replay accounting for this cell.
    pub result: ReplayResult,
}

/// One market window plus the shared state every replay over it can
/// reuse: the `Arc`-shared [`Market`] and the [`ModelStore`] of frozen
/// per-zone kernels.
pub struct Scenario {
    market: Arc<Market>,
    eval_start: u64,
    eval_end: u64,
    store: ModelStore,
    obs: Obs,
}

impl Scenario {
    /// A scenario evaluating `[eval_start, eval_end)` of `market`, with
    /// observability disabled.
    pub fn new(market: Market, eval_start: u64, eval_end: u64) -> Self {
        Scenario {
            market: Arc::new(market),
            eval_start,
            eval_end,
            store: ModelStore::new(),
            obs: Obs::disabled(),
        }
    }

    /// Record scenario instruments into `obs`: the store's `model_store.*`
    /// work counters plus every cell's registry merged under
    /// `cell.{strategy}.{interval}h.`. Call before the first `run` — the
    /// store is rebuilt, dropping any kernels already fitted.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.store = ModelStore::with_obs(obs.clone());
        self.obs = obs;
        self
    }

    /// The shared market.
    pub fn market(&self) -> &Market {
        &self.market
    }

    /// The shared model store (e.g. to inspect how many fits ran).
    pub fn store(&self) -> &ModelStore {
        &self.store
    }

    /// The replay config for one interval choice over this window.
    pub fn config(&self, interval_hours: u64) -> ReplayConfig {
        ReplayConfig::new(self.eval_start, self.eval_end, interval_hours)
    }

    /// Replay the full strategy × interval × repair × pool × era grid of
    /// `spec`, cells in parallel over the shared market and store. Cells
    /// are returned in grid order (intervals outer, then strategies,
    /// repairs, pools, eras innermost), and each cell's private registry
    /// is merged into the scenario [`Obs`] in that same order, so output
    /// and metrics are independent of scheduling. Cells with repair off
    /// keep the historical `cell.{strategy}.{interval}h.` prefix;
    /// repairing cells append the policy label
    /// (`….{interval}h.{policy}.`), non-default pool columns their type
    /// list, and non-default era columns the era label.
    pub fn run(&self, spec: &SweepSpec) -> Vec<CellOutcome> {
        let jobs: Vec<(u64, usize, usize, usize, usize)> = spec
            .intervals
            .iter()
            .flat_map(|&h| {
                let repairs = spec.repairs.len();
                let pools = spec.pools.len();
                let eras = spec.eras.len();
                (0..spec.strategies.len()).flat_map(move |s| {
                    (0..repairs).flat_map(move |r| {
                        (0..pools)
                            .flat_map(move |p| (0..eras).map(move |e| (h, s, r, p, e)))
                    })
                })
            })
            .collect();
        let cells: Vec<(CellOutcome, bool, Obs)> = jobs
            .into_par_iter()
            .map(|(h, s, r, p, e)| {
                let cell_obs = if self.obs.metrics.is_enabled() {
                    Obs::simulated().0
                } else {
                    Obs::disabled()
                };
                let strategy = (spec.strategies[s])(&cell_obs);
                let repair = spec.repairs[r];
                let era = spec.eras[e];
                let default_pools = spec.pools[p].is_empty();
                let service = if default_pools {
                    spec.service.clone()
                } else {
                    spec.service.clone().with_pools(&spec.pools[p])
                };
                let result = replay_repair_stored(
                    &self.market,
                    &service,
                    strategy,
                    self.config(h).with_era(era),
                    repair,
                    &self.store,
                    &cell_obs,
                );
                (
                    CellOutcome {
                        interval_hours: h,
                        repair: repair.policy,
                        era,
                        pool_types: service.pools(),
                        result,
                    },
                    default_pools,
                    cell_obs,
                )
            })
            .collect();
        cells
            .into_iter()
            .map(|(cell, default_pools, cell_obs)| {
                let mut prefix = if cell.repair == RepairPolicy::Off {
                    format!("cell.{}.{}h.", cell.result.strategy, cell.interval_hours)
                } else {
                    format!(
                        "cell.{}.{}h.{}.",
                        cell.result.strategy,
                        cell.interval_hours,
                        cell.repair.label()
                    )
                };
                if !default_pools {
                    // Pool columns separate by their type list, so the
                    // default column keeps its historical prefix.
                    let label: Vec<String> =
                        cell.pool_types.iter().map(|t| t.to_string()).collect();
                    prefix.push_str(&label.join("+"));
                    prefix.push('.');
                }
                if cell.era != BidEra::Bidding {
                    // Era columns likewise: the default bidding era keeps
                    // its historical prefix byte-identically.
                    prefix.push_str(cell.era.label());
                    prefix.push('.');
                }
                self.obs.metrics.merge_prefixed(&cell_obs.metrics, &prefix);
                cell
            })
            .collect()
    }

    /// Replay one strategy under the §5.5 adaptive interval schedule,
    /// training from the same shared store as the fixed-interval cells.
    pub fn run_adaptive<S: BiddingStrategy>(
        &self,
        service: &ServiceSpec,
        strategy: S,
        adaptive: AdaptiveConfig,
    ) -> ReplayResult {
        replay_adaptive_stored(
            &self.market,
            service,
            strategy,
            self.config(adaptive.min_hours.max(1)),
            adaptive,
            &self.store,
            &Obs::disabled(),
        )
    }

    /// The on-demand baseline cost over this scenario's window.
    pub fn baseline_cost(&self, service: &ServiceSpec) -> Price {
        // The interval choice does not enter the baseline (it holds the
        // same on-demand fleet for the whole window).
        on_demand_baseline_cost(&self.market, service, self.config(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jupiter::{ExtraStrategy, JupiterStrategy};
    use obs::Obs;
    use spot_market::{InstanceType, MarketConfig};

    fn scenario_market() -> Market {
        let mut cfg = MarketConfig::paper(21, 3 * 7 * 24 * 60);
        cfg.zones.truncate(6);
        cfg.types = vec![InstanceType::M1Small];
        Market::generate(cfg)
    }

    fn spec_2x2() -> SweepSpec {
        SweepSpec::new(ServiceSpec::lock_service())
            .strategy(|_| Box::new(JupiterStrategy::new()))
            .strategy(|_| Box::new(ExtraStrategy::new(0, 0.2)))
            .intervals(vec![6, 12])
    }

    #[test]
    fn grid_runs_in_order_and_trains_once_per_zone() {
        let (obs, _clock) = Obs::simulated();
        let scenario =
            Scenario::new(scenario_market(), 2 * 7 * 24 * 60, 3 * 7 * 24 * 60).with_obs(obs.clone());
        let spec = spec_2x2();
        let cells = scenario.run(&spec);
        assert_eq!(cells.len(), spec.cells());
        // Grid order: intervals outer, strategies inner.
        let labels: Vec<(u64, String)> = cells
            .iter()
            .map(|c| (c.interval_hours, c.result.strategy.clone()))
            .collect();
        assert_eq!(labels[0], (6, "Jupiter".to_string()));
        assert_eq!(labels[1], (6, "Extra(0,0.2)".to_string()));
        assert_eq!(labels[2], (12, "Jupiter".to_string()));
        assert_eq!(labels[3], (12, "Extra(0,0.2)".to_string()));
        // One fit per zone, shared by all four cells: every cell needs all
        // 6 zones, so 4 × 6 lookups hit 6 fits.
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("model_store.fits_performed"), Some(6));
        assert_eq!(snap.counter("model_store.fits_reused"), Some(3 * 6));
        assert_eq!(scenario.store().len(), 6);
        // Each cell's replay counters land under its own prefix.
        assert!(snap.counter("cell.Jupiter.6h.replay.bids_placed").unwrap_or(0) > 0);
        assert!(
            snap.counter("cell.Extra(0,0.2).12h.replay.bids_placed")
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn stored_replay_matches_unshared_replay() {
        // The engine is a pure refactor: a cell replayed through the
        // shared store must equal the same replay trained privately.
        let market = scenario_market();
        let config = ReplayConfig::new(2 * 7 * 24 * 60, 3 * 7 * 24 * 60, 6);
        let service = ServiceSpec::lock_service();
        let direct = crate::lifecycle::replay_strategy(
            &market,
            &service,
            JupiterStrategy::new(),
            config,
        );
        let scenario = Scenario::new(market, 2 * 7 * 24 * 60, 3 * 7 * 24 * 60);
        let spec = SweepSpec::new(service)
            .strategy(|_| Box::new(JupiterStrategy::new()))
            .intervals(vec![6]);
        let cells = scenario.run(&spec);
        let stored = &cells[0].result;
        assert_eq!(stored.total_cost, direct.total_cost);
        assert_eq!(stored.up_minutes, direct.up_minutes);
        assert_eq!(stored.instances.len(), direct.instances.len());
    }

    #[test]
    fn repair_axis_multiplies_the_grid_and_prefixes_cells() {
        let (obs, _clock) = Obs::simulated();
        let scenario =
            Scenario::new(scenario_market(), 2 * 7 * 24 * 60, 3 * 7 * 24 * 60).with_obs(obs.clone());
        let spec = SweepSpec::new(ServiceSpec::lock_service())
            .strategy(|_| Box::new(ExtraStrategy::new(0, 0.2)))
            .intervals(vec![6])
            .repairs(vec![RepairConfig::off(), RepairConfig::hybrid()]);
        assert_eq!(spec.cells(), 2);
        let cells = scenario.run(&spec);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].repair, RepairPolicy::Off);
        assert_eq!(cells[1].repair, RepairPolicy::Hybrid);
        // Repair never lowers availability — boundary decisions are
        // frozen, so the hybrid cell only ever adds live instances.
        assert!(cells[1].result.up_minutes >= cells[0].result.up_minutes);
        assert!(cells[1].result.degraded_minutes <= cells[0].result.degraded_minutes);
        // The off cell keeps the historical prefix; the hybrid cell is
        // separated by its policy label.
        let snap = obs.metrics.snapshot();
        assert!(
            snap.counter("cell.Extra(0,0.2).6h.replay.bids_placed")
                .unwrap_or(0)
                > 0
        );
        assert!(
            snap.counter("cell.Extra(0,0.2).6h.hybrid.replay.bids_placed")
                .unwrap_or(0)
                > 0
        );
        assert!(snap
            .counter("cell.Extra(0,0.2).6h.hybrid.repair.deaths_detected")
            .is_some());
        // Both cells share one store: still one fit per zone.
        assert_eq!(snap.counter("model_store.fits_performed"), Some(6));
    }

    #[test]
    fn pool_axis_multiplies_the_grid_and_labels_cells() {
        let mut cfg = MarketConfig::hetero_paper(21, 3 * 7 * 24 * 60);
        cfg.zones.truncate(6);
        let market = Market::generate(cfg);
        let (obs, _clock) = Obs::simulated();
        let scenario =
            Scenario::new(market, 2 * 7 * 24 * 60, 3 * 7 * 24 * 60).with_obs(obs.clone());
        let service = ServiceSpec::lock_service().with_min_strength(5);
        let spec = SweepSpec::new(service)
            .strategy(|_| Box::new(JupiterStrategy::new()))
            .intervals(vec![6])
            .pools(vec![
                vec![InstanceType::M1Small],
                vec![InstanceType::M1Small, InstanceType::M3Large],
            ]);
        assert_eq!(spec.cells(), 2);
        let cells = scenario.run(&spec);
        assert_eq!(cells[0].pool_types, vec![InstanceType::M1Small]);
        assert_eq!(
            cells[1].pool_types,
            vec![InstanceType::M1Small, InstanceType::M3Large]
        );
        // Every cell meets the strength floor whenever it deploys.
        for c in &cells {
            for rec in c.result.instances.iter().filter(|r| !r.on_demand) {
                assert!(c.pool_types.contains(&rec.instance_type), "{rec:?}");
            }
        }
        // Pool columns land under type-labelled prefixes.
        let snap = obs.metrics.snapshot();
        assert!(
            snap.counter("cell.Jupiter.6h.m1.small.replay.bids_placed")
                .unwrap_or(0)
                > 0
        );
        assert!(
            snap.counter("cell.Jupiter.6h.m1.small+m3.large.replay.bids_placed")
                .unwrap_or(0)
                > 0
        );
    }

    #[test]
    fn adaptive_shares_the_store() {
        let (obs, _clock) = Obs::simulated();
        let scenario =
            Scenario::new(scenario_market(), 2 * 7 * 24 * 60, 3 * 7 * 24 * 60).with_obs(obs.clone());
        let service = ServiceSpec::lock_service();
        let spec = SweepSpec::new(service.clone())
            .strategy(|_| Box::new(JupiterStrategy::new()))
            .intervals(vec![6]);
        scenario.run(&spec);
        let r = scenario.run_adaptive(&service, JupiterStrategy::new(), AdaptiveConfig::default());
        assert!(r.strategy.contains("[adaptive]"));
        let snap = obs.metrics.snapshot();
        // The adaptive run refit nothing: all its kernels were stored.
        assert_eq!(snap.counter("model_store.fits_performed"), Some(6));
        assert_eq!(snap.counter("model_store.fits_reused"), Some(6));
    }
}
