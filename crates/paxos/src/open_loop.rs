//! An open-loop session client: operations arrive on a precomputed
//! schedule (the arrival process decides *when*, not the service), and
//! latency is measured from the **scheduled arrival** to completion, so
//! server-side queueing is charged to the request instead of silently
//! delaying subsequent arrivals (no coordinated omission).
//!
//! One session keeps at most one operation on the wire. This is not a
//! throughput limitation — concurrency comes from running many session
//! actors — but a correctness requirement: the replicas' exactly-once
//! cache assumes each client's requests are proposed in `req_id` order,
//! and the simulated network does not preserve FIFO. A session with two
//! requests in flight could see request `k+1` commit first, after which
//! request `k` is dropped everywhere as a stale duplicate and the
//! session livelocks. Demand that outruns a session's single slot queues
//! here and shows up as latency, exactly like an open-loop load
//! generator's connection pool.

use std::collections::VecDeque;

use obs::{FieldValue, Obs, SpanHandle};
use simnet::{Context, NodeId, SimTime, TimerToken};

use crate::ballot::Slot;
use crate::msg::{ClientOp, Msg};
use crate::replica::StateMachine;

/// Arrival-release timer (tokens 0–2 belong to the replica and the
/// closed-loop client).
const ARRIVAL_TOKEN: TimerToken = TimerToken(3);
/// Retransmission check timer.
const RETRY_TOKEN: TimerToken = TimerToken(4);

/// Sim-time milliseconds as trace microseconds.
fn sim_micros(t: SimTime) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

/// One scheduled operation and its outcome.
#[derive(Clone, Debug)]
pub struct OpenOp<SM: StateMachine> {
    /// The command.
    pub cmd: SM::Command,
    /// Scheduled arrival time (latency is measured from here).
    pub scheduled: SimTime,
    /// Completion time and response, once acknowledged.
    pub completed: Option<(SimTime, SM::Response)>,
    /// Whether this was routed as a follower-local read.
    pub read: bool,
}

/// An open-loop session actor driving one Paxos cluster.
#[derive(Clone, Debug)]
pub struct OpenLoopClient<SM: StateMachine> {
    me: NodeId,
    servers: Vec<NodeId>,
    timeout: SimTime,
    local_reads: bool,
    /// Open a causal `client.request` root span for every Nth launched
    /// operation (0 disables tracing entirely). Sampling keeps the
    /// bounded trace ring representative at 100k-request scale.
    trace_every: u64,
    records: Vec<OpenOp<SM>>,
    /// Scheduled times still waiting for their arrival timer, oldest
    /// first (parallel prefix of `records`).
    pending_arrivals: VecDeque<SimTime>,
    /// Records released by the arrival process (prefix of `records`).
    arrived: usize,
    /// Records sent at least once (prefix of `arrived`).
    launched: usize,
    /// In-flight record index, if any.
    current: Option<usize>,
    last_sent: SimTime,
    target: usize,
    /// Current attempt is a follower-local read (cleared on timeout).
    read_in_flight: bool,
    span: Option<SpanHandle>,
    leader_hint: Option<NodeId>,
    floor: Slot,
    retransmits: u64,
    local_served: u64,
    obs: Obs,
}

impl<SM: StateMachine> OpenLoopClient<SM> {
    /// A session that plays `schedule` (must be sorted by time) against
    /// `servers`. `req_id`s are assigned in schedule order starting at 1.
    pub fn new(me: NodeId, servers: Vec<NodeId>, schedule: Vec<(SimTime, SM::Command)>) -> Self {
        assert!(!servers.is_empty(), "session needs at least one server");
        debug_assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "schedule must be sorted by arrival time"
        );
        let pending_arrivals = schedule.iter().map(|(t, _)| *t).collect();
        let records = schedule
            .into_iter()
            .map(|(scheduled, cmd)| OpenOp {
                read: false, // resolved at launch, once local_reads is known
                cmd,
                scheduled,
                completed: None,
            })
            .collect();
        OpenLoopClient {
            me,
            servers,
            timeout: SimTime::from_millis(1_000),
            local_reads: false,
            trace_every: 1,
            records,
            pending_arrivals,
            arrived: 0,
            launched: 0,
            current: None,
            last_sent: SimTime::ZERO,
            target: 0,
            read_in_flight: false,
            span: None,
            leader_hint: None,
            floor: 0,
            retransmits: 0,
            local_served: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle (builder-style).
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Route read-only commands to followers as local reads.
    pub fn with_local_reads(mut self, enabled: bool) -> Self {
        self.local_reads = enabled;
        self
    }

    /// Retransmission timeout.
    pub fn with_timeout(mut self, timeout: SimTime) -> Self {
        self.timeout = timeout;
        self
    }

    /// Trace every Nth operation (0 traces none).
    pub fn with_trace_every(mut self, every: u64) -> Self {
        self.trace_every = every;
        self
    }

    /// Every scheduled operation and its outcome.
    pub fn records(&self) -> &[OpenOp<SM>] {
        &self.records
    }

    /// Operations acknowledged so far.
    pub fn completions(&self) -> usize {
        self.records.iter().filter(|r| r.completed.is_some()).count()
    }

    /// Operations not yet acknowledged (scheduled or in flight).
    pub fn outstanding(&self) -> usize {
        self.records.len() - self.completions()
    }

    /// Retransmissions performed.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Completions served locally by a follower.
    pub fn local_served(&self) -> u64 {
        self.local_served
    }

    /// The session floor (highest acknowledged applied index).
    pub fn floor(&self) -> Slot {
        self.floor
    }

    fn arm_next_arrival(&mut self, ctx: &mut Context<Msg<SM>>) {
        if let Some(&next) = self.pending_arrivals.front() {
            ctx.set_timer(next.saturating_sub(ctx.now), ARRIVAL_TOKEN);
        }
    }

    fn send_current(&mut self, ctx: &mut Context<Msg<SM>>) {
        let Some(idx) = self.current else { return };
        self.last_sent = ctx.now;
        let trace = match &self.span {
            Some(span) => span.context(),
            None => ctx.trace(),
        };
        let rec = &self.records[idx];
        let req_id = idx as u64 + 1;
        if self.read_in_flight {
            let target = self.servers[self.target % self.servers.len()];
            ctx.send_traced(
                target,
                Msg::ReadRequest {
                    client: self.me,
                    req_id,
                    cmd: rec.cmd.clone(),
                    floor: self.floor,
                },
                trace,
            );
        } else {
            let target = match self.leader_hint {
                Some(l) if self.servers.contains(&l) => l,
                _ => self.servers[self.target % self.servers.len()],
            };
            ctx.send_traced(
                target,
                Msg::Request {
                    client: self.me,
                    req_id,
                    op: ClientOp::App(rec.cmd.clone()),
                },
                trace,
            );
        }
        ctx.set_timer(self.timeout, RETRY_TOKEN);
    }

    /// Put the next released record on the wire if the slot is free.
    fn try_launch(&mut self, ctx: &mut Context<Msg<SM>>) {
        if self.current.is_some() || self.launched >= self.arrived {
            return;
        }
        let idx = self.launched;
        self.launched += 1;
        let read = self.local_reads && SM::is_read_only(&self.records[idx].cmd);
        self.records[idx].read = read;
        self.read_in_flight = read;
        self.current = Some(idx);
        // Spread sessions' first picks deterministically by identity.
        self.target = self.me.0 + idx;
        self.span = if self.trace_every > 0 && (idx as u64).is_multiple_of(self.trace_every) {
            self.obs.set_time_micros(sim_micros(ctx.now));
            Some(self.obs.trace.span_open_causal(
                "client.request",
                ctx.new_trace(),
                &[
                    ("client", FieldValue::U64(self.me.0 as u64)),
                    ("req_id", FieldValue::U64(idx as u64 + 1)),
                ],
            ))
        } else {
            None
        };
        self.send_current(ctx);
    }

    /// Boot: arm the first arrival.
    pub fn on_start(&mut self, ctx: &mut Context<Msg<SM>>) {
        self.arm_next_arrival(ctx);
    }

    /// Timers: arrival releases and retransmission checks.
    pub fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<Msg<SM>>) {
        match token {
            ARRIVAL_TOKEN => {
                while self
                    .pending_arrivals
                    .front()
                    .is_some_and(|&t| t <= ctx.now)
                {
                    self.pending_arrivals.pop_front();
                    self.arrived += 1;
                }
                self.arm_next_arrival(ctx);
                self.try_launch(ctx);
            }
            RETRY_TOKEN => {
                if self.current.is_none() {
                    return; // stale timer from a completed op
                }
                if ctx.now.saturating_sub(self.last_sent) >= self.timeout {
                    self.retransmits += 1;
                    self.target += 1;
                    self.leader_hint = None;
                    // A timed-out read falls back to the leader path.
                    self.read_in_flight = false;
                    if let Some(span) = &self.span {
                        self.obs.set_time_micros(sim_micros(ctx.now));
                        self.obs.trace.event_causal(
                            "client.retransmit",
                            span.context(),
                            &[("req_id", FieldValue::U64(
                                self.current.map(|i| i as u64 + 1).unwrap_or(0),
                            ))],
                        );
                    }
                    self.send_current(ctx);
                }
            }
            _ => {}
        }
    }

    /// Message dispatch (responses only).
    pub fn on_message(&mut self, from: NodeId, msg: Msg<SM>, ctx: &mut Context<Msg<SM>>) {
        let (req_id, resp, at, from_leader) = match msg {
            Msg::Response { req_id, resp, at } => (req_id, resp, at, true),
            Msg::ReadResponse { req_id, resp, at } => (req_id, Some(resp), at, false),
            _ => return,
        };
        let Some(idx) = self.current else { return };
        if idx as u64 + 1 != req_id {
            return; // stale response for an already completed op
        }
        let Some(resp) = resp else {
            return; // reconfig-shaped response; sessions never send those
        };
        self.current = None;
        if from_leader {
            self.leader_hint = Some(from);
        } else {
            self.local_served += 1;
        }
        self.floor = self.floor.max(at);
        self.records[idx].completed = Some((ctx.now, resp));
        if let Some(span) = self.span.take() {
            self.obs.set_time_micros(sim_micros(ctx.now));
            self.obs.trace.span_close(
                span,
                "client.request",
                &[
                    ("req_id", FieldValue::U64(req_id)),
                    ("leader", FieldValue::U64(from.0 as u64)),
                ],
            );
        }
        self.try_launch(ctx);
    }
}
