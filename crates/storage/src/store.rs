//! The per-replica shard store: the applied state of the coded log.

use std::collections::BTreeMap;

use bytes::Bytes;

/// What one replica knows about one key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardEntry {
    /// Version = log slot of the latest applied `Put`.
    pub version: u64,
    /// This replica's shard index for that version.
    pub shard_idx: u8,
    /// The shard bytes — `None` when this replica learned the write's
    /// metadata (via catch-up from a leader without the object) but never
    /// received its shard.
    pub shard: Option<Bytes>,
}

/// The applied key → shard map of one replica.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStore {
    entries: BTreeMap<String, ShardEntry>,
}

impl ShardStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a `Put` shard (or metadata-only record). Later versions win;
    /// an equal version with bytes upgrades a metadata-only record.
    pub fn apply_put(&mut self, key: &str, version: u64, shard_idx: u8, shard: Option<Bytes>) {
        match self.entries.get_mut(key) {
            Some(e) if e.version > version => {}
            Some(e) if e.version == version => {
                if e.shard.is_none() {
                    e.shard = shard;
                    e.shard_idx = shard_idx;
                }
            }
            _ => {
                self.entries.insert(
                    key.to_string(),
                    ShardEntry {
                        version,
                        shard_idx,
                        shard,
                    },
                );
            }
        }
    }

    /// Apply a `Delete` (only if not superseded by a newer write).
    pub fn apply_delete(&mut self, key: &str, version: u64) {
        if let Some(e) = self.entries.get(key) {
            if e.version <= version {
                self.entries.remove(key);
            }
        }
    }

    /// This replica's record for `key`.
    pub fn get(&self, key: &str) -> Option<&ShardEntry> {
        self.entries.get(key)
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes of shard data held (the storage-saving metric RS-Paxos
    /// optimizes).
    pub fn shard_bytes(&self) -> usize {
        self.entries
            .values()
            .filter_map(|e| e.shard.as_ref().map(Bytes::len))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_are_monotone() {
        let mut s = ShardStore::new();
        s.apply_put("k", 5, 1, Some(Bytes::from_static(b"v5")));
        s.apply_put("k", 3, 1, Some(Bytes::from_static(b"v3")));
        assert_eq!(s.get("k").unwrap().version, 5);
        s.apply_put("k", 9, 2, Some(Bytes::from_static(b"v9")));
        assert_eq!(s.get("k").unwrap().version, 9);
        assert_eq!(s.get("k").unwrap().shard_idx, 2);
    }

    #[test]
    fn metadata_upgraded_by_shard_arrival() {
        let mut s = ShardStore::new();
        s.apply_put("k", 4, 3, None);
        assert!(s.get("k").unwrap().shard.is_none());
        s.apply_put("k", 4, 3, Some(Bytes::from_static(b"late")));
        assert_eq!(s.get("k").unwrap().shard.as_deref(), Some(&b"late"[..]));
        // A second arrival does not clobber.
        s.apply_put("k", 4, 0, Some(Bytes::from_static(b"dup")));
        assert_eq!(s.get("k").unwrap().shard.as_deref(), Some(&b"late"[..]));
    }

    #[test]
    fn delete_respects_versions() {
        let mut s = ShardStore::new();
        s.apply_put("k", 10, 0, Some(Bytes::from_static(b"x")));
        // A stale delete (version 7 < 10) is ignored.
        s.apply_delete("k", 7);
        assert!(s.get("k").is_some());
        s.apply_delete("k", 11);
        assert!(s.get("k").is_none());
        // Deleting a missing key is a no-op.
        s.apply_delete("k", 12);
        assert!(s.is_empty());
    }

    #[test]
    fn shard_bytes_accounting() {
        let mut s = ShardStore::new();
        s.apply_put("a", 1, 0, Some(Bytes::from(vec![0u8; 100])));
        s.apply_put("b", 2, 0, None);
        s.apply_put("c", 3, 0, Some(Bytes::from(vec![0u8; 50])));
        assert_eq!(s.shard_bytes(), 150);
        assert_eq!(s.len(), 3);
    }
}
