//! Chaos-sweep drivers: run a seeded workload against a cluster while a
//! [`ChaosSchedule`] injects faults, then run the safety checkers.
//!
//! Both drivers are pure functions of the schedule (workload, cluster
//! seeds, and fault times all derive from `schedule.seed`), so a failing
//! run reproduces byte-for-byte from the printed seed — asserted via the
//! simulator's run [`fingerprint`](simnet::Simulation::fingerprint).
//!
//! On failure, [`shrink_and_report`] reduces the schedule to its minimal
//! failing prefix, re-runs it with tracing enabled, and packages the
//! seed, the pretty-printed schedule, the obs trace, and the exact
//! re-run command into a [`ChaosFailure`].

use std::fmt;

use obs::Obs;
use paxos::{ClientOp, LockCmd, ReplicaConfig};
use rand::Rng;
use simnet::{ChaosSchedule, SimTime};
use storage::{RsConfig, StoreCmd};

use crate::check::{check_lock_cluster, check_storage_cluster};
use crate::env::repro_command;
use crate::fixtures::{lock_cluster, storage_cluster};
use crate::rng::{derive_seed, rng_from};

/// Sub-seed streams carved out of one schedule seed.
const STREAM_CLUSTER: u64 = 1;
const STREAM_WORKLOAD: u64 = 2;

/// How long after the last chaos event the clients get to drain before
/// the run is declared stuck.
const DRAIN_GRACE: SimTime = SimTime::from_secs(240);

/// What a successful chaos run produced.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOutcome {
    /// The simulator's run digest — equal across runs of the same
    /// schedule, the byte-for-byte reproducibility witness.
    pub fingerprint: u64,
    /// Completed client operations audited by the checker.
    pub ops_checked: usize,
    /// Reads answered `Unavailable` (storage runs; 0 for lock runs).
    pub unavailable_reads: usize,
    /// Keys degraded below `m` surviving byte shards (storage runs; see
    /// [`crate::check::StorageCheckStats::eroded_keys`]).
    pub eroded_keys: usize,
    /// Batch slot values the run chose and audited (0 unless the driver
    /// ran with leader batching enabled): the witness that a batched
    /// sweep actually exercised the batched proposal path.
    pub batches_checked: usize,
}

/// Everything needed to reproduce and diagnose a failing chaos run.
#[derive(Clone, Debug)]
pub struct ChaosFailure {
    /// The schedule seed.
    pub seed: u64,
    /// The derived sub-seed the run's client workload was drawn from
    /// (`derive_seed(seed, STREAM_WORKLOAD)`) — printed so a failure in
    /// a batched run can be replayed against the exact request stream,
    /// not just the fault timeline.
    pub workload_seed: u64,
    /// Why the (full) run failed.
    pub reason: String,
    /// The minimal failing prefix, pretty-printed.
    pub schedule: String,
    /// Why the minimal prefix fails (usually the same reason).
    pub minimal_reason: String,
    /// Obs trace (JSON lines) of the minimal failing run.
    pub trace_json: String,
    /// Alerts the online monitors fired during the minimal failing run
    /// (liveness watchdog stalls, SLO burns) — the monitor's verdict on
    /// *what* degraded, alongside the checker's verdict on what broke.
    pub verdicts: Vec<obs::AlertEvent>,
    /// Copy-paste command that re-runs exactly this schedule.
    pub repro: String,
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chaos run failed: {}", self.reason)?;
        writeln!(
            f,
            "schedule seed {:#x}, workload seed {:#x}",
            self.seed, self.workload_seed
        )?;
        writeln!(f, "minimal failing prefix: {}", self.minimal_reason)?;
        write!(f, "{}", self.schedule)?;
        writeln!(f, "reproduce with:\n  {}", self.repro)?;
        if self.verdicts.is_empty() {
            writeln!(f, "monitor verdicts: none fired during the minimal run")?;
        } else {
            writeln!(f, "monitor verdicts ({}):", self.verdicts.len())?;
            for a in &self.verdicts {
                writeln!(
                    f,
                    "  [{}] {} @ {} µs: {}",
                    a.severity.label(),
                    a.monitor,
                    a.at_micros,
                    a.message
                )?;
            }
        }
        let events = self.trace_json.lines().count();
        writeln!(f, "obs trace of the minimal run ({events} events):")?;
        for line in self.trace_json.lines().take(40) {
            writeln!(f, "  {line}")?;
        }
        if events > 40 {
            writeln!(f, "  … {} more", events - 40)?;
        }
        Ok(())
    }
}

/// Run the lock-service workload under `schedule` and check every lock
/// invariant. `obs` instruments the replicas (pass [`Obs::disabled`]
/// for sweeps; it does not affect determinism).
pub fn run_lock_chaos(schedule: &ChaosSchedule, obs: &Obs) -> Result<ChaosOutcome, String> {
    let cfg = ReplicaConfig {
        obs: obs.clone(),
        ..ReplicaConfig::default()
    };
    run_lock_chaos_with(schedule, cfg, 2)
}

/// [`run_lock_chaos`] with leader batching and accept pipelining on
/// (batch 4, pipeline 2, a 20 ms batch window): same schedules, same
/// safety bar, plus the batch-atomicity audit in the checker. A third
/// closed-loop client raises the odds that concurrent requests coalesce
/// into real multi-entry batches. Follower-local reads stay off — they
/// are exercised by their own seeded interleaving test, not by the
/// fault sweeps.
pub fn run_lock_chaos_batched(schedule: &ChaosSchedule, obs: &Obs) -> Result<ChaosOutcome, String> {
    let cfg = ReplicaConfig {
        batch_max_ops: 4,
        batch_delay: SimTime::from_millis(20),
        pipeline: 2,
        obs: obs.clone(),
        ..ReplicaConfig::default()
    };
    run_lock_chaos_with(schedule, cfg, 3)
}

fn run_lock_chaos_with(
    schedule: &ChaosSchedule,
    cfg: ReplicaConfig,
    n_clients: usize,
) -> Result<ChaosOutcome, String> {
    let obs = &cfg.obs.clone();
    let mut c = lock_cluster(5, cfg, derive_seed(schedule.seed, STREAM_CLUSTER));
    let clients: Vec<_> = (0..n_clients).map(|_| c.add_client()).collect();

    // Seeded workload, queued up-front; the closed-loop clients trickle
    // it through the cluster while faults land.
    let mut wl = rng_from(derive_seed(schedule.seed, STREAM_WORKLOAD));
    for (ci, &client) in clients.iter().enumerate() {
        // Command-embedded timestamps: monotone per client, so lease
        // expiry is deterministic and renewals can never go backwards.
        let mut now_ms = 1_000 * (ci as u64 + 1);
        for _ in 0..12 {
            now_ms += 1_500;
            let name = if wl.gen_bool(0.5) { "alpha" } else { "beta" };
            let name = name.to_string();
            let cmd = match wl.gen_range(0..6u32) {
                0 => LockCmd::Acquire {
                    name,
                    owner: client,
                },
                1 | 2 => LockCmd::AcquireLease {
                    name,
                    owner: client,
                    now_ms,
                    ttl_ms: wl.gen_range(2_000..10_000),
                },
                3 => LockCmd::Renew {
                    name,
                    owner: client,
                    now_ms,
                },
                4 => LockCmd::Release {
                    name,
                    owner: client,
                },
                _ => LockCmd::Holder { name },
            };
            c.submit(client, ClientOp::App(cmd));
        }
    }

    // Execute the fault schedule interleaved with the workload.
    for ev in &schedule.events {
        c.sim.run_until(ev.at);
        obs.set_time_micros(c.sim.now().as_millis() * 1_000);
        c.apply_chaos(&ev.action);
    }

    // Recovery epilogue: whatever state the schedule (or a shrunk prefix
    // of it) left behind, restore the network and every replica so the
    // drain below asserts *eventual* progress, not luck.
    c.apply_chaos(&simnet::ChaosAction::ClearLinkChaos);
    c.apply_chaos(&simnet::ChaosAction::Heal);
    for id in c.servers().to_vec() {
        c.apply_chaos(&simnet::ChaosAction::Restart(id));
    }

    let deadline = c.sim.now() + DRAIN_GRACE;
    for &client in &clients {
        if !c.run_until_drained(client, deadline) {
            return Err(format!(
                "liveness: client {client} still has outstanding ops {} after the \
                 schedule healed",
                DRAIN_GRACE
            ));
        }
    }
    obs.set_time_micros(c.sim.now().as_millis() * 1_000);

    let stats = check_lock_cluster(&c)?;
    Ok(ChaosOutcome {
        fingerprint: c.sim.fingerprint(),
        ops_checked: stats.responses_checked,
        unavailable_reads: 0,
        eroded_keys: 0,
        batches_checked: stats.batches_checked,
    })
}

/// Run the θ(3,5) storage workload under `schedule` and check
/// read-your-writes plus final decoded-value integrity.
pub fn run_storage_chaos(schedule: &ChaosSchedule, obs: &Obs) -> Result<ChaosOutcome, String> {
    let cfg = RsConfig {
        obs: obs.clone(),
        ..RsConfig::default()
    };
    run_storage_chaos_with(schedule, cfg, 1)
}

/// [`run_storage_chaos`] with batched shard proposals and accept
/// pipelining on (batch 4, pipeline 2, a 20 ms batch window), and a
/// second closed-loop writer over a disjoint key range so multi-entry
/// batches actually form (a batch carries at most one command per
/// client). The checker's read-your-writes and decoded-value audits
/// double as the batch-atomicity check: a partially applied batch
/// leaves a key at a version whose bytes never completed, which the
/// final shard audit rejects.
pub fn run_storage_chaos_batched(
    schedule: &ChaosSchedule,
    obs: &Obs,
) -> Result<ChaosOutcome, String> {
    let cfg = RsConfig {
        batch_max_ops: 4,
        batch_delay: SimTime::from_millis(20),
        pipeline: 2,
        obs: obs.clone(),
        ..RsConfig::default()
    };
    run_storage_chaos_with(schedule, cfg, 2)
}

fn run_storage_chaos_with(
    schedule: &ChaosSchedule,
    cfg: RsConfig,
    n_writers: usize,
) -> Result<ChaosOutcome, String> {
    let obs = &cfg.obs.clone();
    let m = cfg.m;
    let mut c = storage_cluster(5, cfg, derive_seed(schedule.seed, STREAM_CLUSTER));
    let writers: Vec<_> = (0..n_writers).map(|_| c.add_client()).collect();

    // Closed-loop writers over disjoint three-key ranges: rounds of
    // put/get with the occasional delete. One writer per key keeps the
    // read-your-writes audit exact; object bytes are a pure function of
    // (seed, round, key) so any stale read is detectable.
    for (wi, &client) in writers.iter().enumerate() {
        let mut wl = rng_from(derive_seed(schedule.seed, STREAM_WORKLOAD + wi as u64));
        for round in 0..6u64 {
            for key_i in 0..3u64 {
                let ki = wi as u64 * 3 + key_i;
                let key = format!("k{ki}");
                if wl.gen_bool(0.1) {
                    c.submit(client, StoreCmd::Delete { key });
                    continue;
                }
                if wl.gen_bool(0.7) {
                    let len = wl.gen_range(16..256usize);
                    let tag = derive_seed(schedule.seed, (round << 8) | ki);
                    let object: Vec<u8> = (0..len)
                        .map(|i| (tag.rotate_left(i as u32 % 64) & 0xFF) as u8)
                        .collect();
                    c.submit(
                        client,
                        StoreCmd::Put {
                            key: key.clone(),
                            object: object.into(),
                        },
                    );
                }
                if wl.gen_bool(0.8) {
                    c.submit(client, StoreCmd::Get { key });
                }
            }
        }
    }

    for ev in &schedule.events {
        c.sim.run_until(ev.at);
        obs.set_time_micros(c.sim.now().as_millis() * 1_000);
        c.apply_chaos(&ev.action);
    }

    c.apply_chaos(&simnet::ChaosAction::ClearLinkChaos);
    c.apply_chaos(&simnet::ChaosAction::Heal);
    for id in c.servers().to_vec() {
        c.apply_chaos(&simnet::ChaosAction::Restart(id));
    }

    let deadline = c.sim.now() + DRAIN_GRACE;
    for &client in &writers {
        if !c.run_until_drained(client, deadline) {
            return Err(format!(
                "liveness: storage client {client} still has outstanding ops {} after \
                 the schedule healed",
                DRAIN_GRACE
            ));
        }
    }
    obs.set_time_micros(c.sim.now().as_millis() * 1_000);

    let stats = check_storage_cluster(&c, &writers, m)?;
    // The storage replica has no applied-log accessor; its lifetime
    // batch counter is the witness that batching actually ran.
    let batches_checked = c
        .servers()
        .iter()
        .filter_map(|&id| c.replica(id))
        .map(|r| r.batches_applied() as usize)
        .max()
        .unwrap_or(0);
    Ok(ChaosOutcome {
        fingerprint: c.sim.fingerprint(),
        ops_checked: stats.ops_checked,
        unavailable_reads: stats.unavailable_reads,
        eroded_keys: stats.eroded_keys,
        batches_checked,
    })
}

/// Shrink a failing schedule to its minimal failing prefix, re-run that
/// prefix with tracing on, and package the full diagnosis.
///
/// `run` is the driver under test ([`run_lock_chaos`] or
/// [`run_storage_chaos`]); `reason` is the failure the caller observed
/// on the full schedule.
pub fn shrink_and_report(
    schedule: &ChaosSchedule,
    test_name: &str,
    reason: String,
    run: impl Fn(&ChaosSchedule, &Obs) -> Result<ChaosOutcome, String>,
) -> ChaosFailure {
    let minimal = schedule
        .minimal_failing_prefix(|s| run(s, &Obs::disabled()).is_err())
        .unwrap_or_else(|| schedule.clone());
    let (obs, _clock) = Obs::simulated();
    let minimal_reason = match run(&minimal, &obs) {
        Err(e) => e,
        // Shrinking re-runs must be deterministic, so this only happens
        // if a driver is nondeterministic — worth reporting loudly.
        Ok(_) => "minimal prefix did not reproduce the failure (nondeterminism!)".to_string(),
    };
    ChaosFailure {
        seed: schedule.seed,
        workload_seed: derive_seed(schedule.seed, STREAM_WORKLOAD),
        reason,
        schedule: minimal.to_string(),
        minimal_reason,
        trace_json: obs.trace.to_json_lines(),
        verdicts: obs.alerts.snapshot(),
        repro: repro_command(test_name, schedule.seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::ChaosPlan;

    #[test]
    fn quiet_lock_run_passes_and_fingerprints_identically() {
        let s = ChaosSchedule::empty(11);
        let a = run_lock_chaos(&s, &Obs::disabled()).expect("quiet run is safe");
        let b = run_lock_chaos(&s, &Obs::disabled()).expect("quiet run is safe");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.ops_checked > 0, "checker saw completed ops");
    }

    #[test]
    fn quiet_storage_run_passes() {
        let s = ChaosSchedule::empty(12);
        let out = run_storage_chaos(&s, &Obs::disabled()).expect("quiet run is safe");
        assert!(out.ops_checked > 0);
    }

    #[test]
    fn quiet_batched_runs_are_safe_and_reproducible() {
        let s = ChaosSchedule::empty(13);
        let a = run_lock_chaos_batched(&s, &Obs::disabled()).expect("quiet batched run is safe");
        let b = run_lock_chaos_batched(&s, &Obs::disabled()).expect("quiet batched run is safe");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.ops_checked > 0);
        let st =
            run_storage_chaos_batched(&s, &Obs::disabled()).expect("quiet batched store is safe");
        assert!(st.ops_checked > 0);
    }

    #[test]
    fn chaotic_lock_run_is_reproducible() {
        let plan = ChaosPlan::lock_service(SimTime::from_secs(45), 10);
        let s = ChaosSchedule::generate(77, &plan);
        let a = run_lock_chaos(&s, &Obs::disabled()).expect("within-margin chaos is safe");
        let b = run_lock_chaos(&s, &Obs::disabled()).expect("within-margin chaos is safe");
        assert_eq!(a.fingerprint, b.fingerprint, "byte-identical reproduction");
    }

    #[test]
    fn failure_report_carries_seed_and_repro() {
        let plan = ChaosPlan::lock_service(SimTime::from_secs(30), 6);
        let s = ChaosSchedule::generate(5, &plan);
        // A synthetic always-failing driver exercises the report path
        // without needing a real bug.
        let fail = shrink_and_report(&s, "lock_sweep", "synthetic".into(), |_, _| {
            Err("synthetic".into())
        });
        assert_eq!(fail.seed, 5);
        assert_eq!(fail.workload_seed, crate::rng::derive_seed(5, STREAM_WORKLOAD));
        assert!(fail.repro.contains("CHAOS_SEED=0x5"));
        let text = fail.to_string();
        assert!(text.contains("reproduce with"));
        assert!(text.contains("workload seed"));
        assert!(text.contains("chaos schedule seed="));
        // The monitor-verdict block renders even when nothing fired.
        assert!(text.contains("monitor verdicts"));
    }

    #[test]
    fn failure_report_renders_fired_verdicts() {
        let plan = ChaosPlan::lock_service(SimTime::from_secs(30), 6);
        let s = ChaosSchedule::generate(6, &plan);
        // A driver that fires an alert into the re-run's sink before
        // failing: the report must carry the monitor's verdict.
        let fail = shrink_and_report(&s, "lock_sweep", "synthetic".into(), |_, obs| {
            obs.alerts.emit(
                42_000_000,
                "watchdog.liveness",
                obs::Severity::Critical,
                "no progress for 30000000 µs".to_string(),
                Vec::new(),
                Vec::new(),
            );
            Err("synthetic".into())
        });
        assert_eq!(fail.verdicts.len(), 1);
        let text = fail.to_string();
        assert!(text.contains("monitor verdicts (1):"));
        assert!(text.contains("[critical] watchdog.liveness @ 42000000 µs"));
    }
}
