//! The mid-interval repair controller: policy and knobs.
//!
//! The paper's online algorithm (Fig. 3) only re-decides at bidding
//! interval boundaries, so an out-of-bid kill mid-interval leaves the
//! quorum degraded for up to a full interval. The repair controller reacts
//! to those kills between boundaries:
//!
//! ```text
//!            kill detected            rebid granted
//!  healthy ───────────────▶ degraded ───────────────▶ healthy
//!     ▲                        │  ▲                      │
//!     │                        │  │ rebid failed:        │
//!     │      boundary          │  │ backoff ×2, retry    │
//!     └────────────────────────┘  └──────────────────────┘
//!                              │
//!                              │ budget exhausted / spot infeasible
//!                              ▼
//!                          fallback (on-demand replacement, Hybrid only)
//! ```
//!
//! A repair re-runs the per-zone bid selection through the same
//! [`jupiter::BiddingFramework`] the boundary decisions use — against the
//! already-frozen [`jupiter::ModelStore`] kernels, never with freshly
//! trained models — with a fresh market snapshot at the repair minute.
//! Rebids respect an exponential backoff and a per-interval budget; when
//! the spot market cannot fill the gap (no feasible bid, grant refused, or
//! budget exhausted), [`RepairPolicy::Hybrid`] escalates to on-demand
//! replacements billed via [`spot_market::on_demand_charge`] and retired
//! at the next boundary.

/// How the replay responds to mid-interval out-of-bid terminations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RepairPolicy {
    /// The paper's behaviour: dead instances stay dead until the next
    /// bidding-interval boundary.
    #[default]
    Off,
    /// Reactive spot rebid: re-run the bid selection for the missing
    /// slots, backing off exponentially when the market cannot fill them.
    Reactive,
    /// Reactive spot rebid with an on-demand fallback tier: slots the spot
    /// market cannot fill (or that exceed the rebid budget) are replaced
    /// by on-demand instances until the next boundary.
    Hybrid,
    /// Proactive migration on interruption notices: under
    /// [`spot_market::BidEra::CapacityReclaim`] the controller reacts to
    /// the provider's advance notice (and earlier rebalance
    /// recommendations) by launching a replacement in a diversified pool
    /// and draining the victim's slot before the kill lands. Deaths the
    /// notice path cannot cover fall back to the reactive rebid walk.
    /// Under the default bidding era there are no notices, so this policy
    /// replays exactly as [`RepairPolicy::Reactive`].
    Migrate,
}

impl RepairPolicy {
    /// Short lowercase label used in metric prefixes and report rows.
    pub fn label(&self) -> &'static str {
        match self {
            RepairPolicy::Off => "off",
            RepairPolicy::Reactive => "reactive",
            RepairPolicy::Hybrid => "hybrid",
            RepairPolicy::Migrate => "migrate",
        }
    }
}

impl std::fmt::Display for RepairPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Repair-controller knobs. The defaults detect a kill within a minute,
/// rebid after a five-minute settle (price spikes that kill an instance
/// are often still standing at the kill minute), double the wait on every
/// failed repair, and allow four rebids per interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepairConfig {
    /// The response policy.
    pub policy: RepairPolicy,
    /// Minutes between an out-of-bid kill and the controller noticing it.
    pub detection_delay_minutes: u64,
    /// Wait before the first rebid after a kill, minutes.
    pub backoff_base_minutes: u64,
    /// Upper bound on the exponential backoff, minutes.
    pub backoff_cap_minutes: u64,
    /// Rebid budget per bidding interval; repairs beyond it escalate
    /// straight to on-demand (Hybrid) or give up (Reactive).
    pub max_rebids_per_interval: u32,
}

impl RepairConfig {
    /// Repair disabled — byte-for-byte the paper's fixed-interval replay.
    pub fn off() -> Self {
        RepairConfig {
            policy: RepairPolicy::Off,
            ..Self::hybrid()
        }
    }

    /// Reactive spot rebids only, default knobs.
    pub fn reactive() -> Self {
        RepairConfig {
            policy: RepairPolicy::Reactive,
            ..Self::hybrid()
        }
    }

    /// Proactive notice-driven migration with the reactive rebid walk as
    /// fallback, default knobs (the knobs govern the fallback only — the
    /// notice path has no backoff or budget, it fires once per notice).
    pub fn migrate() -> Self {
        RepairConfig {
            policy: RepairPolicy::Migrate,
            ..Self::hybrid()
        }
    }

    /// Rebids plus the on-demand fallback tier, default knobs.
    pub fn hybrid() -> Self {
        RepairConfig {
            policy: RepairPolicy::Hybrid,
            detection_delay_minutes: 1,
            backoff_base_minutes: 5,
            backoff_cap_minutes: 60,
            max_rebids_per_interval: 4,
        }
    }

    /// Whether the controller is active at all.
    pub fn is_active(&self) -> bool {
        self.policy != RepairPolicy::Off
    }
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_activity() {
        assert_eq!(RepairPolicy::Off.label(), "off");
        assert_eq!(RepairPolicy::Reactive.label(), "reactive");
        assert_eq!(format!("{}", RepairPolicy::Hybrid), "hybrid");
        assert_eq!(RepairPolicy::Migrate.label(), "migrate");
        assert!(!RepairConfig::off().is_active());
        assert!(RepairConfig::reactive().is_active());
        assert!(RepairConfig::hybrid().is_active());
        assert!(RepairConfig::migrate().is_active());
        assert_eq!(RepairConfig::default(), RepairConfig::off());
    }

    #[test]
    fn variants_share_knobs() {
        let h = RepairConfig::hybrid();
        let r = RepairConfig::reactive();
        assert_eq!(h.backoff_base_minutes, r.backoff_base_minutes);
        assert_eq!(h.max_rebids_per_interval, r.max_rebids_per_interval);
        assert!(h.backoff_cap_minutes >= h.backoff_base_minutes);
    }
}
