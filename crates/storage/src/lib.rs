//! # storage — an RS-Paxos erasure-coded distributed storage service
//!
//! The paper's second evaluation system (§5.1.2): a replicated object
//! store that, following RS-Paxos (Mu et al., HPDC'14), sends **coded
//! shards instead of full copies** through consensus. With a θ(m, n) code
//! the accept/prepare quorums grow to `q = ⌈(n+m)/2⌉` so that any two
//! quorums intersect in at least `m` replicas and a chosen value is always
//! reconstructible; the price is reduced fault tolerance (θ(3,5) tolerates
//! one failure, not two) — exactly the trade-off the paper's availability
//! analysis must capture.
//!
//! Protocol sketch (a single-leader Multi-Paxos variant):
//!
//! * The leader encodes each `Put` into `n` shards and sends acceptor `i`
//!   only shard `i`; a slot is chosen once `q` acceptors accept.
//! * `Commit` carries each replica its own shard, so even replicas that
//!   missed the accept round store their shard.
//! * On leader change, promises return the accepted *shards*; a value at
//!   the highest ballot is reconstructed when ≥ m shards are present
//!   (guaranteed for chosen values by quorum intersection) and re-proposed;
//!   otherwise the slot provably never chose and is filled with a no-op.
//! * `Get` is serialized through the log; the leader answers from its
//!   object cache, or gathers `m` shards from peers and reconstructs.
//!
//! Membership is fixed per deployment (shard index = position in the
//! view); replacing an instance is modelled as crash + restart of a slot,
//! which matches the replay harness's accounting. The full add/remove view
//! change lives in the plain Paxos lock service.

pub mod client;
pub mod harness;
pub mod msg;
pub mod open_loop;
pub mod replica;
pub mod store;

pub use client::{RsClientState, RsCompletedOp};
pub use harness::RsCluster;
pub use msg::{RsMsg, StoreCmd, StoreResp};
pub use open_loop::{RsOpenLoopClient, RsOpenOp};
pub use replica::{RsConfig, RsReplica};
pub use store::ShardStore;

use simnet::Actor;

/// A node in an RS-Paxos simulation: server replica or client.
// Replica state dwarfs client state by design; nodes are few.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum RsNode {
    /// A storage replica.
    Server(RsReplica),
    /// A closed-loop client.
    Client(RsClientState),
    /// An open-loop workload session.
    OpenLoop(RsOpenLoopClient),
}

impl RsNode {
    /// The replica, if a server.
    pub fn as_server(&self) -> Option<&RsReplica> {
        match self {
            RsNode::Server(r) => Some(r),
            _ => None,
        }
    }

    /// The client state, if a client.
    pub fn as_client(&self) -> Option<&RsClientState> {
        match self {
            RsNode::Client(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable client state, if a client.
    pub fn as_client_mut(&mut self) -> Option<&mut RsClientState> {
        match self {
            RsNode::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The open-loop session state, if this is one.
    pub fn as_open_loop(&self) -> Option<&RsOpenLoopClient> {
        match self {
            RsNode::OpenLoop(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable open-loop session state, if this is one.
    pub fn as_open_loop_mut(&mut self) -> Option<&mut RsOpenLoopClient> {
        match self {
            RsNode::OpenLoop(c) => Some(c),
            _ => None,
        }
    }
}

impl Actor for RsNode {
    type Msg = RsMsg;

    fn on_start(&mut self, ctx: &mut simnet::Context<RsMsg>) {
        match self {
            RsNode::Server(r) => r.on_start(ctx),
            RsNode::Client(c) => c.on_start(ctx),
            RsNode::OpenLoop(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: simnet::NodeId, msg: RsMsg, ctx: &mut simnet::Context<RsMsg>) {
        match self {
            RsNode::Server(r) => r.on_message(from, msg, ctx),
            RsNode::Client(c) => c.on_message(from, msg, ctx),
            RsNode::OpenLoop(c) => c.on_message(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, token: simnet::TimerToken, ctx: &mut simnet::Context<RsMsg>) {
        match self {
            RsNode::Server(r) => r.on_timer(token, ctx),
            RsNode::Client(c) => c.on_timer(token, ctx),
            RsNode::OpenLoop(c) => c.on_timer(token, ctx),
        }
    }
}
