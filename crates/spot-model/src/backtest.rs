//! Backtesting: walk a failure model forward over held-out price history
//! and score its predictions against what the market actually did.
//!
//! This is the quantitative backbone of the Fig. 4 micro-benchmark and of
//! the model-mismatch ablation: at every decision point the model is
//! trained only on the past, asked for its interval forecast at a bid,
//! and the prediction is compared with the realized out-of-bid fraction
//! and the realized kill indicator.

use spot_market::{Price, PriceTrace};

use crate::failure::{FailureModel, FailureModelConfig};

/// How the backtest chooses the bid at each decision point.
#[derive(Clone, Copy, Debug)]
pub enum BidRule {
    /// Bid a fixed multiple of the current spot price (how naive users
    /// and the Extra heuristics behave).
    SpotMultiple(f64),
    /// The model's minimal bid with estimated interval FP ≤ target (how
    /// Jupiter behaves), capped at `cap`.
    TargetFp {
        /// Interval failure-probability target.
        target: f64,
        /// Bid cap (the on-demand price in the framework).
        cap: Price,
    },
}

/// One backtest observation.
#[derive(Clone, Debug)]
pub struct BacktestSample {
    /// Decision minute.
    pub minute: u64,
    /// The bid examined.
    pub bid: Price,
    /// Predicted out-of-bid fraction over the horizon (Eq. 5).
    pub predicted_fraction: f64,
    /// Predicted kill probability (absorbing variant), if computed.
    pub predicted_kill: Option<f64>,
    /// Realized out-of-bid time fraction.
    pub realized_fraction: f64,
    /// Whether the instance would have been killed during the horizon.
    pub killed: bool,
}

/// Aggregate calibration report.
#[derive(Clone, Debug)]
pub struct CalibrationReport {
    /// Number of decision points scored.
    pub samples: usize,
    /// Mean predicted out-of-bid fraction.
    pub mean_predicted: f64,
    /// Mean realized out-of-bid fraction.
    pub mean_realized: f64,
    /// Mean absolute prediction error on fractions.
    pub mean_abs_error: f64,
    /// Fraction of decision points where the instance got killed.
    pub kill_rate: f64,
    /// Mean predicted kill probability (absorbing), if computed.
    pub mean_predicted_kill: Option<f64>,
    /// Brier score of the absorbing kill prediction, if computed.
    pub brier_kill: Option<f64>,
    /// The raw samples.
    pub samples_raw: Vec<BacktestSample>,
}

/// Run a walk-forward backtest on `trace`.
///
/// The model trains on `[0, train_minutes)` and then walks the remainder
/// in `step_minutes` strides: at each point it re-observes everything
/// newly revealed, picks a bid per `rule`, predicts over
/// `horizon_minutes`, and is scored against the realized future. Set
/// `score_absorbing` to also score the kill-probability estimator (one
/// extra forward evolution per decision point).
pub fn backtest(
    trace: &PriceTrace,
    train_minutes: u64,
    horizon_minutes: u32,
    step_minutes: u64,
    rule: BidRule,
    score_absorbing: bool,
    config: FailureModelConfig,
) -> CalibrationReport {
    assert!(train_minutes > 0 && train_minutes < trace.horizon());
    assert!(step_minutes > 0);
    let mut model = FailureModel::new(config);
    model.observe(&trace.window(0, train_minutes));
    let mut observed = train_minutes;

    let mut samples = Vec::new();
    let mut t = train_minutes;
    while t + horizon_minutes as u64 <= trace.horizon() {
        if t > observed {
            model.observe(&trace.window(observed, t));
            observed = t;
        }
        let spot = trace.price_at(t);
        let age = trace.sojourn_age_at(t) as u32;
        let Some(forecast) = model.forecast(spot, age, horizon_minutes) else {
            t += step_minutes;
            continue;
        };
        let bid = match rule {
            BidRule::SpotMultiple(m) => Some(spot.scale(m)),
            BidRule::TargetFp { target, cap } => std::iter::once(spot)
                .chain(forecast.levels().iter().copied())
                .filter(|&b| b >= spot && b < cap)
                .find(|&b| model.fp_from_forecast(&forecast, b, spot) <= target),
        };
        let Some(bid) = bid else {
            t += step_minutes;
            continue;
        };
        let predicted_fraction = forecast.out_of_bid_fraction(bid);
        let predicted_kill = score_absorbing.then(|| {
            // Out-of-bid only: strip the FP⁰ floor for a like-for-like
            // comparison with the realized kill indicator.
            let composed = model.estimate_fp_absorbing(bid, spot, age, horizon_minutes);
            let fp0 = model.config().fp0;
            ((composed - fp0) / (1.0 - fp0)).clamp(0.0, 1.0)
        });
        let end = t + horizon_minutes as u64;
        let realized_fraction = trace.fraction_above(bid, t, end);
        let killed = trace
            .first_minute_above(bid, t)
            .map(|k| k < end)
            .unwrap_or(false);
        samples.push(BacktestSample {
            minute: t,
            bid,
            predicted_fraction,
            predicted_kill,
            realized_fraction,
            killed,
        });
        t += step_minutes;
    }

    let n = samples.len().max(1) as f64;
    let mean_predicted = samples.iter().map(|s| s.predicted_fraction).sum::<f64>() / n;
    let mean_realized = samples.iter().map(|s| s.realized_fraction).sum::<f64>() / n;
    let mean_abs_error = samples
        .iter()
        .map(|s| (s.predicted_fraction - s.realized_fraction).abs())
        .sum::<f64>()
        / n;
    let kill_rate = samples.iter().filter(|s| s.killed).count() as f64 / n;
    let (mean_predicted_kill, brier_kill) = if score_absorbing && !samples.is_empty() {
        let mp = samples.iter().filter_map(|s| s.predicted_kill).sum::<f64>() / n;
        let brier = samples
            .iter()
            .map(|s| {
                let p = s.predicted_kill.unwrap_or(0.0);
                let y = if s.killed { 1.0 } else { 0.0 };
                (p - y).powi(2)
            })
            .sum::<f64>()
            / n;
        (Some(mp), Some(brier))
    } else {
        (None, None)
    };

    CalibrationReport {
        samples: samples.len(),
        mean_predicted,
        mean_realized,
        mean_abs_error,
        kill_rate,
        mean_predicted_kill,
        brier_kill,
        samples_raw: samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::{InstanceType, PricePoint, TraceGenerator};

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    /// Periodic A(12) → B(6) pattern: fully learnable.
    fn periodic(cycles: usize) -> PriceTrace {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..cycles {
            points.push(PricePoint {
                minute: t,
                price: p(0.01),
            });
            t += 12;
            points.push(PricePoint {
                minute: t,
                price: p(0.02),
            });
            t += 6;
        }
        PriceTrace::new(points, t)
    }

    #[test]
    fn perfectly_learnable_process_calibrates() {
        let trace = periodic(400);
        let report = backtest(
            &trace,
            200 * 18,
            60,
            120,
            BidRule::SpotMultiple(1.3),
            true,
            FailureModelConfig::default(),
        );
        assert!(report.samples > 10);
        // Bid = 1.3× spot: from A (0.01) bids 0.013 < 0.02 ⇒ spends the B
        // thirds out of bid; from B bids 0.026 ⇒ safe. Predictions should
        // track the realized fractions closely on this periodic process.
        assert!(
            report.mean_abs_error < 0.15,
            "mean abs error {}",
            report.mean_abs_error
        );
        assert!(
            (report.mean_predicted - report.mean_realized).abs() < 0.1,
            "bias: predicted {} vs realized {}",
            report.mean_predicted,
            report.mean_realized
        );
        let brier = report.brier_kill.expect("scored");
        assert!(brier < 0.25, "brier {brier} no better than coin flips");
    }

    #[test]
    fn target_rule_controls_realized_risk() {
        let gen = TraceGenerator::new(31);
        let zone = spot_market::topology::all_zones()[0];
        let trace = gen.generate(zone, InstanceType::M1Small, 6 * 7 * 24 * 60);
        let cap = InstanceType::M1Small.on_demand_price(zone.region);
        let report = backtest(
            &trace,
            4 * 7 * 24 * 60,
            360,
            24 * 60,
            BidRule::TargetFp {
                target: 0.0103,
                cap,
            },
            false,
            FailureModelConfig::default(),
        );
        assert!(report.samples >= 10);
        // The realized mean OOB fraction stays within an order of
        // magnitude of the target (the paper's Fig. 4 claim).
        assert!(
            report.mean_realized < 0.1,
            "realized {} far above target",
            report.mean_realized
        );
    }

    #[test]
    fn absorbing_prediction_no_worse_than_expectation_for_kills() {
        let gen = TraceGenerator::new(77);
        let zone = spot_market::topology::all_zones()[1];
        let trace = gen.generate(zone, InstanceType::M1Small, 5 * 7 * 24 * 60);
        let report = backtest(
            &trace,
            3 * 7 * 24 * 60,
            360,
            12 * 60,
            BidRule::SpotMultiple(1.2),
            true,
            FailureModelConfig::default(),
        );
        // As a kill predictor, the absorbing estimate must beat the
        // expectation estimate (which systematically underestimates kill
        // probability).
        let brier_absorbing = report.brier_kill.expect("scored");
        let n = report.samples.max(1) as f64;
        let brier_expectation = report
            .samples_raw
            .iter()
            .map(|s| {
                let y = if s.killed { 1.0 } else { 0.0 };
                (s.predicted_fraction - y).powi(2)
            })
            .sum::<f64>()
            / n;
        assert!(
            brier_absorbing <= brier_expectation + 1e-9,
            "absorbing {brier_absorbing} vs expectation {brier_expectation}"
        );
    }
}
