//! Dense matrices over GF(2⁸): just enough linear algebra for systematic
//! Reed–Solomon code construction and decoding.

use crate::gf256::Gf;

/// A row-major dense matrix over GF(2⁸).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "degenerate matrix shape");
        Matrix {
            rows,
            cols,
            data: vec![Gf::ZERO; rows * cols],
        }
    }

    /// The n×n identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf::ONE;
        }
        m
    }

    /// The rows×cols Vandermonde matrix `V[r][c] = r^c` over GF(2⁸), whose
    /// every square submatrix built from distinct evaluation points is
    /// invertible — the property Reed–Solomon relies on. Requires
    /// `rows ≤ 256` so evaluation points stay distinct.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 256, "at most 256 distinct points in GF(256)");
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = Gf(r as u8).pow(c as u32);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[Gf] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Gf::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    let prod = a.mul(rhs[(k, j)]);
                    out[(i, j)] = out[(i, j)].add(prod);
                }
            }
        }
        out
    }

    /// A new matrix made of the given rows of `self`, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "row {r} out of range");
            for c in 0..self.cols {
                out[(i, c)] = self[(r, c)];
            }
        }
        out
    }

    /// The inverse via Gauss–Jordan elimination, or `None` if singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| a[(r, col)] != Gf::ZERO)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a[(col, col)].inv();
            for c in 0..n {
                a[(col, c)] = a[(col, c)].mul(p);
                inv[(col, c)] = inv[(col, c)].mul(p);
            }
            // Eliminate the column elsewhere.
            for r in 0..n {
                if r == col || a[(r, col)] == Gf::ZERO {
                    continue;
                }
                let f = a[(r, col)];
                for c in 0..n {
                    let ac = a[(col, c)].mul(f);
                    a[(r, c)] = a[(r, c)].add(ac);
                    let ic = inv[(col, c)].mul(f);
                    inv[(r, c)] = inv[(r, c)].add(ic);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let v = Matrix::vandermonde(4, 3);
        let i3 = Matrix::identity(3);
        assert_eq!(v.mul(&i3), v);
        let i4 = Matrix::identity(4);
        assert_eq!(i4.mul(&v), v);
    }

    #[test]
    fn inverse_round_trip() {
        // Any square Vandermonde with distinct points is invertible.
        let m = Matrix::vandermonde(5, 5);
        let inv = m.inverse().expect("vandermonde invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(5));
        assert_eq!(inv.mul(&m), Matrix::identity(5));
    }

    #[test]
    fn singular_matrix_detected() {
        let mut m = Matrix::zero(3, 3);
        // Two equal rows.
        for c in 0..3 {
            m[(0, c)] = Gf(c as u8 + 1);
            m[(1, c)] = Gf(c as u8 + 1);
            m[(2, c)] = Gf(c as u8 + 5);
        }
        assert!(m.inverse().is_none());
    }

    #[test]
    fn vandermonde_square_submatrices_invertible() {
        // The defining property used by Reed–Solomon: pick any `cols` rows
        // and the square submatrix is invertible.
        let v = Matrix::vandermonde(8, 4);
        let row_sets: [[usize; 4]; 5] = [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [0, 2, 4, 6],
            [1, 3, 5, 7],
            [0, 3, 5, 6],
        ];
        for rows in row_sets {
            assert!(
                v.select_rows(&rows).inverse().is_some(),
                "rows {rows:?} singular"
            );
        }
    }

    #[test]
    fn select_rows_orders_as_requested() {
        let v = Matrix::vandermonde(4, 2);
        let s = v.select_rows(&[3, 1]);
        assert_eq!(s.row(0), v.row(3));
        assert_eq!(s.row(1), v.row(1));
    }

    #[test]
    fn multiplication_associates() {
        let a = Matrix::vandermonde(3, 3);
        let b = Matrix::vandermonde(3, 4);
        let c = Matrix::vandermonde(4, 2);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}
