//! Offline shim for the subset of `criterion` this workspace uses:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — one warm-up call, then a timed
//! loop bounded by the group's `sample_size` and a per-benchmark time
//! budget — reporting mean wall-clock time per iteration (and derived
//! throughput when configured). Good enough to compare configurations
//! and catch regressions; it makes no statistical claims.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark point; keeps full `cargo bench` runs
/// fast even for expensive bodies.
const TIME_BUDGET: Duration = Duration::from_millis(250);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.default_sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Report throughput alongside time for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting happens as benchmarks run).
    pub fn finish(self) {}
}

/// Identifier of one benchmark point, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter (for groups benchmarking one function).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// Times the benchmark body; handed to the `|b| ...` closure.
pub struct Bencher {
    max_iters: u64,
    mean_ns: f64,
    iters_done: u64,
}

impl Bencher {
    /// Time `f`, called repeatedly; the mean per-call time is recorded.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed region.
        std::hint::black_box(f());
        let start = Instant::now();
        let mut done = 0u64;
        loop {
            std::hint::black_box(f());
            done += 1;
            if done >= self.max_iters || start.elapsed() >= TIME_BUDGET {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / done as f64;
        self.iters_done = done;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        max_iters: sample_size,
        mean_ns: 0.0,
        iters_done: 0,
    };
    f(&mut b);
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (1024.0 * 1024.0) / (b.mean_ns * 1e-9)
            )
        }
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / (b.mean_ns * 1e-9))
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<48} {:>14}/iter  (n={}){rate}",
        format_ns(b.mean_ns),
        b.iters_done
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_configuration_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_group");
        g.sample_size(5).throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(3), |b| b.iter(|| 3 * 3));
        g.finish();
    }
}
