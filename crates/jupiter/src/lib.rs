//! # jupiter — the availability- and cost-aware bidding framework
//!
//! The paper's primary contribution (§3.2, §4): decide, at each bidding
//! interval, **how many** spot instances to run, **in which availability
//! zones**, and **at what bids**, so that
//!
//! * the service's expected availability matches an on-demand deployment
//!   (constraint 10), and
//! * the cost upper bound Σ bids is minimized (objective 8),
//!
//! using the semi-Markov failure model of [`spot_model`] for the
//! per-instance failure probabilities.
//!
//! * [`service`] — [`ServiceSpec`]: what is being deployed (instance type,
//!   baseline node count, quorum rule, availability target ε).
//! * [`strategy`] — the [`BiddingStrategy`] trait and the market snapshot
//!   ([`ZoneState`]) strategies consume.
//! * [`algorithm`] — [`JupiterStrategy`], the enumeration + greedy
//!   algorithm of Fig. 3.
//! * [`heuristic`] — the `Extra(m, p)` comparison strategies of §5.2
//!   (lowest `n + m` spot prices, bid = spot price × (1 + p)).
//! * [`feedback`] — [`FeedbackStrategy`], a model-free PID bidder (Li et
//!   al.) that closes a control loop on the observed survival of its own
//!   standing bids, raced against Jupiter by the scenario engine.
//! * [`exhaustive`] — an exact branch-and-bound solver of the NLP for
//!   small instances, used to validate Jupiter's near-optimality (the NLP
//!   is NP-hard; exhaustive search is only feasible at toy scale, which is
//!   the paper's argument for the greedy algorithm).
//! * [`framework`] — [`BiddingFramework`] (Fig. 2): owns one failure model
//!   per availability zone, keeps them trained online, and turns market
//!   snapshots into bid decisions.

//! * [`store`] — [`ModelStore`]: a shared memo table of frozen kernels
//!   keyed by (zone, instance type, trained-until minute), so many
//!   concurrent policy evaluations over the same market train each model
//!   exactly once.

pub mod algorithm;
pub mod exhaustive;
pub mod feedback;
pub mod framework;
pub mod heuristic;
pub mod service;
pub mod store;
pub mod strategy;

pub use algorithm::JupiterStrategy;
pub use exhaustive::ExhaustiveSolver;
pub use feedback::{FeedbackConfig, FeedbackStrategy};
pub use framework::BiddingFramework;
pub use heuristic::{ExtraStrategy, FixedOnce};
pub use service::ServiceSpec;
pub use store::{ModelKey, ModelStore};
pub use strategy::{BidDecision, BiddingStrategy, PoolBid, ZoneState};
