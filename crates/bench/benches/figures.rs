//! One bench per evaluation artifact: the drivers behind Figs. 4–9 at
//! smoke scale. These measure the *cost of regenerating the paper's
//! figures*; the actual numbers are produced by the `repro` binary.

use criterion::{criterion_group, criterion_main, Criterion};
use replay::experiments::{self, Scale};
use std::hint::black_box;

fn scale() -> Scale {
    Scale::quick(4242)
}

fn fig1(c: &mut Criterion) {
    c.bench_function("fig1_price_history", |b| {
        b.iter(|| experiments::fig1_series(black_box(4242)))
    });
}

fn fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let s = scale();
    g.bench_function("fig4_microbenchmark", |b| {
        b.iter(|| experiments::fig4(black_box(&s)))
    });
    g.finish();
}

fn fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let s = scale();
    g.bench_function("fig5_one_week_feasibility", |b| {
        b.iter(|| experiments::fig5(black_box(&s)))
    });
    g.finish();
}

fn fig6_7(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let s = scale();
    g.bench_function("fig6_7_lock_sweep", |b| {
        b.iter(|| experiments::lock_sweep(black_box(&s)))
    });
    g.finish();
}

fn fig8_9(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let s = scale();
    g.bench_function("fig8_9_storage_sweep", |b| {
        b.iter(|| experiments::storage_sweep(black_box(&s)))
    });
    g.finish();
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let s = scale();
    g.bench_function("ablation_estimator", |b| {
        b.iter(|| experiments::ablation_estimator(black_box(&s)))
    });
    g.bench_function("ablation_greedy_vs_exact", |b| {
        b.iter(|| experiments::ablation_greedy_vs_exact(black_box(&s)))
    });
    g.finish();
}

criterion_group!(benches, fig1, fig4, fig5, fig6_7, fig8_9, ablations);
criterion_main!(benches);
