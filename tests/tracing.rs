//! End-to-end causal tracing: a committed Paxos operation yields a
//! complete causal trace (submit → propose → quorum → commit → apply)
//! whose critical path tiles the observed commit latency exactly; chaos
//! faults leave attributable marks inside the affected traces; and
//! trace-id allocation is a pure function of the simulation seed,
//! independent of how many host threads run simulations concurrently.
//!
//! (The vendored `rayon` shim executes parallel iterators sequentially,
//! so the thread-count test drives real `std::thread` concurrency
//! instead — the stronger property: even simulations racing on separate
//! OS threads allocate identical trace ids.)

use spot_jupiter::obs::{assemble_traces, chrome_trace_json, critical_path, CausalTrace, Obs};
use spot_jupiter::paxos::{ClientOp, Cluster, LockCmd, LockService, ReplicaConfig};
use spot_jupiter::simnet::{LinkChaos, NetworkConfig, NodeId, SimTime};

fn traced_cluster(seed: u64) -> (Obs, Cluster<LockService>, NodeId) {
    let (obs, _clock) = Obs::simulated();
    let mut cluster = Cluster::new(
        3,
        LockService::new(),
        ReplicaConfig {
            obs: obs.clone(),
            ..ReplicaConfig::default()
        },
        NetworkConfig::default(),
        seed,
    );
    let client = cluster.add_client();
    (obs, cluster, client)
}

fn submit_lock_ops(cluster: &mut Cluster<LockService>, client: NodeId, n: usize) {
    for i in 0..n {
        let name = format!("lock-{}", i / 2);
        let cmd = if i % 2 == 0 {
            LockCmd::Acquire {
                name,
                owner: client,
            }
        } else {
            LockCmd::Release {
                name,
                owner: client,
            }
        };
        cluster.submit(client, ClientOp::App(cmd));
    }
}

/// Complete request traces (root `client.request`, every span closed, no
/// orphans) in assembly order.
fn complete_requests(traces: &[CausalTrace]) -> Vec<&CausalTrace> {
    traces
        .iter()
        .filter(|t| t.root().is_some_and(|r| r.name == "client.request") && t.is_complete())
        .collect()
}

#[test]
fn committed_ops_yield_complete_traces_whose_critical_path_tiles_latency() {
    let (obs, mut cluster, client) = traced_cluster(7);
    submit_lock_ops(&mut cluster, client, 4);
    assert!(cluster.run_until_drained(client, SimTime::from_secs(60)));

    let events = obs.trace.events();
    let traces = assemble_traces(&events);
    let complete = complete_requests(&traces);
    assert!(
        complete.len() >= 4,
        "expected ≥4 complete request traces, got {}",
        complete.len()
    );
    for t in &complete {
        // The critical path partitions the root interval: its segment
        // durations must sum to the observed commit latency exactly.
        let path = critical_path(t);
        let total: u64 = path.iter().map(|s| s.micros()).sum();
        assert_eq!(
            total,
            t.latency_micros().expect("complete root"),
            "critical path must tile the root interval (trace {})",
            t.trace_id
        );
        assert!(
            path.iter().any(|s| s.name != "client.request"),
            "critical path should descend into replica spans"
        );
        // The full cross-node chain is present under one trace id.
        assert!(t.spans.iter().any(|s| s.name == "paxos.propose"));
        assert!(t.spans.iter().any(|s| s.name == "paxos.quorum_wait"));
        assert!(t.instants.iter().any(|i| i.name == "paxos.commit"));
        assert!(t.instants.iter().any(|i| i.name == "paxos.apply"));
    }

    // The same events export cleanly to Chrome-trace JSON.
    let chrome = chrome_trace_json(&events);
    assert!(chrome.contains("\"client.request\""));
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"ph\":\"i\""));
}

#[test]
fn dropped_phase2_messages_leave_attributable_marks_in_the_trace() {
    // Link chaos drops messages by probability, not by kind, so scan a
    // few seeds for a run where traced protocol traffic (Requests,
    // phase-2 Accepts/Accepteds, Commits) was actually dropped AND a
    // request trace shows the disturbance. Each run is deterministic per
    // seed, so the scan is stable.
    let mut found = false;
    for seed in 0..32u64 {
        let (obs, mut cluster, client) = traced_cluster(seed);
        // Reach steady state (leader elected) before enabling chaos.
        submit_lock_ops(&mut cluster, client, 2);
        assert!(cluster.run_until_drained(client, SimTime::from_secs(60)));
        cluster.sim.set_link_chaos(LinkChaos {
            drop_pr: 0.3,
            ..LinkChaos::default()
        });
        submit_lock_ops(&mut cluster, client, 6);
        let deadline = cluster.sim.now() + SimTime::from_secs(120);
        let _ = cluster.run_until_drained(client, deadline);

        let events = obs.trace.events();
        let traced_drops = events
            .iter()
            .filter(|e| e.name == "simnet.drop" && e.trace_id != 0)
            .count();
        let traces = assemble_traces(&events);
        // A disturbed trace: unfinished span sub-tree (orphaned by the
        // drop) or a client retransmit marking the lost attempt.
        let disturbed = traces
            .iter()
            .filter(|t| {
                !t.is_complete() || t.instants.iter().any(|i| i.name == "client.retransmit")
            })
            .count();
        if traced_drops == 0 || disturbed == 0 {
            continue;
        }
        // Attribution: some drop instant landed *inside* a request
        // trace, pointing the orphaned spans at their cause.
        assert!(
            traces
                .iter()
                .any(|t| t.instants.iter().any(|i| i.name == "simnet.drop")),
            "traced drops must appear as instants in their traces"
        );
        // Ops that did commit under chaos still carry exact traces.
        for t in complete_requests(&traces) {
            let total: u64 = critical_path(t).iter().map(|s| s.micros()).sum();
            assert_eq!(total, t.latency_micros().expect("complete root"));
        }
        found = true;
        break;
    }
    assert!(
        found,
        "no seed in 0..32 produced a traced drop plus a disturbed request trace"
    );
}

#[test]
fn trace_ids_are_identical_across_host_thread_counts() {
    fn run(seed: u64) -> (Vec<u64>, usize) {
        let (obs, mut cluster, client) = traced_cluster(seed);
        submit_lock_ops(&mut cluster, client, 4);
        assert!(cluster.run_until_drained(client, SimTime::from_secs(60)));
        let events = obs.trace.events();
        let mut ids: Vec<u64> = events
            .iter()
            .map(|e| e.trace_id)
            .filter(|&t| t != 0)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        (ids, events.len())
    }

    let baseline = run(11);
    assert!(!baseline.0.is_empty(), "traced run recorded no trace ids");
    // The same simulation run on 1 and then 4 concurrent OS threads must
    // allocate byte-identical trace ids and record the same event count:
    // allocation state lives in the simulation, not in process globals.
    for threads in [1usize, 4] {
        let handles: Vec<_> = (0..threads)
            .map(|_| std::thread::spawn(move || run(11)))
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("thread panicked"), baseline);
        }
    }
}
