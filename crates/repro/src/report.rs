//! Self-contained HTML reports: the recorded replay time series rendered
//! as inline SVG line charts (the Fig. 4/7 shapes — price vs. bid over
//! time, cost and availability per bidding interval), with a metrics
//! table appended. No external assets, scripts, or crates: one file,
//! openable anywhere.
//!
//! Chart conventions follow the workspace's dataviz ground rules: one
//! y-axis per chart, at most a few series, a fixed categorical color
//! order (CSS custom properties, stepped separately for dark mode),
//! recessive grid, direct labels via a legend row, and the full
//! per-interval table below the charts as the accessible fallback.

use obs::{
    assemble_traces, critical_path, hop_self_times, AlertEvent, AuditKind, AuditRecord,
    CausalTrace, Event, MetricsSnapshot, SeriesSnapshot, Severity,
};
use replay::ReplayResult;

/// One polyline in a chart. `slot` picks the categorical color
/// (1-based, fixed order across the report).
pub struct Line {
    /// Legend label.
    pub label: String,
    /// Categorical palette slot (1..=8).
    pub slot: u8,
    /// Dashed stroke (used to separate bid from price).
    pub dashed: bool,
    /// `(x, y)` in data coordinates.
    pub points: Vec<(f64, f64)>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 300.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 14.0;
const MARGIN_T: f64 = 14.0;
const MARGIN_B: f64 = 40.0;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Compact tick/value formatting: enough digits to tell ticks apart,
/// no scientific noise for the usual dollar/availability ranges.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    let a = v.abs();
    let s = if a == 0.0 {
        "0".to_string()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.1 {
        format!("{v:.2}")
    } else if a >= 0.001 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    };
    // Trim a trailing ".0"-style fraction.
    if s.contains('.') && !s.contains('e') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

/// A vertical annotation on a chart: a fired alert at `x` (same x units
/// as the chart's lines).
pub struct Mark {
    /// X coordinate in data units.
    pub x: f64,
    /// Tooltip label.
    pub label: String,
    /// Alert severity — picks the marker color class.
    pub severity: Severity,
}

/// Alerts as chart marks on the market-hours axis (alert timestamps are
/// replay-minute micros).
fn alert_marks(alerts: &[AlertEvent]) -> Vec<Mark> {
    alerts
        .iter()
        .map(|a| Mark {
            x: a.at_micros as f64 / 60e6 / 60.0,
            label: format!("{} — {}", a.monitor, a.message),
            severity: a.severity,
        })
        .collect()
}

/// Render one line chart as an SVG element, with vertical alert markers
/// overlaid (marks outside the data's x range are dropped). Returns an
/// empty-data note instead of axes when no line has points.
pub fn svg_chart_marked(x_label: &str, y_label: &str, lines: &[Line], marks: &[Mark]) -> String {
    let all: Vec<(f64, f64)> = lines.iter().flat_map(|l| l.points.iter().copied()).collect();
    if all.is_empty() {
        return "<p class=\"empty\">no recorded samples</p>".into();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 - x0 < 1e-9 {
        x0 -= 0.5;
        x1 += 0.5;
    }
    if y1 - y0 < 1e-9 {
        let pad = (y0.abs() * 0.1).max(0.5);
        y0 -= pad;
        y1 += pad;
    } else {
        let pad = (y1 - y0) * 0.06;
        y0 -= pad;
        y1 += pad;
    }
    let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * (WIDTH - MARGIN_L - MARGIN_R);
    let py = |y: f64| HEIGHT - MARGIN_B - (y - y0) / (y1 - y0) * (HEIGHT - MARGIN_T - MARGIN_B);

    let mut out = format!(
        "<svg viewBox=\"0 0 {WIDTH} {HEIGHT}\" role=\"img\" \
         preserveAspectRatio=\"xMidYMid meet\">\n"
    );
    // Recessive grid + y ticks.
    for i in 0..=4 {
        let y = y0 + (y1 - y0) * i as f64 / 4.0;
        let yy = py(y);
        out.push_str(&format!(
            "<line class=\"grid\" x1=\"{MARGIN_L}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\"/>\n",
            WIDTH - MARGIN_R
        ));
        out.push_str(&format!(
            "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_L - 6.0,
            yy + 3.5,
            fmt_num(y)
        ));
    }
    // X ticks.
    for i in 0..=5 {
        let x = x0 + (x1 - x0) * i as f64 / 5.0;
        let xx = px(x);
        out.push_str(&format!(
            "<line class=\"grid\" x1=\"{xx:.1}\" y1=\"{:.1}\" x2=\"{xx:.1}\" y2=\"{:.1}\"/>\n",
            HEIGHT - MARGIN_B,
            HEIGHT - MARGIN_B + 4.0
        ));
        out.push_str(&format!(
            "<text class=\"tick\" x=\"{xx:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            HEIGHT - MARGIN_B + 16.0,
            fmt_num(x)
        ));
    }
    // Axis labels.
    out.push_str(&format!(
        "<text class=\"axis\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
        MARGIN_L + (WIDTH - MARGIN_L - MARGIN_R) / 2.0,
        HEIGHT - 6.0,
        esc(x_label)
    ));
    out.push_str(&format!(
        "<text class=\"axis\" x=\"14\" y=\"{:.1}\" text-anchor=\"middle\" \
         transform=\"rotate(-90 14 {:.1})\">{}</text>\n",
        MARGIN_T + (HEIGHT - MARGIN_T - MARGIN_B) / 2.0,
        MARGIN_T + (HEIGHT - MARGIN_T - MARGIN_B) / 2.0,
        esc(y_label)
    ));
    // Series.
    for line in lines {
        if line.points.is_empty() {
            continue;
        }
        let dash = if line.dashed { " stroke-dasharray=\"6 4\"" } else { "" };
        let mut d = String::new();
        for (i, &(x, y)) in line.points.iter().enumerate() {
            d.push_str(if i == 0 { "M" } else { "L" });
            d.push_str(&format!("{:.1} {:.1} ", px(x), py(y)));
        }
        out.push_str(&format!(
            "<path class=\"s{}\" fill=\"none\" stroke-width=\"2\" \
             stroke-linejoin=\"round\" d=\"{}\"{}/>\n",
            line.slot,
            d.trim_end(),
            dash
        ));
        // Native hover tooltips on sparse series; skip on dense ones to
        // keep the file small and the marks thin.
        if line.points.len() <= 120 {
            for &(x, y) in &line.points {
                out.push_str(&format!(
                    "<circle class=\"hover s{}\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"7\">\
                     <title>{}: ({}, {})</title></circle>\n",
                    line.slot,
                    px(x),
                    py(y),
                    esc(&line.label),
                    fmt_num(x),
                    fmt_num(y)
                ));
            }
        }
    }
    // Alert annotations: a vertical rule at each fired alert, colored by
    // severity, tooltip carrying the monitor + message.
    for mark in marks {
        if mark.x < x0 || mark.x > x1 {
            continue;
        }
        let xx = px(mark.x);
        out.push_str(&format!(
            "<line class=\"alert alert-{}\" x1=\"{xx:.1}\" y1=\"{MARGIN_T}\" \
             x2=\"{xx:.1}\" y2=\"{:.1}\"><title>{}</title></line>\n",
            mark.severity.label(),
            HEIGHT - MARGIN_B,
            esc(&mark.label)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// A chart block: caption, legend row (for ≥ 2 series), SVG.
pub fn figure(caption: &str, x_label: &str, y_label: &str, lines: &[Line]) -> String {
    figure_marked(caption, x_label, y_label, lines, &[])
}

/// [`figure`] with alert markers passed through to the chart.
pub fn figure_marked(
    caption: &str,
    x_label: &str,
    y_label: &str,
    lines: &[Line],
    marks: &[Mark],
) -> String {
    let mut out = format!("<figure>\n<figcaption>{}</figcaption>\n", esc(caption));
    if lines.len() >= 2 {
        out.push_str("<div class=\"legend\">");
        for line in lines {
            out.push_str(&format!(
                "<span><i class=\"sw s{}{}\"></i>{}</span>",
                line.slot,
                if line.dashed { " dash" } else { "" },
                esc(&line.label)
            ));
        }
        out.push_str("</div>\n");
    }
    out.push_str(&svg_chart_marked(x_label, y_label, lines, marks));
    out.push_str("</figure>\n");
    out
}

/// Series points as `(hours, last-value)` chart coordinates.
fn line_points(s: &SeriesSnapshot) -> Vec<(f64, f64)> {
    s.points
        .iter()
        .map(|p| (p.t_last as f64 / 60.0, p.last))
        .collect()
}

fn find<'a>(series: &'a [SeriesSnapshot], name: &str) -> Option<&'a SeriesSnapshot> {
    series.iter().find(|s| s.name == name)
}

/// Nesting depth of a span inside its trace (root = 0); also the Gantt
/// color slot, so sibling hops at the same depth share a color.
fn span_depth(trace: &CausalTrace, span_id: u64) -> usize {
    let mut depth = 0;
    let mut cur = span_id;
    while let Some(s) = trace.span(cur) {
        if s.parent_span == 0 || depth > 32 {
            break;
        }
        depth += 1;
        cur = s.parent_span;
    }
    depth
}

/// One complete request trace as a Gantt chart: a row per span, bars on
/// a µs-since-submit axis, instants (commits, applies, chaos drops) as
/// tick marks on their parent span's row.
fn gantt_svg(trace: &CausalTrace) -> String {
    let Some(root) = trace.root() else {
        return String::new();
    };
    let t0 = root.start_micros;
    let latency = trace.latency_micros().unwrap_or(0).max(1) as f64;
    const ROW_H: f64 = 22.0;
    const LEFT: f64 = 190.0;
    const TOP: f64 = 8.0;
    const BOTTOM: f64 = 30.0;
    let rows = trace.spans.len();
    let height = TOP + ROW_H * rows as f64 + BOTTOM;
    let px = |micros: u64| {
        LEFT + (micros.saturating_sub(t0) as f64 / latency) * (WIDTH - LEFT - MARGIN_R)
    };
    let mut out = format!(
        "<svg class=\"gantt\" viewBox=\"0 0 {WIDTH} {height}\" role=\"img\" \
         preserveAspectRatio=\"xMidYMid meet\">\n"
    );
    // X axis: µs since the client submitted.
    for i in 0..=4 {
        let v = latency * i as f64 / 4.0;
        let xx = LEFT + (v / latency) * (WIDTH - LEFT - MARGIN_R);
        out.push_str(&format!(
            "<line class=\"grid\" x1=\"{xx:.1}\" y1=\"{TOP}\" x2=\"{xx:.1}\" y2=\"{:.1}\"/>\n",
            height - BOTTOM
        ));
        out.push_str(&format!(
            "<text class=\"tick\" x=\"{xx:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            height - BOTTOM + 14.0,
            fmt_num(v)
        ));
    }
    out.push_str(&format!(
        "<text class=\"axis\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">µs since submit</text>\n",
        LEFT + (WIDTH - LEFT - MARGIN_R) / 2.0,
        height - 4.0
    ));
    for (row, span) in trace.spans.iter().enumerate() {
        let y = TOP + ROW_H * row as f64;
        let slot = span_depth(trace, span.span_id) % 3 + 1;
        let x0 = px(span.start_micros);
        let x1 = px(span.end_micros.unwrap_or(t0 + latency as u64));
        let dur = span
            .end_micros
            .map(|e| e.saturating_sub(span.start_micros))
            .unwrap_or(0);
        out.push_str(&format!(
            "<text class=\"row\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            LEFT - 8.0,
            y + ROW_H * 0.68,
            esc(&span.name)
        ));
        out.push_str(&format!(
            "<rect class=\"s{slot}\" x=\"{x0:.1}\" y=\"{:.1}\" width=\"{:.1}\" \
             height=\"{:.1}\" rx=\"2\"><title>{}: {} µs</title></rect>\n",
            y + 3.0,
            (x1 - x0).max(1.5),
            ROW_H - 7.0,
            esc(&span.name),
            dur
        ));
    }
    // Instants land on their blamed span's row (row 0 when unattributed).
    for inst in &trace.instants {
        let row = trace
            .spans
            .iter()
            .position(|s| s.span_id == inst.parent_span)
            .unwrap_or(0);
        let y = TOP + ROW_H * row as f64;
        let xx = px(inst.at_micros);
        out.push_str(&format!(
            "<line class=\"mark\" x1=\"{xx:.1}\" y1=\"{:.1}\" x2=\"{xx:.1}\" y2=\"{:.1}\">\
             <title>{} @ {} µs</title></line>\n",
            y + 1.0,
            y + ROW_H - 2.0,
            esc(&inst.name),
            inst.at_micros.saturating_sub(t0)
        ));
    }
    out.push_str("</svg>\n");
    out
}

/// The causal-trace section: Gantt charts for the slowest complete
/// `client.request` traces plus a critical-path attribution table
/// aggregated over *all* complete request traces. Empty when the ring
/// holds no complete request trace (tracing disabled, or no service
/// replay ran).
pub fn trace_section(events: &[Event]) -> String {
    let traces = assemble_traces(events);
    let mut complete: Vec<&CausalTrace> = traces
        .iter()
        .filter(|t| t.root().is_some_and(|r| r.name == "client.request") && t.is_complete())
        .collect();
    if complete.is_empty() {
        return String::new();
    }
    // Attribution first, over every complete trace: per-hop self time on
    // the critical path. The segments tile each root interval, so the
    // table is exhaustive — shares sum to 100%.
    let mut hops: Vec<(String, u64, u64)> = Vec::new();
    let mut total: u64 = 0;
    for t in &complete {
        for (hop, micros) in hop_self_times(&critical_path(t)) {
            total += micros;
            match hops.iter_mut().find(|(name, _, _)| *name == hop) {
                Some(row) => {
                    row.1 += micros;
                    row.2 += 1;
                }
                None => hops.push((hop, micros, 1)),
            }
        }
    }
    hops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out = String::from("<h2>Causal traces</h2>\n");
    out.push_str(&format!(
        "<p class=\"sub\">{} complete request traces; critical-path time by hop \
         (segments tile each request's submit→response interval):</p>\n",
        complete.len()
    ));
    out.push_str(
        "<table>\n<thead><tr><th>hop</th><th>self time (µs)</th>\
         <th>share</th><th>segments</th></tr></thead>\n<tbody>\n",
    );
    for (hop, micros, count) in &hops {
        out.push_str(&format!(
            "<tr><td>{}</td><td>{micros}</td><td>{:.1}%</td><td>{count}</td></tr>\n",
            esc(hop),
            100.0 * *micros as f64 / total.max(1) as f64
        ));
    }
    out.push_str("</tbody>\n</table>\n");
    // Gantt charts for the slowest operations — the ones worth reading.
    complete.sort_by_key(|t| std::cmp::Reverse(t.latency_micros().unwrap_or(0)));
    for t in complete.iter().take(6) {
        out.push_str(&format!(
            "<figure>\n<figcaption>Operation trace {:#018x} — {} µs commit latency</figcaption>\n",
            t.trace_id,
            t.latency_micros().unwrap_or(0)
        ));
        out.push_str(&gantt_svg(t));
        out.push_str("</figure>\n");
    }
    out
}

/// Cap on audit-timeline rows rendered into the report; newest records
/// win (the full log ships in the `.audit.jsonl` artifact).
const AUDIT_TIMELINE_ROWS: usize = 80;

/// The online-monitoring section: every fired alert (cross-referenced to
/// the audit records that preceded it) plus the decision audit timeline.
/// Both blocks render unconditionally — the `id="alerts"` anchor and the
/// `audit-timeline` class are stable markers CI greps for — degrading to
/// an empty-state note when monitors were off or nothing fired.
pub fn alert_section(alerts: &[AlertEvent], audit: &[AuditRecord]) -> String {
    let mut out = String::from("<h2 id=\"alerts\">Alerts &amp; SLO burn</h2>\n");
    if alerts.is_empty() {
        out.push_str("<p class=\"empty\">no alerts fired</p>\n");
    } else {
        out.push_str(
            "<table>\n<thead><tr><th>sim time (h)</th><th>monitor</th>\
             <th>severity</th><th>message</th><th>decisions</th></tr></thead>\n<tbody>\n",
        );
        for a in alerts {
            let refs = if a.audit_refs.is_empty() {
                "-".to_string()
            } else {
                a.audit_refs
                    .iter()
                    .map(|seq| format!("<a href=\"#audit-{seq}\">#{seq}</a>"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td>\
                 <td><span class=\"sev sev-{}\">{}</span></td><td>{}</td><td>{refs}</td></tr>\n",
                fmt_num(a.at_micros as f64 / 3.6e9),
                esc(&a.monitor),
                a.severity.label(),
                a.severity.label(),
                esc(&a.message),
            ));
        }
        out.push_str("</tbody>\n</table>\n");
    }

    out.push_str("<h2>Decision audit timeline</h2>\n<div class=\"audit-timeline\">\n");
    if audit.is_empty() {
        out.push_str("<p class=\"empty\">audit log empty (monitors disabled?)</p>\n");
    } else {
        let shown = &audit[audit.len().saturating_sub(AUDIT_TIMELINE_ROWS)..];
        if shown.len() < audit.len() {
            out.push_str(&format!(
                "<p class=\"sub\">last {} of {} audit records (full log in the \
                 JSONL artifact):</p>\n",
                shown.len(),
                audit.len()
            ));
        }
        out.push_str(
            "<table>\n<thead><tr><th>seq</th><th>minute</th><th>kind</th>\
             <th>zone</th><th>bid ($/h)</th><th>detail</th></tr></thead>\n<tbody>\n",
        );
        for r in shown {
            let (zone, bid, detail) = match &r.kind {
                AuditKind::BidSelection {
                    zone,
                    bid_dollars,
                    spot_price_dollars,
                    predicted_availability,
                    kernel_id,
                    fp_cache_hit,
                    granted,
                    ..
                } => (
                    zone.clone(),
                    *bid_dollars,
                    format!(
                        "spot {} · pred avail {} · kernel {kernel_id:#018x}{}{}",
                        fmt_num(*spot_price_dollars),
                        if *predicted_availability < 0.0 {
                            "-".to_string()
                        } else {
                            fmt_num(*predicted_availability)
                        },
                        if *fp_cache_hit { " · cache hit" } else { "" },
                        if *granted { "" } else { " · not granted" },
                    ),
                ),
                AuditKind::RepairAction {
                    action,
                    zone,
                    trigger_death_minute,
                    bid_dollars,
                    billing_delta_dollars,
                } => (
                    zone.clone(),
                    *bid_dollars,
                    format!(
                        "{action} after death @ min {trigger_death_minute} · Δ${}",
                        fmt_num(*billing_delta_dollars)
                    ),
                ),
                AuditKind::ScaleDecision {
                    action,
                    reason,
                    from_strength,
                    to_strength,
                    demand_strength,
                    ..
                } => (
                    String::new(),
                    0.0,
                    format!(
                        "{action} ({reason}) · strength {from_strength} → {to_strength} · demand {}",
                        fmt_num(*demand_strength)
                    ),
                ),
                AuditKind::Migration {
                    action,
                    from_zone,
                    to_zone,
                    notice_minute,
                    deadline_minute,
                    bid_dollars,
                } => (
                    from_zone.clone(),
                    *bid_dollars,
                    format!(
                        "{action} → {} · notice @ min {notice_minute} · deadline @ min {deadline_minute}",
                        if to_zone.is_empty() { "∅" } else { to_zone },
                    ),
                ),
            };
            out.push_str(&format!(
                "<tr id=\"audit-{}\"><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{}</td></tr>\n",
                r.seq,
                r.seq,
                r.at_minute,
                r.kind.label(),
                esc(&zone),
                fmt_num(bid),
                esc(&detail),
            ));
        }
        out.push_str("</tbody>\n</table>\n");
    }
    out.push_str("</div>\n");
    out
}

/// Render the full report for one recorded replay run. `trace_events` is
/// the run's trace ring (pass `&[]` when tracing was disabled); complete
/// request traces in it render as a per-operation Gantt section.
pub fn render_replay_report(
    subtitle: &str,
    result: &ReplayResult,
    snapshot: &MetricsSnapshot,
    trace_events: &[Event],
) -> String {
    let series = &result.series;
    let marks = alert_marks(&result.alerts);
    let mut figures = String::new();

    // Chart 1 (and 2, if a second zone exists): spot price vs. active
    // bid in the most-bid zones — the Fig. 4 shape.
    let mut zones: Vec<String> = series
        .iter()
        .filter(|s| s.name.starts_with("replay.bid."))
        .map(|s| s.name["replay.bid.".len()..].to_string())
        .collect();
    zones.sort_by_key(|z| {
        std::cmp::Reverse(
            find(series, &format!("replay.bid.{z}")).map_or(0, |s| s.total_count),
        )
    });
    for zone in zones.iter().take(2) {
        let mut lines = Vec::new();
        if let Some(price) = find(series, &format!("replay.price.{zone}")) {
            lines.push(Line {
                label: "spot price".into(),
                slot: 1,
                dashed: false,
                points: line_points(price),
            });
        }
        if let Some(bid) = find(series, &format!("replay.bid.{zone}")) {
            lines.push(Line {
                label: "active bid".into(),
                slot: 2,
                dashed: true,
                points: line_points(bid),
            });
        }
        figures.push_str(&figure(
            &format!("Spot price vs. active bid — {zone}"),
            "market time (hours)",
            "$/hour",
            &lines,
        ));
    }

    if let Some(cost) = find(series, "replay.interval_cost_upper_dollars") {
        figures.push_str(&figure_marked(
            "Cost upper bound per bidding interval (Σ bids)",
            "market time (hours)",
            "$",
            &[Line {
                label: "interval cost".into(),
                slot: 1,
                dashed: false,
                points: line_points(cost),
            }],
            &marks,
        ));
    }

    if let Some(avail) = find(series, "replay.interval_availability") {
        figures.push_str(&figure_marked(
            "Service availability per bidding interval (alert rules marked)",
            "market time (hours)",
            "fraction of interval at quorum",
            &[Line {
                label: "availability".into(),
                slot: 1,
                dashed: false,
                points: line_points(avail),
            }],
            &marks,
        ));
    }

    {
        let mut lines = Vec::new();
        if let Some(fleet) = find(series, "replay.fleet_size") {
            lines.push(Line {
                label: "fleet size".into(),
                slot: 1,
                dashed: false,
                points: line_points(fleet),
            });
        }
        if let Some(deaths) = find(series, "replay.deaths") {
            lines.push(Line {
                label: "out-of-bid kills".into(),
                slot: 2,
                dashed: false,
                points: line_points(deaths),
            });
        }
        if !lines.is_empty() {
            figures.push_str(&figure(
                "Fleet size and out-of-bid kills per interval",
                "market time (hours)",
                "instances",
                &lines,
            ));
        }
    }

    if let Some(decide) = find(series, "jupiter.decide_micros") {
        figures.push_str(&figure(
            "Bidding decision latency",
            "market time (hours)",
            "decide() µs",
            &[Line {
                label: "decide latency".into(),
                slot: 1,
                dashed: false,
                points: line_points(decide),
            }],
        ));
    }

    {
        // Repair-controller series: per-interval degraded minutes and
        // mid-interval rebids. Both are absent (and the figure skipped)
        // when the replay ran with repair off.
        let mut lines = Vec::new();
        if let Some(deg) = find(series, "repair.degraded_minutes") {
            lines.push(Line {
                label: "degraded minutes".into(),
                slot: 1,
                dashed: false,
                points: line_points(deg),
            });
        }
        if let Some(rebids) = find(series, "repair.rebids") {
            lines.push(Line {
                label: "rebids".into(),
                slot: 2,
                dashed: true,
                points: line_points(rebids),
            });
        }
        if !lines.is_empty() {
            figures.push_str(&figure(
                "Repair controller: degraded minutes and rebids per bidding interval",
                "market time (hours)",
                "minutes / rebids",
                &lines,
            ));
        }
    }

    // The accessible fallback: the per-interval table.
    let mut table = String::from(
        "<table>\n<thead><tr><th>start (min)</th><th>group</th><th>quorum</th>\
         <th>cost bound ($)</th><th>up (min)</th><th>kills</th></tr></thead>\n<tbody>\n",
    );
    for iv in &result.intervals {
        table.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.4}</td><td>{}</td><td>{}</td></tr>\n",
            iv.start,
            iv.group_size,
            iv.quorum,
            iv.cost_upper_bound.as_dollars(),
            iv.up_minutes,
            iv.kills
        ));
    }
    table.push_str("</tbody>\n</table>\n");

    // Headline counters.
    let mut counters = String::from("<table>\n<thead><tr><th>counter</th><th>value</th></tr></thead>\n<tbody>\n");
    for (name, v) in &snapshot.counters {
        counters.push_str(&format!("<tr><td>{}</td><td>{v}</td></tr>\n", esc(name)));
    }
    counters.push_str("</tbody>\n</table>\n");

    let stat = |label: &str, value: String| {
        format!(
            "<div class=\"tile\"><div class=\"v\">{value}</div><div class=\"l\">{}</div></div>\n",
            esc(label)
        )
    };
    let tiles = format!(
        "<div class=\"tiles\">\n{}{}{}{}</div>\n",
        stat("total cost", format!("${:.2}", result.total_cost.as_dollars())),
        stat("availability", format!("{:.6}", result.availability())),
        stat("out-of-bid kills", result.total_kills().to_string()),
        stat("strategy", esc(&result.strategy)),
    );

    format!(
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>spot-jupiter replay report</title>
<style>
.viz-root {{
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e6e5e1;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
}}
@media (prefers-color-scheme: dark) {{
  .viz-root {{
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #34332f;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }}
}}
body {{ margin: 0; }}
.viz-root {{
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  max-width: 780px;
  margin: 0 auto;
  padding: 24px 16px 48px;
}}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
.sub {{ color: var(--text-secondary); margin: 0 0 20px; }}
.tiles {{ display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 20px; }}
.tile {{ border: 1px solid var(--grid); border-radius: 8px; padding: 10px 16px; }}
.tile .v {{ font-size: 20px; font-weight: 600; }}
.tile .l {{ color: var(--text-secondary); font-size: 12px; }}
figure {{ margin: 0 0 28px; }}
figcaption {{ font-weight: 600; margin-bottom: 6px; }}
svg {{ width: 100%; height: auto; display: block; }}
.grid {{ stroke: var(--grid); stroke-width: 1; }}
.tick {{ fill: var(--text-secondary); font-size: 11px; }}
.axis {{ fill: var(--text-secondary); font-size: 12px; }}
path.s1 {{ stroke: var(--series-1); }}
path.s2 {{ stroke: var(--series-2); }}
path.s3 {{ stroke: var(--series-3); }}
circle.hover {{ fill: transparent; }}
circle.hover:hover {{ fill: currentColor; fill-opacity: 0.25; }}
circle.s1 {{ color: var(--series-1); }}
circle.s2 {{ color: var(--series-2); }}
circle.s3 {{ color: var(--series-3); }}
rect.s1 {{ fill: var(--series-1); }}
rect.s2 {{ fill: var(--series-2); }}
rect.s3 {{ fill: var(--series-3); }}
.gantt .row {{ fill: var(--text-primary); font-size: 11px; }}
line.mark {{ stroke: var(--text-primary); stroke-width: 1.5; }}
line.alert {{ stroke-width: 1.5; stroke-dasharray: 2 3; }}
line.alert-critical {{ stroke: #c92a2a; }}
line.alert-warning {{ stroke: #e8930c; }}
line.alert-info {{ stroke: var(--text-secondary); }}
.sev {{ font-size: 11px; font-weight: 600; text-transform: uppercase; }}
.sev-critical {{ color: #c92a2a; }}
.sev-warning {{ color: #e8930c; }}
.sev-info {{ color: var(--text-secondary); }}
.legend {{ display: flex; gap: 16px; margin-bottom: 4px; color: var(--text-secondary); font-size: 12px; }}
.legend .sw {{ display: inline-block; width: 18px; height: 0; border-top: 2px solid; vertical-align: middle; margin-right: 6px; }}
.legend .sw.dash {{ border-top-style: dashed; }}
.legend .s1 {{ border-color: var(--series-1); }}
.legend .s2 {{ border-color: var(--series-2); }}
.legend .s3 {{ border-color: var(--series-3); }}
table {{ border-collapse: collapse; width: 100%; margin: 8px 0 24px; font-size: 13px; }}
th, td {{ border-bottom: 1px solid var(--grid); padding: 4px 8px; text-align: right; }}
th:first-child, td:first-child {{ text-align: left; }}
.empty {{ color: var(--text-secondary); font-style: italic; }}
h2 {{ font-size: 16px; margin: 24px 0 4px; }}
</style>
</head>
<body>
<div class="viz-root">
<h1>spot-jupiter replay report</h1>
<p class="sub">{subtitle}</p>
{tiles}
{figures}
{alerts}
{traces}
<h2>Per-interval outcomes</h2>
{table}
<h2>Counters</h2>
{counters}
</div>
</body>
</html>
"#,
        subtitle = esc(subtitle),
        tiles = tiles,
        figures = figures,
        alerts = alert_section(&result.alerts, &result.audit),
        traces = trace_section(trace_events),
        table = table,
        counters = counters,
    )
}

/// Number of `<svg` charts in a rendered report (used by tests and the
/// CLI's sanity check).
pub fn chart_count(html: &str) -> usize {
    html.matches("<svg").count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_bounds_and_series() {
        let svg = svg_chart_marked(
            "t",
            "y",
            &[Line {
                label: "a".into(),
                slot: 1,
                dashed: false,
                points: vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)],
            }],
            &[],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("path class=\"s1\""));
        assert!(svg.contains("<title>"));
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let svg = svg_chart_marked("t", "y", &[], &[]);
        assert!(svg.contains("no recorded samples"));
    }

    #[test]
    fn flat_series_still_has_finite_axis() {
        let svg = svg_chart_marked(
            "t",
            "y",
            &[Line {
                label: "flat".into(),
                slot: 2,
                dashed: true,
                points: vec![(0.0, 5.0), (10.0, 5.0)],
            }],
            &[],
        );
        assert!(svg.contains("stroke-dasharray"));
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn trace_section_renders_gantt_and_attribution() {
        use obs::{Obs, TraceContext};
        let (o, _clock) = Obs::simulated();
        o.set_time_micros(0);
        let root = o.trace.span_open_causal(
            "client.request",
            TraceContext {
                trace_id: 9,
                span_id: 0,
            },
            &[],
        );
        o.set_time_micros(100);
        let prop = o.trace.span_open_causal("paxos.propose", root.context(), &[]);
        o.set_time_micros(400);
        o.trace.event_causal("paxos.commit", prop.context(), &[]);
        o.trace.span_close(prop, "paxos.propose", &[]);
        o.set_time_micros(500);
        o.trace.span_close(root, "client.request", &[]);

        let html = trace_section(&o.trace.events());
        assert!(html.contains("Causal traces"));
        assert!(html.contains("client.request"));
        assert!(html.contains("paxos.propose"));
        assert!(html.contains("class=\"gantt\""));
        // Attribution tiles the 500 µs root: 200 µs client + 300 µs propose.
        assert!(html.contains("<td>300</td>"));
        assert!(html.contains("<td>200</td>"));
        // Commit instant renders as a mark with a tooltip.
        assert!(html.contains("paxos.commit @ 400 µs"));
    }

    #[test]
    fn trace_section_is_empty_without_complete_traces() {
        assert!(trace_section(&[]).is_empty());
    }

    #[test]
    fn alert_marks_annotate_charts() {
        let svg = svg_chart_marked(
            "t",
            "y",
            &[Line {
                label: "a".into(),
                slot: 1,
                dashed: false,
                points: vec![(0.0, 1.0), (10.0, 2.0)],
            }],
            &[
                Mark {
                    x: 5.0,
                    label: "slo.availability.fast_burn — burning".into(),
                    severity: Severity::Critical,
                },
                Mark {
                    x: 99.0, // outside data range: dropped
                    label: "late".into(),
                    severity: Severity::Info,
                },
            ],
        );
        assert!(svg.contains("alert-critical"));
        assert!(svg.contains("slo.availability.fast_burn"));
        assert!(!svg.contains("alert-info"));
    }

    #[test]
    fn alert_section_markers_always_present() {
        let html = alert_section(&[], &[]);
        assert!(html.contains("id=\"alerts\""));
        assert!(html.contains("class=\"audit-timeline\""));
        assert!(html.contains("no alerts fired"));

        let audit = vec![AuditRecord {
            seq: 1,
            at_minute: 12,
            kind: AuditKind::BidSelection {
                zone: "us-east-1a".into(),
                instance_type: "m1.small".into(),
                capacity_weight: 1.0,
                bid_dollars: 0.08,
                spot_price_dollars: 0.04,
                predicted_availability: 0.997,
                predicted_cost_dollars: 0.24,
                kernel_id: 0xdead_beef,
                fp_cache_hit: true,
                granted: true,
            },
        }];
        let alerts = vec![AlertEvent {
            seq: 1,
            at_micros: 608 * 60_000_000,
            monitor: "slo.availability.fast_burn".into(),
            severity: Severity::Critical,
            message: "burn 14.9 over 60m".into(),
            audit_refs: vec![1],
            fields: Vec::new(),
        }];
        let html = alert_section(&alerts, &audit);
        assert!(html.contains("id=\"alerts\""));
        assert!(html.contains("slo.availability.fast_burn"));
        // The alert row links to the audit record's row anchor.
        assert!(html.contains("href=\"#audit-1\""));
        assert!(html.contains("id=\"audit-1\""));
        assert!(html.contains("us-east-1a"));
        assert!(html.contains("cache hit"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = svg_chart_marked(
            "<time>",
            "a&b",
            &[Line {
                label: "x".into(),
                slot: 1,
                dashed: false,
                points: vec![(0.0, 0.0)],
            }],
            &[],
        );
        assert!(svg.contains("&lt;time&gt;"));
        assert!(svg.contains("a&amp;b"));
        assert!(!svg.contains("<time>"));
    }
}
