//! # simnet — deterministic discrete-event network simulation
//!
//! A small, deterministic discrete-event simulator used as the execution
//! substrate for the replicated services in this workspace (the Paxos lock
//! service and the RS-Paxos storage service). The paper ran those services on
//! real EC2 instances; here every instance is a simulated node whose crashes
//! are injected by the spot-market replay (out-of-bid terminations) and whose
//! messages travel over a configurable latency/drop model.
//!
//! Design points:
//!
//! * **Virtual time** in milliseconds ([`SimTime`]). Nothing ever sleeps;
//!   the simulation pops timestamped events from a priority queue.
//! * **Determinism**: all randomness (latency jitter, drops) comes from a
//!   seeded ChaCha RNG, and simultaneous events are ordered by an insertion
//!   sequence number, so a run is a pure function of (seed, schedule).
//! * **Actors**: every node runs the same [`Actor`] implementation (the
//!   simulation is generic over one actor type, which is all the replicated
//!   services need). Actors react to messages and timers via a [`Context`]
//!   that records outgoing effects.
//! * **Fault injection**: the *driver* (experiment harness) interleaves
//!   `run_until` with [`Simulation::crash`], [`Simulation::restart`],
//!   [`Simulation::add_node`] and partition control, which keeps the fault
//!   schedule outside the simulator and fully deterministic. The [`chaos`]
//!   module generates seeded fault schedules ([`ChaosSchedule`]) covering
//!   crashes, restarts, partitions, link chaos ([`LinkChaos`]: extra
//!   drops, duplicates, delay spikes) and clock skew; any failing run
//!   reproduces byte-for-byte from the schedule's printed `u64` seed
//!   (checkable via [`Simulation::fingerprint`]).

pub mod chaos;
pub mod event;
pub mod network;
pub mod sim;
pub mod time;

pub use chaos::{ChaosAction, ChaosEvent, ChaosPlan, ChaosSchedule};
pub use event::{Event, EventKind};
pub use network::{LinkChaos, NetworkConfig};
pub use obs::TraceContext;
pub use sim::{Actor, Context, NodeId, Simulation, TimerToken};
pub use time::SimTime;
