//! Seeded open-loop arrival processes.
//!
//! An arrival process decides *when* requests enter the system,
//! independent of how fast the system serves them. All sampling is
//! sequential over one seeded ChaCha8 stream, so a given `(process,
//! seed, horizon)` triple yields the same arrival vector on every run
//! and under every thread count — the repo's determinism gates diff
//! workload fingerprints across `RAYON_NUM_THREADS` settings.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::SimTime;

/// Seconds per simulated day (the diurnal period).
const DAY_SECS: f64 = 86_400.0;

/// A request arrival process over simulated time.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate_per_sec`.
    Poisson {
        /// Mean arrival rate (requests per simulated second).
        rate_per_sec: f64,
    },
    /// Square-wave bursts: `peak_rate` for the first `burst_len` of
    /// every `period`, `base_rate` otherwise (Poisson within each
    /// regime).
    Bursty {
        /// Off-burst rate (requests per second).
        base_rate: f64,
        /// In-burst rate (requests per second).
        peak_rate: f64,
        /// Burst cycle length.
        period: SimTime,
        /// Burst duration at the start of each cycle.
        burst_len: SimTime,
    },
    /// A sinusoidal daily cycle calibrated so the rate integrates to
    /// `daily_volume` requests per simulated day: λ(t) =
    /// (volume/86400)·(1 − cos 2πt/day), peaking mid-day at twice the
    /// mean and bottoming out at zero at midnight.
    Diurnal {
        /// Expected requests per simulated day.
        daily_volume: u64,
    },
}

impl ArrivalProcess {
    /// Instantaneous rate (requests per second) at offset `t_secs`.
    pub fn rate_at(&self, t_secs: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Bursty {
                base_rate,
                peak_rate,
                period,
                burst_len,
            } => {
                let period = period.as_millis() as f64 / 1_000.0;
                let burst = burst_len.as_millis() as f64 / 1_000.0;
                if period <= 0.0 {
                    return *base_rate;
                }
                let phase = t_secs % period;
                if phase < burst {
                    *peak_rate
                } else {
                    *base_rate
                }
            }
            ArrivalProcess::Diurnal { daily_volume } => {
                let mean = *daily_volume as f64 / DAY_SECS;
                let phase = (t_secs % DAY_SECS) / DAY_SECS;
                mean * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
            }
        }
    }

    /// An upper bound on [`ArrivalProcess::rate_at`] over all `t`.
    pub fn peak_rate(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => *rate_per_sec,
            ArrivalProcess::Bursty {
                base_rate,
                peak_rate,
                ..
            } => base_rate.max(*peak_rate),
            ArrivalProcess::Diurnal { daily_volume } => 2.0 * *daily_volume as f64 / DAY_SECS,
        }
    }

    /// Sample the arrival times in `[0, horizon)`, sorted ascending.
    ///
    /// Uses Lewis–Shedler thinning against [`ArrivalProcess::peak_rate`]:
    /// candidate gaps are exponential at the peak rate and each candidate
    /// survives with probability `rate_at(t) / peak`, which reduces to
    /// plain exponential gaps for the homogeneous case.
    pub fn sample(&self, seed: u64, horizon: SimTime) -> Vec<SimTime> {
        let peak = self.peak_rate();
        let horizon_secs = horizon.as_millis() as f64 / 1_000.0;
        let mut out = Vec::new();
        if peak <= 0.0 || horizon_secs <= 0.0 {
            return out;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut t = 0.0f64;
        loop {
            // Exponential gap at the peak rate; 1 − u avoids ln(0).
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / peak;
            if t >= horizon_secs {
                return out;
            }
            let keep: f64 = rng.gen();
            if keep * peak <= self.rate_at(t) {
                out.push(SimTime::from_millis((t * 1_000.0) as u64));
            }
        }
    }
}

/// Deal time-ordered `items` round-robin across `sessions` per-session
/// schedules (each stays sorted when the input is). Round-robin keeps
/// every session's load statistically identical, so a single slow
/// session cannot skew the tail.
pub fn split_round_robin<T>(items: Vec<T>, sessions: usize) -> Vec<Vec<T>> {
    assert!(sessions > 0, "need at least one session");
    let mut out: Vec<Vec<T>> = (0..sessions).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % sessions].push(item);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_close() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 50.0 };
        let arrivals = p.sample(7, SimTime::from_secs(200));
        let rate = arrivals.len() as f64 / 200.0;
        assert!((rate - 50.0).abs() < 5.0, "empirical rate {rate}");
    }

    #[test]
    fn samples_are_sorted_and_bounded() {
        let p = ArrivalProcess::Bursty {
            base_rate: 10.0,
            peak_rate: 100.0,
            period: SimTime::from_secs(10),
            burst_len: SimTime::from_secs(2),
        };
        let horizon = SimTime::from_secs(60);
        let arrivals = p.sample(3, horizon);
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.iter().all(|&t| t < horizon));
    }

    #[test]
    fn identical_seeds_identical_streams() {
        let p = ArrivalProcess::Diurnal {
            daily_volume: 500_000,
        };
        let a = p.sample(11, SimTime::from_secs(3_600));
        let b = p.sample(11, SimTime::from_secs(3_600));
        assert_eq!(a, b);
    }
}
