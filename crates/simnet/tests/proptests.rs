//! Property-based tests of the simulation core: deterministic replay,
//! causal delivery and clock monotonicity under arbitrary workloads.

use proptest::prelude::*;
use simnet::{Actor, Context, NetworkConfig, NodeId, SimTime, Simulation};

/// An actor that relays each received token to a fixed next hop a bounded
/// number of times, recording receive timestamps.
#[derive(Clone)]
struct Relay {
    next: NodeId,
    hops_left: u32,
    log: Vec<(u64, u32)>,
}

impl Actor for Relay {
    type Msg = u32;

    fn on_message(&mut self, _from: NodeId, msg: u32, ctx: &mut Context<u32>) {
        self.log.push((ctx.now.as_millis(), msg));
        if self.hops_left > 0 {
            self.hops_left -= 1;
            ctx.send(self.next, msg + 1);
        }
    }
}

fn build(n: usize, hops: u32, net: NetworkConfig, seed: u64) -> Simulation<Relay> {
    let mut sim = Simulation::new(net, seed);
    for i in 0..n {
        sim.add_node(Relay {
            next: NodeId((i + 1) % n),
            hops_left: hops,
            log: Vec::new(),
        });
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical seeds and schedules produce bit-identical histories.
    #[test]
    fn deterministic_replay(n in 2usize..6, hops in 1u32..30, seed in any::<u64>()) {
        let run = |_| {
            let mut sim = build(n, hops, NetworkConfig::default(), seed);
            sim.inject(NodeId(0), NodeId(1 % n), 0);
            sim.run_to_quiescence();
            let logs: Vec<Vec<(u64, u32)>> = (0..n)
                .map(|i| sim.actor(NodeId(i)).expect("alive").log.clone())
                .collect();
            (sim.now(), sim.messages_delivered(), logs)
        };
        prop_assert_eq!(run(0), run(1));
    }

    /// Receive timestamps never decrease at any node, and the global
    /// clock equals the max event time.
    #[test]
    fn time_is_monotone(n in 2usize..5, hops in 1u32..40, seed in any::<u64>()) {
        let mut sim = build(n, hops, NetworkConfig::default(), seed);
        sim.inject(NodeId(0), NodeId(1 % n), 0);
        sim.run_to_quiescence();
        let mut max_seen = 0;
        for i in 0..n {
            let log = &sim.actor(NodeId(i)).expect("alive").log;
            for w in log.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "node {i} time went backwards");
            }
            if let Some(&(t, _)) = log.last() {
                max_seen = max_seen.max(t);
            }
        }
        prop_assert!(sim.now().as_millis() >= max_seen);
    }

    /// On a loss-free network every sent hop is delivered exactly once:
    /// total receives equal hops + 1 (the injected seed message).
    #[test]
    fn lossless_delivery_counts(n in 2usize..5, hops in 1u32..50, seed in any::<u64>()) {
        let mut sim = build(n, hops, NetworkConfig::ideal(), seed);
        sim.inject(NodeId(0), NodeId(1 % n), 0);
        sim.run_to_quiescence();
        let received: usize = (0..n)
            .map(|i| sim.actor(NodeId(i)).expect("alive").log.len())
            .sum();
        // The relay chain consumes one hop budget per message; budgets
        // are per-node, so the chain ends when the receiving node has no
        // hops left. Total receives = injected 1 + total forwards.
        let forwards: u32 = hops * n as u32
            - (0..n)
                .map(|i| sim.actor(NodeId(i)).expect("alive").hops_left)
                .sum::<u32>();
        prop_assert_eq!(received as u32, forwards + 1);
        prop_assert_eq!(sim.messages_dropped(), 0);
    }

    /// Crashing a node mid-run never panics and never delivers to it.
    #[test]
    fn crashes_are_clean(seed in any::<u64>(), crash_at in 1u64..500) {
        let mut sim = build(3, 1000, NetworkConfig::default(), seed);
        sim.inject(NodeId(0), NodeId(1), 0);
        sim.run_until(SimTime::from_millis(crash_at));
        sim.crash(NodeId(1));
        let len_at_crash = sim
            .actor(NodeId(1))
            .map(|a| a.log.len())
            .unwrap_or(0);
        prop_assert_eq!(len_at_crash, 0, "crashed actor state is gone");
        sim.run_until(SimTime::from_millis(crash_at + 10_000));
        prop_assert!(sim.actor(NodeId(1)).is_none());
    }
}
