//! Self-contained HTML reports: the recorded replay time series rendered
//! as inline SVG line charts (the Fig. 4/7 shapes — price vs. bid over
//! time, cost and availability per bidding interval), with a metrics
//! table appended. No external assets, scripts, or crates: one file,
//! openable anywhere.
//!
//! Chart conventions follow the workspace's dataviz ground rules: one
//! y-axis per chart, at most a few series, a fixed categorical color
//! order (CSS custom properties, stepped separately for dark mode),
//! recessive grid, direct labels via a legend row, and the full
//! per-interval table below the charts as the accessible fallback.

use obs::{MetricsSnapshot, SeriesSnapshot};
use replay::ReplayResult;

/// One polyline in a chart. `slot` picks the categorical color
/// (1-based, fixed order across the report).
pub struct Line {
    /// Legend label.
    pub label: String,
    /// Categorical palette slot (1..=8).
    pub slot: u8,
    /// Dashed stroke (used to separate bid from price).
    pub dashed: bool,
    /// `(x, y)` in data coordinates.
    pub points: Vec<(f64, f64)>,
}

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 300.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 14.0;
const MARGIN_T: f64 = 14.0;
const MARGIN_B: f64 = 40.0;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Compact tick/value formatting: enough digits to tell ticks apart,
/// no scientific noise for the usual dollar/availability ranges.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    let a = v.abs();
    let s = if a == 0.0 {
        "0".to_string()
    } else if a >= 1000.0 {
        format!("{v:.0}")
    } else if a >= 10.0 {
        format!("{v:.1}")
    } else if a >= 0.1 {
        format!("{v:.2}")
    } else if a >= 0.001 {
        format!("{v:.4}")
    } else {
        format!("{v:.2e}")
    };
    // Trim a trailing ".0"-style fraction.
    if s.contains('.') && !s.contains('e') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s
    }
}

/// Render one line chart as an SVG element. Returns an empty-data note
/// instead of axes when no line has points.
pub fn svg_chart(x_label: &str, y_label: &str, lines: &[Line]) -> String {
    let all: Vec<(f64, f64)> = lines.iter().flat_map(|l| l.points.iter().copied()).collect();
    if all.is_empty() {
        return "<p class=\"empty\">no recorded samples</p>".into();
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 - x0 < 1e-9 {
        x0 -= 0.5;
        x1 += 0.5;
    }
    if y1 - y0 < 1e-9 {
        let pad = (y0.abs() * 0.1).max(0.5);
        y0 -= pad;
        y1 += pad;
    } else {
        let pad = (y1 - y0) * 0.06;
        y0 -= pad;
        y1 += pad;
    }
    let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * (WIDTH - MARGIN_L - MARGIN_R);
    let py = |y: f64| HEIGHT - MARGIN_B - (y - y0) / (y1 - y0) * (HEIGHT - MARGIN_T - MARGIN_B);

    let mut out = format!(
        "<svg viewBox=\"0 0 {WIDTH} {HEIGHT}\" role=\"img\" \
         preserveAspectRatio=\"xMidYMid meet\">\n"
    );
    // Recessive grid + y ticks.
    for i in 0..=4 {
        let y = y0 + (y1 - y0) * i as f64 / 4.0;
        let yy = py(y);
        out.push_str(&format!(
            "<line class=\"grid\" x1=\"{MARGIN_L}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\"/>\n",
            WIDTH - MARGIN_R
        ));
        out.push_str(&format!(
            "<text class=\"tick\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{}</text>\n",
            MARGIN_L - 6.0,
            yy + 3.5,
            fmt_num(y)
        ));
    }
    // X ticks.
    for i in 0..=5 {
        let x = x0 + (x1 - x0) * i as f64 / 5.0;
        let xx = px(x);
        out.push_str(&format!(
            "<line class=\"grid\" x1=\"{xx:.1}\" y1=\"{:.1}\" x2=\"{xx:.1}\" y2=\"{:.1}\"/>\n",
            HEIGHT - MARGIN_B,
            HEIGHT - MARGIN_B + 4.0
        ));
        out.push_str(&format!(
            "<text class=\"tick\" x=\"{xx:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
            HEIGHT - MARGIN_B + 16.0,
            fmt_num(x)
        ));
    }
    // Axis labels.
    out.push_str(&format!(
        "<text class=\"axis\" x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{}</text>\n",
        MARGIN_L + (WIDTH - MARGIN_L - MARGIN_R) / 2.0,
        HEIGHT - 6.0,
        esc(x_label)
    ));
    out.push_str(&format!(
        "<text class=\"axis\" x=\"14\" y=\"{:.1}\" text-anchor=\"middle\" \
         transform=\"rotate(-90 14 {:.1})\">{}</text>\n",
        MARGIN_T + (HEIGHT - MARGIN_T - MARGIN_B) / 2.0,
        MARGIN_T + (HEIGHT - MARGIN_T - MARGIN_B) / 2.0,
        esc(y_label)
    ));
    // Series.
    for line in lines {
        if line.points.is_empty() {
            continue;
        }
        let dash = if line.dashed { " stroke-dasharray=\"6 4\"" } else { "" };
        let mut d = String::new();
        for (i, &(x, y)) in line.points.iter().enumerate() {
            d.push_str(if i == 0 { "M" } else { "L" });
            d.push_str(&format!("{:.1} {:.1} ", px(x), py(y)));
        }
        out.push_str(&format!(
            "<path class=\"s{}\" fill=\"none\" stroke-width=\"2\" \
             stroke-linejoin=\"round\" d=\"{}\"{}/>\n",
            line.slot,
            d.trim_end(),
            dash
        ));
        // Native hover tooltips on sparse series; skip on dense ones to
        // keep the file small and the marks thin.
        if line.points.len() <= 120 {
            for &(x, y) in &line.points {
                out.push_str(&format!(
                    "<circle class=\"hover s{}\" cx=\"{:.1}\" cy=\"{:.1}\" r=\"7\">\
                     <title>{}: ({}, {})</title></circle>\n",
                    line.slot,
                    px(x),
                    py(y),
                    esc(&line.label),
                    fmt_num(x),
                    fmt_num(y)
                ));
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

/// A chart block: caption, legend row (for ≥ 2 series), SVG.
pub fn figure(caption: &str, x_label: &str, y_label: &str, lines: &[Line]) -> String {
    let mut out = format!("<figure>\n<figcaption>{}</figcaption>\n", esc(caption));
    if lines.len() >= 2 {
        out.push_str("<div class=\"legend\">");
        for line in lines {
            out.push_str(&format!(
                "<span><i class=\"sw s{}{}\"></i>{}</span>",
                line.slot,
                if line.dashed { " dash" } else { "" },
                esc(&line.label)
            ));
        }
        out.push_str("</div>\n");
    }
    out.push_str(&svg_chart(x_label, y_label, lines));
    out.push_str("</figure>\n");
    out
}

/// Series points as `(hours, last-value)` chart coordinates.
fn line_points(s: &SeriesSnapshot) -> Vec<(f64, f64)> {
    s.points
        .iter()
        .map(|p| (p.t_last as f64 / 60.0, p.last))
        .collect()
}

fn find<'a>(series: &'a [SeriesSnapshot], name: &str) -> Option<&'a SeriesSnapshot> {
    series.iter().find(|s| s.name == name)
}

/// Render the full report for one recorded replay run.
pub fn render_replay_report(
    subtitle: &str,
    result: &ReplayResult,
    snapshot: &MetricsSnapshot,
) -> String {
    let series = &result.series;
    let mut figures = String::new();

    // Chart 1 (and 2, if a second zone exists): spot price vs. active
    // bid in the most-bid zones — the Fig. 4 shape.
    let mut zones: Vec<String> = series
        .iter()
        .filter(|s| s.name.starts_with("replay.bid."))
        .map(|s| s.name["replay.bid.".len()..].to_string())
        .collect();
    zones.sort_by_key(|z| {
        std::cmp::Reverse(
            find(series, &format!("replay.bid.{z}")).map_or(0, |s| s.total_count),
        )
    });
    for zone in zones.iter().take(2) {
        let mut lines = Vec::new();
        if let Some(price) = find(series, &format!("replay.price.{zone}")) {
            lines.push(Line {
                label: "spot price".into(),
                slot: 1,
                dashed: false,
                points: line_points(price),
            });
        }
        if let Some(bid) = find(series, &format!("replay.bid.{zone}")) {
            lines.push(Line {
                label: "active bid".into(),
                slot: 2,
                dashed: true,
                points: line_points(bid),
            });
        }
        figures.push_str(&figure(
            &format!("Spot price vs. active bid — {zone}"),
            "market time (hours)",
            "$/hour",
            &lines,
        ));
    }

    if let Some(cost) = find(series, "replay.interval_cost_upper_dollars") {
        figures.push_str(&figure(
            "Cost upper bound per bidding interval (Σ bids)",
            "market time (hours)",
            "$",
            &[Line {
                label: "interval cost".into(),
                slot: 1,
                dashed: false,
                points: line_points(cost),
            }],
        ));
    }

    if let Some(avail) = find(series, "replay.interval_availability") {
        figures.push_str(&figure(
            "Service availability per bidding interval",
            "market time (hours)",
            "fraction of interval at quorum",
            &[Line {
                label: "availability".into(),
                slot: 1,
                dashed: false,
                points: line_points(avail),
            }],
        ));
    }

    {
        let mut lines = Vec::new();
        if let Some(fleet) = find(series, "replay.fleet_size") {
            lines.push(Line {
                label: "fleet size".into(),
                slot: 1,
                dashed: false,
                points: line_points(fleet),
            });
        }
        if let Some(deaths) = find(series, "replay.deaths") {
            lines.push(Line {
                label: "out-of-bid kills".into(),
                slot: 2,
                dashed: false,
                points: line_points(deaths),
            });
        }
        if !lines.is_empty() {
            figures.push_str(&figure(
                "Fleet size and out-of-bid kills per interval",
                "market time (hours)",
                "instances",
                &lines,
            ));
        }
    }

    if let Some(decide) = find(series, "jupiter.decide_micros") {
        figures.push_str(&figure(
            "Bidding decision latency",
            "market time (hours)",
            "decide() µs",
            &[Line {
                label: "decide latency".into(),
                slot: 1,
                dashed: false,
                points: line_points(decide),
            }],
        ));
    }

    // The accessible fallback: the per-interval table.
    let mut table = String::from(
        "<table>\n<thead><tr><th>start (min)</th><th>group</th><th>quorum</th>\
         <th>cost bound ($)</th><th>up (min)</th><th>kills</th></tr></thead>\n<tbody>\n",
    );
    for iv in &result.intervals {
        table.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:.4}</td><td>{}</td><td>{}</td></tr>\n",
            iv.start,
            iv.group_size,
            iv.quorum,
            iv.cost_upper_bound.as_dollars(),
            iv.up_minutes,
            iv.kills
        ));
    }
    table.push_str("</tbody>\n</table>\n");

    // Headline counters.
    let mut counters = String::from("<table>\n<thead><tr><th>counter</th><th>value</th></tr></thead>\n<tbody>\n");
    for (name, v) in &snapshot.counters {
        counters.push_str(&format!("<tr><td>{}</td><td>{v}</td></tr>\n", esc(name)));
    }
    counters.push_str("</tbody>\n</table>\n");

    let stat = |label: &str, value: String| {
        format!(
            "<div class=\"tile\"><div class=\"v\">{value}</div><div class=\"l\">{}</div></div>\n",
            esc(label)
        )
    };
    let tiles = format!(
        "<div class=\"tiles\">\n{}{}{}{}</div>\n",
        stat("total cost", format!("${:.2}", result.total_cost.as_dollars())),
        stat("availability", format!("{:.6}", result.availability())),
        stat("out-of-bid kills", result.total_kills().to_string()),
        stat("strategy", esc(&result.strategy)),
    );

    format!(
        r#"<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>spot-jupiter replay report</title>
<style>
.viz-root {{
  color-scheme: light;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #e6e5e1;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
}}
@media (prefers-color-scheme: dark) {{
  .viz-root {{
    color-scheme: dark;
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #34332f;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }}
}}
body {{ margin: 0; }}
.viz-root {{
  font: 14px/1.45 system-ui, sans-serif;
  background: var(--surface-1);
  color: var(--text-primary);
  max-width: 780px;
  margin: 0 auto;
  padding: 24px 16px 48px;
}}
h1 {{ font-size: 20px; margin: 0 0 4px; }}
.sub {{ color: var(--text-secondary); margin: 0 0 20px; }}
.tiles {{ display: flex; gap: 12px; flex-wrap: wrap; margin-bottom: 20px; }}
.tile {{ border: 1px solid var(--grid); border-radius: 8px; padding: 10px 16px; }}
.tile .v {{ font-size: 20px; font-weight: 600; }}
.tile .l {{ color: var(--text-secondary); font-size: 12px; }}
figure {{ margin: 0 0 28px; }}
figcaption {{ font-weight: 600; margin-bottom: 6px; }}
svg {{ width: 100%; height: auto; display: block; }}
.grid {{ stroke: var(--grid); stroke-width: 1; }}
.tick {{ fill: var(--text-secondary); font-size: 11px; }}
.axis {{ fill: var(--text-secondary); font-size: 12px; }}
path.s1 {{ stroke: var(--series-1); }}
path.s2 {{ stroke: var(--series-2); }}
path.s3 {{ stroke: var(--series-3); }}
circle.hover {{ fill: transparent; }}
circle.hover:hover {{ fill: currentColor; fill-opacity: 0.25; }}
circle.s1 {{ color: var(--series-1); }}
circle.s2 {{ color: var(--series-2); }}
circle.s3 {{ color: var(--series-3); }}
.legend {{ display: flex; gap: 16px; margin-bottom: 4px; color: var(--text-secondary); font-size: 12px; }}
.legend .sw {{ display: inline-block; width: 18px; height: 0; border-top: 2px solid; vertical-align: middle; margin-right: 6px; }}
.legend .sw.dash {{ border-top-style: dashed; }}
.legend .s1 {{ border-color: var(--series-1); }}
.legend .s2 {{ border-color: var(--series-2); }}
.legend .s3 {{ border-color: var(--series-3); }}
table {{ border-collapse: collapse; width: 100%; margin: 8px 0 24px; font-size: 13px; }}
th, td {{ border-bottom: 1px solid var(--grid); padding: 4px 8px; text-align: right; }}
th:first-child, td:first-child {{ text-align: left; }}
.empty {{ color: var(--text-secondary); font-style: italic; }}
h2 {{ font-size: 16px; margin: 24px 0 4px; }}
</style>
</head>
<body>
<div class="viz-root">
<h1>spot-jupiter replay report</h1>
<p class="sub">{subtitle}</p>
{tiles}
{figures}
<h2>Per-interval outcomes</h2>
{table}
<h2>Counters</h2>
{counters}
</div>
</body>
</html>
"#,
        subtitle = esc(subtitle),
        tiles = tiles,
        figures = figures,
        table = table,
        counters = counters,
    )
}

/// Number of `<svg` charts in a rendered report (used by tests and the
/// CLI's sanity check).
pub fn chart_count(html: &str) -> usize {
    html.matches("<svg").count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_bounds_and_series() {
        let svg = svg_chart(
            "t",
            "y",
            &[Line {
                label: "a".into(),
                slot: 1,
                dashed: false,
                points: vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)],
            }],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("path class=\"s1\""));
        assert!(svg.contains("<title>"));
    }

    #[test]
    fn empty_chart_degrades_gracefully() {
        let svg = svg_chart("t", "y", &[]);
        assert!(svg.contains("no recorded samples"));
    }

    #[test]
    fn flat_series_still_has_finite_axis() {
        let svg = svg_chart(
            "t",
            "y",
            &[Line {
                label: "flat".into(),
                slot: 2,
                dashed: true,
                points: vec![(0.0, 5.0), (10.0, 5.0)],
            }],
        );
        assert!(svg.contains("stroke-dasharray"));
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = svg_chart(
            "<time>",
            "a&b",
            &[Line {
                label: "x".into(),
                slot: 1,
                dashed: false,
                points: vec![(0.0, 0.0)],
            }],
        );
        assert!(svg.contains("&lt;time&gt;"));
        assert!(svg.contains("a&amp;b"));
        assert!(!svg.contains("<time>"));
    }
}
