//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`from_str`] over the serde shim's [`Value`] model,
//! plus a small standards-conforming JSON writer and parser.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

pub use serde::{Error, Value};

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Parse JSON text into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---- writer -------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Rust's shortest-round-trip float formatting.
                out.push_str(&f.to_string());
            } else {
                // Like serde_json: non-finite floats become null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::msg(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.checked_sub(0xDC00).ok_or_else(|| {
                                        Error::msg("invalid low surrogate")
                                    })?);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x\ny"}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out);
        assert_eq!(out, json);
    }

    #[test]
    fn typed_round_trip() {
        let data = vec![(1u64, 0.5f64), (2, 0.25)];
        let json = to_string(&data).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""é😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(parse_value("nulll").is_err());
    }
}
