//! End-to-end RS-Paxos storage tests: coded writes, quorum-gathered reads,
//! failover with value recovery, and the θ(3,5) fault-tolerance envelope.

use bytes::Bytes;
use simnet::{NetworkConfig, SimTime};
use storage::{RsCluster, RsConfig, StoreCmd, StoreResp};

fn cluster(seed: u64) -> RsCluster {
    RsCluster::new(5, RsConfig::default(), NetworkConfig::default(), seed)
}

fn object(tag: u8, len: usize) -> Bytes {
    Bytes::from(
        (0..len)
            .map(|i| tag.wrapping_add(i as u8))
            .collect::<Vec<u8>>(),
    )
}

fn put(key: &str, obj: Bytes) -> StoreCmd {
    StoreCmd::Put {
        key: key.into(),
        object: obj,
    }
}

fn get(key: &str) -> StoreCmd {
    StoreCmd::Get { key: key.into() }
}

#[test]
fn put_then_get_round_trip() {
    let mut c = cluster(1);
    let client = c.add_client();
    let obj = object(7, 300);
    c.submit(client, put("alpha", obj.clone()));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert!(matches!(
        c.last_response(client),
        Some(StoreResp::Stored { .. })
    ));
    c.submit(client, get("alpha"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(
        c.last_response(client),
        Some(StoreResp::Value { object: Some(obj) })
    );
}

#[test]
fn get_of_missing_key() {
    let mut c = cluster(2);
    let client = c.add_client();
    c.submit(client, get("ghost"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(
        c.last_response(client),
        Some(StoreResp::Value { object: None })
    );
}

#[test]
fn replicas_store_shards_not_full_copies() {
    let mut c = cluster(3);
    let client = c.add_client();
    let obj = object(3, 3_000);
    c.submit(client, put("big", obj.clone()));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    c.sim.run_until(c.sim.now() + SimTime::from_secs(5));
    // Each replica holds ~len/3 (+ framing), nowhere near the full object.
    let mut stored = 0usize;
    for &s in c.servers() {
        let store = c.replica(s).unwrap().store();
        if let Some(e) = store.get("big") {
            if let Some(shard) = &e.shard {
                assert!(
                    shard.len() < obj.len() / 2,
                    "shard of {} bytes for a {} byte object",
                    shard.len(),
                    obj.len()
                );
                stored += 1;
            }
        }
    }
    assert!(stored >= 4, "only {stored} replicas hold a shard");
}

#[test]
fn read_after_leader_failover_reconstructs_from_shards() {
    let mut c = cluster(4);
    let client = c.add_client();
    let obj = object(9, 1_000);
    c.submit(client, put("k", obj.clone()));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    // Kill the leader — the only node with the full object cached.
    let leader = c.leader().expect("leader");
    c.crash(leader);
    // The new leader must gather 3 shards and reconstruct.
    c.submit(client, get("k"));
    assert!(c.run_until_drained(client, SimTime::from_secs(120)));
    assert_eq!(
        c.last_response(client),
        Some(StoreResp::Value { object: Some(obj) })
    );
}

#[test]
fn tolerates_exactly_one_failure() {
    // θ(3,5) ⇒ quorum 4 ⇒ one failure tolerated, two block progress
    // (the availability asymmetry against the lock service, §5.1.2).
    let mut c = cluster(5);
    let client = c.add_client();
    c.submit(client, put("a", object(1, 64)));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));

    let s = c.servers().to_vec();
    let leader = c.leader().unwrap();
    let victim = s.iter().copied().find(|&x| x != leader).unwrap();
    c.crash(victim);
    c.submit(client, put("b", object(2, 64)));
    assert!(
        c.run_until_drained(client, SimTime::from_secs(120)),
        "4 of 5 must make progress"
    );

    let victim2 = s
        .iter()
        .copied()
        .find(|&x| x != victim && Some(x) != c.leader())
        .unwrap();
    c.crash(victim2);
    c.submit(client, put("c", object(3, 64)));
    assert!(
        !c.run_until_drained(client, SimTime::from_secs(45)),
        "3 of 5 is below the RS-Paxos quorum of 4"
    );
}

#[test]
fn restarted_replica_relearns_its_shards() {
    let mut c = cluster(6);
    let client = c.add_client();
    let obj = object(5, 500);
    c.submit(client, put("k1", obj.clone()));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    let victim = c
        .servers()
        .iter()
        .copied()
        .find(|&x| Some(x) != c.leader())
        .unwrap();
    c.crash(victim);
    c.submit(client, put("k2", object(6, 500)));
    assert!(c.run_until_drained(client, SimTime::from_secs(60)));
    c.restart(victim);
    c.sim.run_until(c.sim.now() + SimTime::from_secs(30));
    let r = c.replica(victim).unwrap();
    assert!(r.commit_index() >= 2, "caught up: {}", r.commit_index());
    // It re-learned the keys; bytes may be absent for pre-crash entries
    // the leader could re-encode (it has the objects cached), so both keys
    // should actually carry shards here.
    assert!(r.store().get("k2").is_some());
}

#[test]
fn delete_removes_and_get_sees_absence() {
    let mut c = cluster(7);
    let client = c.add_client();
    c.submit(client, put("d", object(1, 100)));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    c.submit(client, StoreCmd::Delete { key: "d".into() });
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(c.last_response(client), Some(StoreResp::Deleted));
    c.submit(client, get("d"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(
        c.last_response(client),
        Some(StoreResp::Value { object: None })
    );
}

#[test]
fn overwrites_return_latest_version() {
    let mut c = cluster(8);
    let client = c.add_client();
    let v1 = object(1, 200);
    let v2 = object(2, 350);
    c.submit(client, put("k", v1));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    c.submit(client, put("k", v2.clone()));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    c.submit(client, get("k"));
    assert!(c.run_until_drained(client, SimTime::from_secs(30)));
    assert_eq!(
        c.last_response(client),
        Some(StoreResp::Value { object: Some(v2) })
    );
}

#[test]
fn lossy_network_still_converges() {
    let mut c = RsCluster::new(
        5,
        RsConfig::default(),
        NetworkConfig {
            min_latency: SimTime::from_millis(10),
            max_latency: SimTime::from_millis(150),
            drop_probability: 0.02,
        },
        9,
    );
    let client = c.add_client();
    for i in 0..5u8 {
        let obj = object(i, 128);
        c.submit(client, put(&format!("k{i}"), obj.clone()));
        assert!(
            c.run_until_drained(client, SimTime::from_secs(300)),
            "put {i}"
        );
        c.submit(client, get(&format!("k{i}")));
        assert!(
            c.run_until_drained(client, SimTime::from_secs(300)),
            "get {i}"
        );
        assert_eq!(
            c.last_response(client),
            Some(StoreResp::Value { object: Some(obj) }),
            "round {i}"
        );
    }
}
