//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! [`Bytes`], a cheaply cloneable, immutable, shared byte buffer.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice (copied once into shared storage; the
    /// upstream zero-copy optimization is unnecessary at this scale).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: bytes.into() }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.data
    }

    /// Copy the contents into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A shared sub-range `[begin, end)` of this buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[range].into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes {
            data: v.as_bytes().into(),
        }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data.cmp(&other.data)
    }
}

/// Render like upstream: `b"..."` with non-printable bytes escaped.
impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from_static(b"hello");
        let b = Bytes::from(b"hello".to_vec());
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(&a[..2], b"he");
        assert_eq!(a.slice(1..4), Bytes::from(b"ell".to_vec()));
    }

    #[test]
    fn clone_is_shared() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn debug_escapes() {
        let a = Bytes::from_static(b"a\"\x01");
        assert_eq!(format!("{a:?}"), "b\"a\\\"\\x01\"");
    }
}
