//! # erasure — Reed–Solomon erasure coding over GF(2⁸)
//!
//! The substrate for the paper's second evaluation system: an RS-Paxos
//! erasure-coded storage service (Mu et al., HPDC'14). A θ(m, n) code
//! splits an object into `m` data chunks and adds `k = n − m` parity
//! chunks so that *any* `m` of the `n` chunks reconstruct the original
//! (§5.1.2; Rizzo's FEC construction).
//!
//! * [`gf256`] — the finite field GF(2⁸) with the 0x11D reduction
//!   polynomial: log/exp-table multiplication, division, inversion.
//! * [`matrix`] — dense matrices over GF(2⁸): multiplication, Gauss–Jordan
//!   inversion, Vandermonde construction.
//! * [`rs`] — the systematic Reed–Solomon codec θ(m, n): encode data
//!   shards into parity shards, reconstruct from any `m` survivors, plus
//!   whole-object helpers (length framing + padding).

pub mod gf256;
pub mod matrix;
pub mod rs;

pub use gf256::Gf;
pub use matrix::Matrix;
pub use rs::{ErasureError, ReedSolomon};
