//! Exporter golden-file tests, `Registry::merge` semantics, and the
//! downsampling envelope property.
//!
//! The golden files live in `tests/golden/`; regenerate them after an
//! intentional format change with
//! `BLESS=1 cargo test -p obs --test exporters`.

use obs::export::{
    collapsed_stacks, obs_jsonl, prometheus_label_value, prometheus_name, prometheus_text,
};
use obs::{
    alerts_jsonl, audit_jsonl, chrome_trace_json, AlertSink, AuditKind, AuditLog, FieldValue,
    Obs, Registry, SeriesStore, Severity, TraceContext, ALERT_SCHEMA_VERSION,
    AUDIT_SCHEMA_VERSION,
};
use proptest::prelude::*;

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path}: {e} (regenerate with BLESS=1)"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if intentional, regenerate with \
         BLESS=1 cargo test -p obs --test exporters"
    );
}

/// A deterministic handle exercising every exporter input: counters
/// (including a name that needs sanitizing), gauges, histograms, two
/// series, and a nested span pair on the manual clock.
fn fixture() -> Obs {
    let (obs, _clock) = Obs::simulated();
    obs.counter("replay.bids_placed").add(42);
    obs.counter("9weird/name-with.chars").inc();
    obs.gauge("replay.availability").set(0.999);
    let h = obs.histogram("decide_micros");
    for v in [1, 2, 3, 100, 1_000] {
        h.record(v);
    }

    obs.series.record("replay.fleet_size", 0, 5.0);
    obs.series.record("replay.fleet_size", 60, 4.0);
    obs.series.record("replay.price.us-east-1a", 0, 0.0085);

    obs.set_time_micros(0);
    let outer = obs.trace.span_open("boundary", &[]);
    obs.set_time_micros(10_000);
    let inner = obs.trace.span_open("decide", &[("zones", FieldValue::U64(8))]);
    obs.set_time_micros(25_000);
    obs.trace.span_close(inner, "decide", &[]);
    obs.set_time_micros(40_000);
    obs.trace.span_close(outer, "boundary", &[]);
    obs
}

#[test]
fn prometheus_golden() {
    let obs = fixture();
    check_golden("prometheus.txt", &prometheus_text(&obs.metrics.snapshot()));
}

#[test]
fn jsonl_golden() {
    let obs = fixture();
    let jsonl = obs_jsonl(&obs);
    // Every line must parse as standalone JSON before byte-comparison.
    for line in jsonl.lines() {
        serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("invalid JSONL line {line:?}: {e}"));
    }
    check_golden("obs.jsonl", &jsonl);
}

#[test]
fn collapsed_stacks_golden() {
    let obs = fixture();
    let folded = collapsed_stacks(&obs.trace.events());
    // Self-times: decide ran 15 ms inside boundary's 40 ms.
    assert!(folded.contains("boundary;decide 15000"));
    assert!(folded.contains("boundary 25000"));
    check_golden("collapsed.txt", &folded);
}

#[test]
fn prometheus_names_are_sanitized() {
    assert_eq!(prometheus_name("replay.bids_placed"), "replay_bids_placed");
    assert_eq!(prometheus_name("9weird/name-with.chars"), "_9weird_name_with_chars");
    assert_eq!(prometheus_name("ok:name_2"), "ok:name_2");
    assert_eq!(prometheus_name(""), "_");
}

/// Metric keys with spaces around dots or embedded quotes/backslashes
/// keep their original spelling in an escaped `name` label; clean
/// dotted names stay label-free. Pins the exact escaped output.
#[test]
fn prometheus_escapes_lossy_names_into_labels() {
    let registry = Registry::new();
    registry.counter("price. quoted \"usd\"").add(3);
    registry.counter("back\\slash\nnewline").add(1);
    registry.counter("replay.clean_name").add(2);
    registry.gauge("gauge with space").set(1.5);
    registry.histogram("hist \"q\"").record(7);
    let text = prometheus_text(&registry.snapshot());

    assert!(text.contains("price__quoted__usd_{name=\"price. quoted \\\"usd\\\"\"} 3\n"));
    assert!(text.contains("back_slash_newline{name=\"back\\\\slash\\nnewline\"} 1\n"));
    // Conventional dotted names are unchanged: no label.
    assert!(text.contains("replay_clean_name 2\n"));
    assert!(text.contains("gauge_with_space{name=\"gauge with space\"} 1.5\n"));
    // Histograms merge the name label with the quantile label and tag
    // the _sum/_count/_max family too.
    assert!(text.contains("hist__q_{name=\"hist \\\"q\\\"\",quantile=\"0.5\"} 7\n"));
    assert!(text.contains("hist__q__sum{name=\"hist \\\"q\\\"\"} 7\n"));
    assert!(text.contains("hist__q__count{name=\"hist \\\"q\\\"\"} 1\n"));
    assert!(text.contains("hist__q__max{name=\"hist \\\"q\\\"\"} 7\n"));

    assert_eq!(prometheus_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
    assert_eq!(prometheus_label_value("dots. and spaces"), "dots. and spaces");
}

/// Audit-record and alert JSONL goldens: every line is standalone JSON
/// opening with an explicit `schema_version` field, so downstream
/// consumers can dispatch on version before touching the rest of the
/// record. Byte-pinned — a serialization change must bump the schema
/// version and re-bless, not silently drift.
#[test]
fn audit_and_alert_jsonl_golden() {
    let log = AuditLog::new(16);
    log.record(
        600,
        AuditKind::BidSelection {
            zone: "us-east-1a".into(),
            instance_type: "m1.small".into(),
            capacity_weight: 1.0,
            bid_dollars: 0.085,
            spot_price_dollars: 0.041,
            predicted_availability: 0.9971,
            predicted_cost_dollars: 0.51,
            kernel_id: 0x00ab_cdef_0123_4567,
            fp_cache_hit: false,
            granted: true,
        },
    );
    log.record(
        608,
        AuditKind::RepairAction {
            action: "on_demand_top_up".into(),
            zone: "us-east-1c".into(),
            trigger_death_minute: 607,
            bid_dollars: 0.0,
            billing_delta_dollars: 0.26,
        },
    );
    let audit = audit_jsonl(&log.snapshot());
    for line in audit.lines() {
        serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("invalid audit line {line:?}: {e}"));
        assert!(
            line.starts_with(&format!("{{\"schema_version\":{AUDIT_SCHEMA_VERSION},")),
            "audit record must lead with schema_version: {line}"
        );
    }
    check_golden("audit.jsonl", &audit);

    let sink = AlertSink::new(16);
    sink.emit(
        608 * 60_000_000,
        "slo.availability.fast_burn",
        Severity::Critical,
        "burn 14.9 over 60m (threshold 14.4)".to_string(),
        vec![1, 2],
        vec![
            ("burn_rate".to_string(), FieldValue::F64(14.9)),
            ("window_minutes".to_string(), FieldValue::U64(60)),
        ],
    );
    let alerts = alerts_jsonl(&sink.snapshot());
    for line in alerts.lines() {
        serde_json::parse_value(line)
            .unwrap_or_else(|e| panic!("invalid alert line {line:?}: {e}"));
        assert!(
            line.starts_with(&format!("{{\"schema_version\":{ALERT_SCHEMA_VERSION},")),
            "alert must lead with schema_version: {line}"
        );
    }
    check_golden("alerts.jsonl", &alerts);
}

/// Chrome-trace exporter golden: a causal client → propose →
/// quorum-wait chain with a chaos instant and one unclosed span.
#[test]
fn chrome_trace_golden() {
    let (obs, _clock) = Obs::simulated();
    let t = &obs.trace;
    let trace = TraceContext {
        trace_id: 1,
        span_id: 0,
    };
    obs.set_time_micros(1_000);
    let root = t.span_open_causal("client.request", trace, &[("req_id", 1u64.into())]);
    obs.set_time_micros(1_500);
    let propose = t.span_open_causal(
        "paxos.propose",
        root.context(),
        &[("slot", 4u64.into()), ("node", 0u64.into())],
    );
    obs.set_time_micros(1_600);
    let wait = t.span_open_causal("paxos.quorum_wait", propose.context(), &[]);
    t.event_causal(
        "simnet.drop",
        wait.context(),
        &[("from", 0u64.into()), ("to", 2u64.into())],
    );
    obs.set_time_micros(2_400);
    t.span_close(wait, "paxos.quorum_wait", &[("acks", 2u64.into())]);
    obs.set_time_micros(2_500);
    t.span_close(propose, "paxos.propose", &[]);
    obs.set_time_micros(2_900);
    t.span_close(root, "client.request", &[]);
    // An unclosed span (operation still in flight at export time).
    obs.set_time_micros(3_000);
    let _open = t.span_open_causal(
        "client.request",
        TraceContext {
            trace_id: 2,
            span_id: 0,
        },
        &[("req_id", 2u64.into())],
    );

    let json = chrome_trace_json(&t.events());
    serde_json::parse_value(&json).expect("chrome trace is valid JSON");
    check_golden("chrome_trace.json", &json);
}

// ---- Registry::merge ----------------------------------------------------

#[test]
fn merge_adds_counters_overwrites_gauges_and_merges_histograms() {
    let dst = Registry::new();
    dst.counter("c").add(10);
    dst.gauge("g").set(1.0);
    dst.histogram("h").record(8);

    let src = Registry::new();
    src.counter("c").add(5);
    src.counter("only_src").add(7);
    src.gauge("g").set(2.5);
    src.histogram("h").record(64);

    dst.merge(&src);
    let snap = dst.snapshot();
    assert_eq!(snap.counter("c"), Some(15));
    assert_eq!(snap.counter("only_src"), Some(7));
    assert_eq!(snap.gauges.iter().find(|(n, _)| n == "g").map(|(_, v)| *v), Some(2.5));
    let h = snap
        .histograms
        .iter()
        .find(|(n, _)| n == "h")
        .map(|(_, h)| *h)
        .expect("merged histogram");
    assert_eq!(h.count, 2);
    assert_eq!(h.sum, 72);
    assert_eq!(h.max, 64);

    // The source is read-only under merge.
    assert_eq!(src.snapshot().counter("c"), Some(5));
}

#[test]
fn merge_with_self_and_disabled_are_no_ops() {
    let r = Registry::new();
    r.counter("c").add(3);
    r.merge(&r.clone()); // same cells: must not double
    assert_eq!(r.snapshot().counter("c"), Some(3));

    r.merge(&Registry::disabled());
    assert_eq!(r.snapshot().counter("c"), Some(3));

    let off = Registry::disabled();
    off.merge(&r);
    assert!(off.snapshot().counters.is_empty());
}

#[test]
fn merge_prefixed_namespaces_the_source() {
    let combined = Registry::new();
    let jupiter = Registry::new();
    jupiter.counter("bids").add(4);
    let greedy = Registry::new();
    greedy.counter("bids").add(9);

    combined.merge_prefixed(&jupiter, "jupiter.");
    combined.merge_prefixed(&greedy, "greedy.");
    let snap = combined.snapshot();
    assert_eq!(snap.counter("jupiter.bids"), Some(4));
    assert_eq!(snap.counter("greedy.bids"), Some(9));
    assert_eq!(snap.counter("bids"), None);
}

// ---- downsampling envelope ----------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However hard a series is downsampled, the retained points keep
    /// the exact global min/max/first/last/sum/count of the raw stream,
    /// and the merged points stay in time order.
    #[test]
    fn downsampling_preserves_the_envelope(
        values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..300),
        capacity in 2usize..16,
    ) {
        let store = SeriesStore::with_capacity(capacity);
        let ts = store.series("s");
        for (i, &v) in values.iter().enumerate() {
            ts.record(i as u64, v);
        }
        let snap = &store.snapshot()[0];

        prop_assert!(snap.points.len() <= capacity.max(2));
        prop_assert_eq!(snap.total_count, values.len() as u64);
        let count: u64 = snap.points.iter().map(|p| p.count).sum();
        prop_assert_eq!(count, values.len() as u64);

        let raw_min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let raw_max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(snap.min(), Some(raw_min));
        prop_assert_eq!(snap.max(), Some(raw_max));
        prop_assert_eq!(snap.points.first().map(|p| p.first), values.first().copied());
        prop_assert_eq!(snap.last(), values.last().copied());

        let raw_sum: f64 = values.iter().sum();
        let kept_sum: f64 = snap.points.iter().map(|p| p.sum).sum();
        prop_assert!((raw_sum - kept_sum).abs() <= raw_sum.abs() * 1e-9 + 1e-6);

        // Points cover disjoint, ordered time ranges.
        for w in snap.points.windows(2) {
            prop_assert!(w[0].t_last < w[1].t_first);
        }
        for p in &snap.points {
            prop_assert!(p.t_first <= p.t_last);
            prop_assert!(p.min <= p.max);
        }
    }
}
