//! Multi-group deployments: the paper scales service *performance* by
//! "launching multiple Paxos groups" (§3.2) — each group is an
//! independent quorum over its own spot instances, while all groups trade
//! in the same market.
//!
//! Groups share zones (failure independence is required *within* a group,
//! not across groups), so out-of-bid events correlate across groups —
//! when a zone's price spikes, every group loses its instance there at
//! once. The fleet accounting surfaces both the per-group view and the
//! correlated aggregate ("all groups up"), which is the availability a
//! sharded service presents when every shard must answer.

use jupiter::{BiddingStrategy, ServiceSpec};
use obs::Obs;
use spot_market::{Market, Price, Termination};

use crate::lifecycle::{replay_strategy_observed, ReplayConfig};
use crate::results::ReplayResult;

/// The outcome of replaying `groups` identical service groups.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Per-group replays (all identical under a deterministic strategy —
    /// kept separate so heterogeneous strategies can be compared).
    pub groups: Vec<ReplayResult>,
    /// Fraction of evaluated minutes with *every* group at quorum.
    pub all_up_availability: f64,
    /// Total fleet cost.
    pub total_cost: Price,
}

/// Replay `groups` independent groups of `spec` under the same strategy
/// construction, in the same market.
///
/// `make_strategy(group_index)` builds each group's strategy; identical
/// strategies produce identical bid schedules (and therefore perfectly
/// correlated failures — the honest model for same-zone deployments).
pub fn fleet_replay<S, F>(
    market: &Market,
    spec: &ServiceSpec,
    groups: usize,
    config: ReplayConfig,
    make_strategy: F,
) -> FleetResult
where
    S: BiddingStrategy,
    F: FnMut(usize) -> S,
{
    fleet_replay_observed(market, spec, groups, config, make_strategy, &Obs::disabled())
}

/// [`fleet_replay`] with observability: each group's replay records into
/// the shared [`Obs`], and the fleet level adds a counter for instances
/// that died in the same minute they were granted (bids that only just
/// covered the request-time price).
pub fn fleet_replay_observed<S, F>(
    market: &Market,
    spec: &ServiceSpec,
    groups: usize,
    config: ReplayConfig,
    mut make_strategy: F,
    obs: &Obs,
) -> FleetResult
where
    S: BiddingStrategy,
    F: FnMut(usize) -> S,
{
    assert!(groups >= 1, "a fleet needs at least one group");
    let results: Vec<ReplayResult> = (0..groups)
        .map(|g| replay_strategy_observed(market, spec, make_strategy(g), config, obs))
        .collect();

    let zero_lifetime = results
        .iter()
        .flat_map(|r| &r.instances)
        .filter(|i| i.termination == Termination::Provider && i.ended_at <= i.granted_at)
        .count();
    obs.counter("fleet.granted_and_killed_same_minute")
        .add(zero_lifetime as u64);

    // Aggregate availability: with identical deterministic schedules the
    // groups' up/down timelines coincide, so "all up" equals the minimum
    // per-interval uptime; compute it interval-by-interval to stay exact
    // for heterogeneous strategies too.
    let window = results[0].window_minutes;
    let mut all_up = 0u64;
    let reference = &results[0];
    for (i, iv) in reference.intervals.iter().enumerate() {
        let per_group: Vec<u64> = results
            .iter()
            .map(|r| r.intervals.get(i).map(|x| x.up_minutes).unwrap_or(0))
            .collect();
        debug_assert_eq!(
            per_group.len(),
            groups,
            "every group contributes to interval {i}"
        );
        debug_assert!(
            results
                .iter()
                .all(|r| r.intervals.get(i).map(|x| x.start) == Some(iv.start)),
            "groups disagree on the start of interval {i}"
        );
        let up = per_group.into_iter().min().unwrap_or_else(|| {
            debug_assert!(false, "empty fleet at interval {i}");
            0
        });
        all_up += up;
    }
    let total_cost = results.iter().map(|r| r.total_cost).sum();
    FleetResult {
        all_up_availability: all_up as f64 / window.max(1) as f64,
        total_cost,
        groups: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jupiter::{ExtraStrategy, JupiterStrategy};
    use spot_market::{InstanceType, MarketConfig};

    fn market() -> Market {
        let mut cfg = MarketConfig::paper(19, 2 * 7 * 24 * 60);
        cfg.zones.truncate(8);
        cfg.types = vec![InstanceType::M1Small];
        Market::generate(cfg)
    }

    #[test]
    fn identical_groups_cost_linearly_and_correlate() {
        let m = market();
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 10 * 24 * 60, 6);
        let one = fleet_replay(&m, &spec, 1, config, |_| ExtraStrategy::new(0, 0.2));
        let three = fleet_replay(&m, &spec, 3, config, |_| ExtraStrategy::new(0, 0.2));
        // Deterministic strategies: every group identical.
        assert_eq!(three.total_cost, one.total_cost * 3);
        assert!((three.all_up_availability - one.all_up_availability).abs() < 1e-12);
        assert_eq!(three.groups.len(), 3);
    }

    #[test]
    fn mixed_fleet_is_limited_by_its_weakest_group() {
        let m = market();
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 10 * 24 * 60, 6);
        // Group 0 runs Jupiter; group 1 runs the flaky heuristic.
        let strategies: Vec<Box<dyn BiddingStrategy>> = vec![
            Box::new(JupiterStrategy::new()),
            Box::new(ExtraStrategy::new(0, 0.1)),
        ];
        let mut iter = strategies.into_iter();
        let fleet = fleet_replay(&m, &spec, 2, config, |_| iter.next().expect("two"));
        let weakest = fleet
            .groups
            .iter()
            .map(|g| g.availability())
            .fold(f64::INFINITY, f64::min);
        assert!(
            fleet.all_up_availability <= weakest + 1e-12,
            "all-up {} > weakest group {}",
            fleet.all_up_availability,
            weakest
        );
    }
}
