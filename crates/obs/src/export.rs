//! Standard-format exporters over the crate's snapshots: Prometheus
//! text exposition for the metrics registry, JSON-lines for events and
//! time-series samples, and collapsed-stack output (flamegraph /
//! speedscope compatible) for the tracer's spans.
//!
//! Everything here renders from *detached* snapshots, so exports can be
//! taken mid-run without holding instrument locks, and the same bytes
//! can be regenerated later from a stored [`MetricsSnapshot`] or
//! [`SeriesSnapshot`].

use std::collections::BTreeMap;

use crate::json;
use crate::metrics::MetricsSnapshot;
use crate::timeseries::{push_point_json, SeriesSnapshot};
use crate::trace::{event_to_json, Event, EventKind, FieldValue};
use crate::Obs;

/// Sanitize a dotted metric name into the Prometheus name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and
/// a leading digit gains a `_` prefix.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            '0'..='9' => {
                out.push('_');
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a string for use as a Prometheus label *value* (inside
/// double quotes): backslash, double quote, and newline get backslash
/// escapes, exactly as the text exposition format requires. Other
/// characters (including spaces and dots) pass through unchanged.
pub fn prometheus_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Whether sanitizing `name` loses more than the conventional dots:
/// spaces, quotes, slashes and other exotica all collapse to `_`, so
/// the exporter must carry the original spelling in a label for the
/// metric to stay identifiable.
fn name_needs_label(name: &str) -> bool {
    name.is_empty()
        || name
            .chars()
            .any(|c| !matches!(c, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | ':' | '.'))
}

/// The `{name="..."}` label block carrying a lossily-sanitized original
/// name, or an empty string when the sanitization is the conventional
/// dots-to-underscores mapping. `extra` is spliced in as an additional
/// label (e.g. `quantile="0.5"`).
fn prom_labels(name: &str, extra: Option<&str>) -> String {
    let name_label = name_needs_label(name)
        .then(|| format!("name=\"{}\"", prometheus_label_value(name)));
    match (name_label, extra) {
        (Some(n), Some(e)) => format!("{{{n},{e}}}"),
        (Some(n), None) => format!("{{{n}}}"),
        (None, Some(e)) => format!("{{{e}}}"),
        (None, None) => String::new(),
    }
}

/// Escape free text for a `# HELP` line: the exposition format gives
/// backslash escapes to `\` and newline only.
fn prometheus_help_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn push_prom_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else if v.is_nan() {
        out.push_str("NaN");
    } else if v > 0.0 {
        out.push_str("+Inf");
    } else {
        out.push_str("-Inf");
    }
}

/// Render a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4). Counters export as `counter`, gauges as `gauge`,
/// and histograms as `summary` (quantile upper bounds at power-of-two
/// resolution, plus exact `_sum`/`_count`, a `_max` gauge, and a
/// `{name}_est` gauge family carrying the linearly-interpolated
/// p50/p90/p99 estimates under `quantile` labels). Every family gets a
/// `# HELP` line carrying the original dotted metric name.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let pname = prometheus_name(name);
        let help = prometheus_help_text(name);
        let labels = prom_labels(name, None);
        out.push_str(&format!(
            "# HELP {pname} counter {help}\n\
             # TYPE {pname} counter\n{pname}{labels} {value}\n"
        ));
    }
    for (name, value) in &snap.gauges {
        let pname = prometheus_name(name);
        let help = prometheus_help_text(name);
        let labels = prom_labels(name, None);
        out.push_str(&format!(
            "# HELP {pname} gauge {help}\n\
             # TYPE {pname} gauge\n{pname}{labels} "
        ));
        push_prom_f64(&mut out, *value);
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        let pname = prometheus_name(name);
        let help = prometheus_help_text(name);
        out.push_str(&format!(
            "# HELP {pname} histogram {help} (quantiles are power-of-two bucket upper bounds)\n\
             # TYPE {pname} summary\n"
        ));
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            let labels = prom_labels(name, Some(&format!("quantile=\"{q}\"")));
            out.push_str(&format!("{pname}{labels} {v}\n"));
        }
        let labels = prom_labels(name, None);
        out.push_str(&format!(
            "{pname}_sum{labels} {}\n{pname}_count{labels} {}\n",
            h.sum, h.count
        ));
        out.push_str(&format!(
            "# HELP {pname}_max largest recorded sample of {help}\n\
             # TYPE {pname}_max gauge\n{pname}_max{labels} {}\n",
            h.max
        ));
        out.push_str(&format!(
            "# HELP {pname}_est interpolated quantile estimates of {help}\n\
             # TYPE {pname}_est gauge\n"
        ));
        for (q, v) in [("0.5", h.p50_est), ("0.9", h.p90_est), ("0.99", h.p99_est)] {
            let labels = prom_labels(name, Some(&format!("quantile=\"{q}\"")));
            out.push_str(&format!("{pname}_est{labels} "));
            push_prom_f64(&mut out, v);
            out.push('\n');
        }
    }
    out
}

/// Render time-series snapshots as JSON lines: one object per retained
/// point, tagged with the series name —
/// `{"series":"replay.availability","t_first":...,"count":1}`.
pub fn samples_jsonl(series: &[SeriesSnapshot]) -> String {
    let mut out = String::new();
    for s in series {
        for p in &s.points {
            out.push_str("{\"series\":");
            json::push_str_lit(&mut out, &s.name);
            // Splice the point fields into the same object.
            let mut point = String::new();
            push_point_json(&mut point, p);
            out.push(',');
            out.push_str(&point[1..]);
            out.push('\n');
        }
    }
    out
}

/// Dump an [`Obs`] handle as one self-describing JSON-lines stream:
/// `{"type":"counter"|"gauge"|"histogram"|"sample"|"event", ...}` — the
/// union of the registry snapshot, the series store, and the trace ring,
/// suitable for `jq`/pandas-style post-processing.
pub fn obs_jsonl(obs: &Obs) -> String {
    let mut out = String::new();
    let snap = obs.metrics.snapshot();
    for (name, v) in &snap.counters {
        out.push_str("{\"type\":\"counter\",\"name\":");
        json::push_str_lit(&mut out, name);
        out.push_str(&format!(",\"value\":{v}}}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str("{\"type\":\"gauge\",\"name\":");
        json::push_str_lit(&mut out, name);
        out.push_str(",\"value\":");
        json::push_f64(&mut out, *v);
        out.push_str("}\n");
    }
    for (name, h) in &snap.histograms {
        out.push_str("{\"type\":\"histogram\",\"name\":");
        json::push_str_lit(&mut out, name);
        out.push_str(&format!(
            ",\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}}\n",
            h.count, h.sum, h.p50, h.p95, h.p99, h.max
        ));
    }
    for s in &obs.series.snapshot() {
        for p in &s.points {
            out.push_str("{\"type\":\"sample\",\"series\":");
            json::push_str_lit(&mut out, &s.name);
            let mut point = String::new();
            push_point_json(&mut point, p);
            out.push(',');
            out.push_str(&point[1..]);
            out.push('\n');
        }
    }
    for event in obs.trace.events() {
        out.push_str("{\"type\":\"event\",");
        let body = event_to_json(&event);
        out.push_str(&body[1..]);
        out.push('\n');
    }
    out
}

struct Frame {
    name: String,
    id: u64,
    child_micros: u64,
}

/// Fold the tracer's span events into collapsed-stack lines
/// (`parent;child <self-time-micros>`), the input format of
/// `flamegraph.pl` and speedscope. Weights are **self** times, so the
/// flamegraph's inclusive widths reconstruct each span's full duration.
/// Instant events are ignored; unclosed spans contribute nothing.
///
/// Span nesting is reconstructed from event order (the tracer's ring is
/// append-ordered), which is exact for the single-threaded simulations
/// this workspace records; interleaved concurrent spans fold into
/// whichever stack is open at their end edge.
pub fn collapsed_stacks(events: &[Event]) -> String {
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    let mut open: Vec<Frame> = Vec::new();
    for event in events {
        match event.kind {
            EventKind::Instant => {}
            EventKind::SpanStart => open.push(Frame {
                name: event.name.clone(),
                id: event.span_id.unwrap_or(0),
                child_micros: 0,
            }),
            EventKind::SpanEnd => {
                let id = event.span_id.unwrap_or(0);
                let Some(pos) = open.iter().rposition(|f| f.id == id) else {
                    continue; // start edge fell off the ring
                };
                // Abandon any deeper frames that never closed.
                open.truncate(pos + 1);
                let frame = open.pop().expect("frame at pos");
                let duration = event
                    .fields
                    .iter()
                    .find(|(k, _)| k == "duration_micros")
                    .and_then(|(_, v)| match v {
                        FieldValue::U64(d) => Some(*d),
                        _ => None,
                    })
                    .unwrap_or(0);
                let mut path = String::new();
                for f in &open {
                    path.push_str(&f.name);
                    path.push(';');
                }
                path.push_str(&frame.name);
                *stacks.entry(path).or_insert(0) +=
                    duration.saturating_sub(frame.child_micros);
                if let Some(parent) = open.last_mut() {
                    parent.child_micros += duration;
                }
            }
        }
    }
    let mut out = String::new();
    for (path, micros) in stacks {
        out.push_str(&format!("{path} {micros}\n"));
    }
    out
}
