//! The simulation core: nodes, actors, contexts and the event loop.

use std::fmt;

use obs::{FieldValue, TraceContext, Tracer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::event::{EventKind, EventQueue};
use crate::network::{LinkChaos, Network, NetworkConfig};
use crate::time::SimTime;

/// Identifier of a simulated node (dense index into the simulation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An actor-chosen timer identifier, echoed back when the timer fires.
///
/// Actors that need to "cancel" a timer use generation counters inside the
/// token and ignore stale fires; the simulator itself only cancels timers on
/// crash (via incarnation epochs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// The behaviour of a node. All nodes in one [`Simulation`] share a single
/// actor type, which suits homogeneous replicated services.
pub trait Actor: Sized {
    /// The message type exchanged between nodes.
    type Msg;

    /// Called when the node starts (initial boot, restart, or join).
    fn on_start(&mut self, _ctx: &mut Context<Self::Msg>) {}

    /// Called when a message is delivered to this node.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Context<Self::Msg>);

    /// Called when a timer previously set through [`Context::set_timer`]
    /// fires. Timers set before a crash never fire after a restart.
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut Context<Self::Msg>) {}
}

enum Effect<M> {
    Send {
        to: NodeId,
        msg: M,
        trace: TraceContext,
    },
    Timer {
        delay: SimTime,
        token: TimerToken,
    },
}

/// Handed to actor callbacks; records outgoing effects and exposes the
/// node's identity, the current virtual time, and the causal trace
/// context of the message being handled.
pub struct Context<M> {
    /// Current virtual time.
    pub now: SimTime,
    /// The node this context belongs to.
    pub me: NodeId,
    effects: Vec<Effect<M>>,
    /// Trace context the incoming message carried ([`TraceContext::NONE`]
    /// for timers, boots and untraced messages).
    incoming: TraceContext,
    /// Seed-derived base for fresh trace ids (shared by every context of
    /// one simulation).
    trace_base: u64,
    /// Trace-id allocation counter, copied in from the simulation and
    /// written back at flush. Deterministic: it advances only through
    /// [`Context::new_trace`] calls, whose order is fixed by the event
    /// order, never by wall time, thread count, or whether tracing is on.
    trace_count: u64,
}

impl<M> Context<M> {
    fn new(
        now: SimTime,
        me: NodeId,
        incoming: TraceContext,
        trace_base: u64,
        trace_count: u64,
    ) -> Self {
        Context {
            now,
            me,
            effects: Vec::new(),
            incoming,
            trace_base,
            trace_count,
        }
    }

    /// The causal trace context carried by the message this callback is
    /// handling — [`TraceContext::NONE`] for timers and boots. Spans the
    /// actor opens while handling the message should be parented here.
    pub fn trace(&self) -> TraceContext {
        self.incoming
    }

    /// Allocate a fresh trace id for a new root operation (e.g. a client
    /// request entering the system). Ids come from a seeded splitmix
    /// counter, so a run's ids are a pure function of (seed, schedule).
    pub fn new_trace(&mut self) -> TraceContext {
        self.trace_count += 1;
        let id = mix(self.trace_base, self.trace_count);
        TraceContext {
            trace_id: if id == 0 { 1 } else { id },
            span_id: 0,
        }
    }

    /// Send `msg` to `to`; delivery (or loss) is decided by the network.
    /// The incoming trace context is propagated onto the envelope, so a
    /// plain `send` inside a message handler continues that message's
    /// causal chain.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let trace = self.incoming;
        self.send_traced(to, msg, trace);
    }

    /// Send `msg` to `to` under an explicit trace context — a fresh one
    /// from [`Context::new_trace`], or a span's
    /// [`context`](obs::SpanHandle::context) so the receiver parents
    /// under that span rather than under the whole incoming operation.
    pub fn send_traced(&mut self, to: NodeId, msg: M, trace: TraceContext) {
        self.effects.push(Effect::Send { to, msg, trace });
    }

    /// Schedule `on_timer(token)` after `delay` (crash-cancelled).
    pub fn set_timer(&mut self, delay: SimTime, token: TimerToken) {
        self.effects.push(Effect::Timer { delay, token });
    }
}

impl<M: Clone> Context<M> {
    /// Send `msg` to every node in `peers` except self.
    pub fn broadcast<'a, I>(&mut self, peers: I, msg: M)
    where
        I: IntoIterator<Item = &'a NodeId>,
    {
        let me = self.me;
        for &p in peers {
            if p != me {
                self.send(p, msg.clone());
            }
        }
    }
}

struct Slot<A> {
    actor: Option<A>,
    up: bool,
    /// The actor as it was at crash time — the node's "disk image". Quorum
    /// protocols are only safe across restarts if durable state survives,
    /// so a crashed actor is retained here for [`Simulation::take_crashed`]
    /// rather than discarded.
    wreck: Option<A>,
    /// Incarnation epoch; bumped on crash so in-flight timers and messages
    /// addressed to the previous incarnation are discarded.
    epoch: u64,
    /// Clock skew: added to the virtual time this node's actor observes
    /// via [`Context::now`]. Event scheduling itself is unskewed.
    skew: SimTime,
}

/// A deterministic discrete-event simulation of a set of nodes running the
/// same [`Actor`] over a lossy network.
pub struct Simulation<A: Actor> {
    nodes: Vec<Slot<A>>,
    queue: EventQueue<A::Msg>,
    network: Network,
    rng: ChaCha8Rng,
    now: SimTime,
    delivered: u64,
    dropped: u64,
    fingerprint: u64,
    /// Sink for network-visibility trace events (drops, duplicates,
    /// delay spikes, dead targets); disabled by default, so emitting is
    /// a `None` check. Never feeds the fingerprint.
    tracer: Tracer,
    /// Seed-derived base for trace-id allocation; see
    /// [`Context::new_trace`].
    trace_base: u64,
    /// Count of trace ids allocated so far.
    trace_count: u64,
}

impl<A: Actor> Simulation<A>
where
    A::Msg: Clone,
{
    /// Create an empty simulation with the given network model and RNG seed.
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        Simulation {
            nodes: Vec::new(),
            queue: EventQueue::new(),
            network: Network::new(config),
            rng: ChaCha8Rng::seed_from_u64(seed),
            now: SimTime::ZERO,
            delivered: 0,
            dropped: 0,
            fingerprint: 0,
            tracer: Tracer::disabled(),
            trace_base: mix(0xCA05_A11D, seed),
            trace_count: 0,
        }
    }

    /// Install a tracer sink for network-visibility events: message
    /// drops (base loss, partitions, chaos), duplicates, delay spikes
    /// and deliveries to dead or nonexistent nodes each emit an instant
    /// event carrying the message's trace context, so a trace whose
    /// span chain goes quiet points at the exact network fault that
    /// orphaned it. Tracing never perturbs the RNG stream or the run
    /// fingerprint; with the sink disabled (the default) every emission
    /// is a single `None` check.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Total messages dropped (loss or partition or dead target) so far.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped
    }

    /// Rolling digest of every event this run has processed: event time,
    /// target, kind, and drop/stale disposition all feed it. Two runs with
    /// the same seed, schedule and workload produce the same fingerprint,
    /// so chaos tests assert byte-identical reproduction with one `u64`
    /// comparison instead of diffing whole traces.
    pub fn fingerprint(&self) -> u64 {
        // Fold in the counters so runs that diverge only in pre-delivery
        // drops still differ.
        let fp = mix(self.fingerprint, self.delivered);
        mix(fp, self.dropped)
    }

    /// Add a new node running `actor`; it boots immediately (`on_start`).
    pub fn add_node(&mut self, actor: A) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Slot {
            actor: Some(actor),
            up: true,
            wreck: None,
            epoch: 0,
            skew: SimTime::ZERO,
        });
        self.boot(id);
        id
    }

    /// Number of node slots ever created (crashed ones included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.nodes.get(id.0).map(|s| s.up).unwrap_or(false)
    }

    /// Immutable access to a node's actor state (None while crashed).
    pub fn actor(&self, id: NodeId) -> Option<&A> {
        self.nodes.get(id.0).and_then(|s| s.actor.as_ref())
    }

    /// Mutable access to a node's actor state (None while crashed).
    ///
    /// Intended for drivers that inspect or tweak state between `run_until`
    /// calls; effects cannot be emitted from here.
    pub fn actor_mut(&mut self, id: NodeId) -> Option<&mut A> {
        self.nodes.get_mut(id.0).and_then(|s| s.actor.as_mut())
    }

    /// Crash a node: its state is destroyed, pending timers are cancelled
    /// and in-flight messages to it will be dropped on arrival.
    pub fn crash(&mut self, id: NodeId) {
        if let Some(slot) = self.nodes.get_mut(id.0) {
            slot.up = false;
            slot.wreck = slot.actor.take();
            slot.epoch += 1;
        }
    }

    /// Take the retained actor of a crashed node — its state at crash
    /// time, the "disk" a rebooting node recovers from. Returns `None` if
    /// the node is up or the wreck was already consumed. The caller is
    /// expected to clear actor-specific volatile state before handing the
    /// actor back to [`Simulation::restart`].
    pub fn take_crashed(&mut self, id: NodeId) -> Option<A> {
        self.nodes.get_mut(id.0).and_then(|s| s.wreck.take())
    }

    /// Restart a crashed node with a fresh actor (recovered state is the
    /// actor's own business: rebuilt from its replicated log peers, or
    /// carried over via [`Simulation::take_crashed`]). Any unconsumed
    /// wreck is discarded — the disk was replaced along with the actor.
    pub fn restart(&mut self, id: NodeId, actor: A) {
        let slot = &mut self.nodes[id.0];
        assert!(!slot.up, "restart of a live node {id}");
        slot.actor = Some(actor);
        slot.wreck = None;
        slot.up = true;
        self.boot(id);
    }

    /// Install a network partition (each group an island); see
    /// [`NetworkConfig`] for the connectivity rules.
    pub fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        self.network.partition(groups);
    }

    /// Heal any partition.
    pub fn heal(&mut self) {
        self.network.heal();
    }

    /// Enable link-level chaos (extra drops, duplicates, delay spikes) for
    /// subsequent sends. Chaos-off runs consume the identical RNG stream
    /// they always did, so this is free to leave uninstalled.
    pub fn set_link_chaos(&mut self, chaos: LinkChaos) {
        self.network.set_chaos(chaos);
    }

    /// Disable link-level chaos.
    pub fn clear_link_chaos(&mut self) {
        self.network.clear_chaos();
    }

    /// Skew a node's actor-visible clock forward by `ms` (cumulative).
    /// Only [`Context::now`] is affected; event scheduling stays on the
    /// global virtual clock, so skew perturbs lease/timeout *decisions*
    /// without breaking the discrete-event core.
    pub fn skew_clock(&mut self, id: NodeId, ms: u64) {
        if let Some(slot) = self.nodes.get_mut(id.0) {
            slot.skew += SimTime::from_millis(ms);
        }
    }

    /// A node's current clock skew.
    pub fn clock_skew(&self, id: NodeId) -> SimTime {
        self.nodes.get(id.0).map(|s| s.skew).unwrap_or(SimTime::ZERO)
    }

    /// Inject a message "from outside" (e.g. a client library): it is
    /// delivered to `to` as if sent by `from` after one network delay.
    pub fn inject(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        self.enqueue_send(from, to, msg, TraceContext::NONE);
    }

    /// [`Simulation::inject`] under an explicit trace context, for
    /// drivers that open a root span around an injected request.
    pub fn inject_traced(&mut self, from: NodeId, to: NodeId, msg: A::Msg, trace: TraceContext) {
        self.enqueue_send(from, to, msg, trace);
    }

    fn boot(&mut self, id: NodeId) {
        let now = self.now;
        let slot = &mut self.nodes[id.0];
        let mut ctx = Context::new(
            now + slot.skew,
            id,
            TraceContext::NONE,
            self.trace_base,
            self.trace_count,
        );
        slot.actor
            .as_mut()
            .expect("boot of crashed node")
            .on_start(&mut ctx);
        let epoch = slot.epoch;
        self.flush(id, epoch, ctx);
    }

    /// Emit a network-visibility instant through the tracer sink.
    fn net_event(&self, name: &str, from: NodeId, to: NodeId, trace: TraceContext) {
        self.tracer.event_causal(
            name,
            trace,
            &[
                ("from", FieldValue::U64(from.0 as u64)),
                ("to", FieldValue::U64(to.0 as u64)),
            ],
        );
    }

    /// Sample the network for one send and enqueue the resulting
    /// deliveries; every lost, duplicated or spiked delivery emits a
    /// visibility event so traces stay attributable under chaos.
    fn enqueue_send(&mut self, from: NodeId, to: NodeId, msg: A::Msg, trace: TraceContext) {
        if to.0 >= self.nodes.len() {
            self.dropped += 1;
            self.net_event("simnet.dead_target", from, to, trace);
            return;
        }
        let d = self.network.sample_deliveries(from, to, &mut self.rng);
        let Some(delay) = d.first else {
            self.dropped += 1;
            self.tracer.event_causal(
                "simnet.drop",
                trace,
                &[
                    ("from", FieldValue::U64(from.0 as u64)),
                    ("to", FieldValue::U64(to.0 as u64)),
                    ("chaos", FieldValue::Bool(d.chaos_dropped)),
                ],
            );
            return;
        };
        if d.delayed {
            self.net_event("simnet.delay", from, to, trace);
        }
        if let Some(dup) = d.second {
            self.net_event("simnet.dup", from, to, trace);
            self.queue.push(
                self.now + dup,
                to,
                EventKind::Deliver {
                    from,
                    msg: msg.clone(),
                    trace,
                },
            );
        }
        self.queue
            .push(self.now + delay, to, EventKind::Deliver { from, msg, trace });
    }

    fn flush(&mut self, from: NodeId, epoch: u64, ctx: Context<A::Msg>) {
        self.trace_count = ctx.trace_count;
        for effect in ctx.effects {
            match effect {
                Effect::Send { to, msg, trace } => self.enqueue_send(from, to, msg, trace),
                Effect::Timer { delay, token } => {
                    self.queue
                        .push(self.now + delay, from, EventKind::Timer { token, epoch });
                }
            }
        }
    }

    /// Process a single event if one is pending before `bound`; returns
    /// whether an event was processed. Time advances to the event time.
    pub fn step_before(&mut self, bound: SimTime) -> bool {
        let Some(at) = self.queue.peek_time() else {
            return false;
        };
        if at > bound {
            return false;
        }
        let ev = self.queue.pop().expect("peeked event vanished");
        debug_assert!(ev.at >= self.now, "time went backwards");
        self.now = ev.at;
        let id = ev.target;
        // Digest the event before dispatching: time, target, kind, and the
        // disposition (delivered / dead target / stale timer) all land in
        // the fingerprint, so any divergence between two runs shows up.
        let fp = mix(self.fingerprint, ev.at.as_millis());
        let fp = mix(fp, id.0 as u64);
        self.fingerprint = match &ev.kind {
            EventKind::Deliver { from, .. } => mix(fp, 1 ^ ((from.0 as u64) << 8)),
            EventKind::Timer { token, epoch } => mix(fp, 2 ^ (token.0 << 8) ^ (epoch << 40)),
        };
        if !self.nodes[id.0].up {
            self.dropped += 1;
            self.fingerprint = mix(self.fingerprint, 3);
            if let EventKind::Deliver { from, trace, .. } = &ev.kind {
                self.net_event("simnet.drop_dead_node", *from, id, *trace);
            }
            return true;
        }
        let slot = &mut self.nodes[id.0];
        let epoch = slot.epoch;
        let skew = slot.skew;
        let incoming = match &ev.kind {
            EventKind::Deliver { trace, .. } => *trace,
            EventKind::Timer { .. } => TraceContext::NONE,
        };
        let mut ctx = Context::new(
            self.now + skew,
            id,
            incoming,
            self.trace_base,
            self.trace_count,
        );
        match ev.kind {
            EventKind::Deliver { from, msg, .. } => {
                self.delivered += 1;
                slot.actor
                    .as_mut()
                    .expect("up node without actor")
                    .on_message(from, msg, &mut ctx);
            }
            EventKind::Timer {
                token,
                epoch: timer_epoch,
            } => {
                if timer_epoch != epoch {
                    self.fingerprint = mix(self.fingerprint, 4);
                    return true; // timer from a previous incarnation
                }
                slot.actor
                    .as_mut()
                    .expect("up node without actor")
                    .on_timer(token, &mut ctx);
            }
        }
        self.flush(id, epoch, ctx);
        true
    }

    /// Run the event loop until virtual time `bound` (inclusive): every
    /// event scheduled at or before `bound` is processed, then the clock is
    /// advanced to `bound`.
    pub fn run_until(&mut self, bound: SimTime) {
        while self.step_before(bound) {}
        if bound > self.now && bound != SimTime::MAX {
            self.now = bound;
        }
    }

    /// Run until the event queue drains completely (use with care: actors
    /// with recurring heartbeat timers never drain).
    pub fn run_to_quiescence(&mut self) {
        while self.step_before(SimTime::MAX) {}
    }
}

/// SplitMix64-style avalanche step for the run fingerprint.
fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong actor: replies to every `n` with `n+1` until 10.
    struct PingPong {
        peer: Option<NodeId>,
        seen: Vec<u32>,
    }

    impl Actor for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if let Some(peer) = self.peer {
                ctx.send(peer, 0);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.seen.push(msg);
            if msg < 10 {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn pair() -> (Simulation<PingPong>, NodeId, NodeId) {
        let mut sim = Simulation::new(NetworkConfig::ideal(), 42);
        let a = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        let b = sim.add_node(PingPong {
            peer: Some(a),
            seen: vec![],
        });
        (sim, a, b)
    }

    #[test]
    fn ping_pong_runs_to_completion() {
        let (mut sim, a, b) = pair();
        sim.run_to_quiescence();
        assert_eq!(sim.actor(a).unwrap().seen, vec![0, 2, 4, 6, 8, 10]);
        assert_eq!(sim.actor(b).unwrap().seen, vec![1, 3, 5, 7, 9]);
        assert_eq!(sim.messages_delivered(), 11);
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let (mut s1, _, _) = pair();
        let (mut s2, _, _) = pair();
        s1.run_to_quiescence();
        s2.run_to_quiescence();
        assert_eq!(s1.now(), s2.now());
        assert_eq!(s1.messages_delivered(), s2.messages_delivered());
    }

    #[test]
    fn crash_drops_messages_and_cancels_timers() {
        struct Beater {
            beats: u32,
        }
        impl Actor for Beater {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.set_timer(SimTime::from_millis(10), TimerToken(1));
            }
            fn on_timer(&mut self, _t: TimerToken, ctx: &mut Context<()>) {
                self.beats += 1;
                ctx.set_timer(SimTime::from_millis(10), TimerToken(1));
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<()>) {}
        }
        let mut sim = Simulation::new(NetworkConfig::ideal(), 1);
        let n = sim.add_node(Beater { beats: 0 });
        sim.run_until(SimTime::from_millis(55));
        assert_eq!(sim.actor(n).unwrap().beats, 5);
        sim.crash(n);
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.actor(n).is_none());
        // Restart: beats start over, stale timers never fire.
        sim.restart(n, Beater { beats: 0 });
        sim.run_until(SimTime::from_millis(231));
        assert_eq!(sim.actor(n).unwrap().beats, 3);
    }

    #[test]
    fn crash_retains_state_for_recovery() {
        let (mut sim, _a, b) = pair();
        sim.run_to_quiescence();
        sim.crash(b);
        // The crashed actor's state at crash time is recoverable — the
        // node's disk image — and survives exactly one take.
        let wreck = sim.take_crashed(b).expect("wreck retained");
        assert_eq!(wreck.seen, vec![1, 3, 5, 7, 9]);
        assert!(sim.take_crashed(b).is_none(), "wreck is consumed");
        sim.restart(b, wreck);
        assert_eq!(sim.actor(b).unwrap().seen, vec![1, 3, 5, 7, 9]);

        // A restart with a fresh actor discards any unconsumed wreck.
        sim.crash(b);
        sim.restart(
            b,
            PingPong {
                peer: None,
                seen: vec![],
            },
        );
        assert!(sim.take_crashed(b).is_none());
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim: Simulation<PingPong> = Simulation::new(NetworkConfig::ideal(), 0);
        sim.run_until(SimTime::from_secs(5));
        assert_eq!(sim.now(), SimTime::from_secs(5));
    }

    #[test]
    fn inject_reaches_target() {
        let (mut sim, a, _) = pair();
        sim.run_to_quiescence();
        let before = sim.actor(a).unwrap().seen.len();
        sim.inject(NodeId(1), a, 99);
        sim.run_to_quiescence();
        assert_eq!(sim.actor(a).unwrap().seen.len(), before + 1);
    }

    #[test]
    fn partitioned_nodes_cannot_talk() {
        let (mut sim, a, b) = pair();
        sim.run_to_quiescence();
        let seen_before = sim.actor(a).unwrap().seen.len();
        sim.partition(vec![vec![a], vec![b]]);
        sim.inject(b, a, 99);
        sim.run_to_quiescence();
        // The injected message is dropped by the partition.
        assert_eq!(sim.actor(a).unwrap().seen.len(), seen_before);
        assert_eq!(sim.messages_dropped(), 1);
        // Healing restores connectivity.
        sim.heal();
        sim.inject(b, a, 99);
        sim.run_to_quiescence();
        assert_eq!(sim.actor(a).unwrap().seen.len(), seen_before + 1);
    }

    #[test]
    fn fingerprints_match_for_identical_runs_and_differ_otherwise() {
        let (mut s1, _, _) = pair();
        let (mut s2, _, _) = pair();
        s1.run_to_quiescence();
        s2.run_to_quiescence();
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        // Perturb one run: extra injected message changes the digest.
        let (mut s3, a, b) = pair();
        s3.run_to_quiescence();
        s3.inject(b, a, 99);
        s3.run_to_quiescence();
        assert_ne!(s1.fingerprint(), s3.fingerprint());
    }

    #[test]
    fn link_chaos_duplicates_messages() {
        let mut sim = Simulation::new(NetworkConfig::ideal(), 8);
        let a = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        sim.set_link_chaos(LinkChaos {
            dup_pr: 1.0,
            extra_delay_max: SimTime::from_millis(50),
            ..LinkChaos::default()
        });
        sim.inject(NodeId(0), a, 42);
        // inject() is attributed to `a` itself here (loopback) — use a
        // distinct phantom sender so chaos applies.
        let b = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        sim.inject(b, a, 77);
        sim.run_to_quiescence();
        let seen = &sim.actor(a).unwrap().seen;
        // 42 loopback-injected once; 77 delivered twice (duplicate).
        assert_eq!(seen.iter().filter(|&&m| m == 77).count(), 2);
        sim.clear_link_chaos();
        sim.inject(b, a, 5);
        sim.run_to_quiescence();
        assert_eq!(
            sim.actor(a).unwrap().seen.iter().filter(|&&m| m == 5).count(),
            1
        );
    }

    /// Actor for trace tests: the starter allocates a fresh trace and
    /// sends under it; receivers record the context they observe and
    /// reply with a *plain* send, which must propagate the trace.
    struct Tracey {
        peer: Option<NodeId>,
        started: Option<TraceContext>,
        seen: Vec<TraceContext>,
    }

    impl Actor for Tracey {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Context<u32>) {
            if let Some(peer) = self.peer {
                let t = ctx.new_trace();
                self.started = Some(t);
                ctx.send_traced(peer, 0, t);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: u32, ctx: &mut Context<u32>) {
            self.seen.push(ctx.trace());
            if msg < 3 {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn tracey_run(seed: u64) -> (TraceContext, Vec<TraceContext>) {
        let mut sim = Simulation::new(NetworkConfig::ideal(), seed);
        let a = sim.add_node(Tracey {
            peer: None,
            started: None,
            seen: vec![],
        });
        let b = sim.add_node(Tracey {
            peer: Some(a),
            started: None,
            seen: vec![],
        });
        sim.run_to_quiescence();
        let root = sim.actor(b).unwrap().started.expect("starter allocated");
        let mut seen = sim.actor(a).unwrap().seen.clone();
        seen.extend(sim.actor(b).unwrap().seen.iter().copied());
        (root, seen)
    }

    #[test]
    fn traces_propagate_across_hops_and_allocate_deterministically() {
        let (root, seen) = tracey_run(7);
        assert!(root.is_some());
        assert_eq!(seen.len(), 4, "four deliveries in the chain");
        for t in &seen {
            assert_eq!(t.trace_id, root.trace_id, "plain send propagates");
        }
        // Same seed, same schedule: byte-identical trace ids.
        let (root2, seen2) = tracey_run(7);
        assert_eq!(root, root2);
        assert_eq!(seen, seen2);
        // A different seed draws from a different id space.
        let (root3, _) = tracey_run(8);
        assert_ne!(root.trace_id, root3.trace_id);
    }

    #[test]
    fn trace_allocation_never_perturbs_the_fingerprint() {
        // Tracey allocates trace ids; PingPong never does. Within each
        // actor type, a traced run and a re-run fingerprint-match, and
        // installing a tracer sink changes nothing.
        let (mut s1, _, _) = pair();
        s1.run_to_quiescence();
        let (mut s2, _, _) = pair();
        let (obs, _clock) = obs::Obs::simulated();
        s2.set_tracer(obs.trace.clone());
        s2.run_to_quiescence();
        assert_eq!(s1.fingerprint(), s2.fingerprint());
    }

    #[test]
    fn chaos_faults_emit_visibility_events() {
        let (obs, _clock) = obs::Obs::simulated();
        let mut sim = Simulation::new(NetworkConfig::ideal(), 9);
        let a = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        let b = sim.add_node(PingPong {
            peer: None,
            seen: vec![],
        });
        sim.set_tracer(obs.trace.clone());
        sim.set_link_chaos(LinkChaos {
            drop_pr: 1.0,
            ..LinkChaos::default()
        });
        sim.inject_traced(
            b,
            a,
            7,
            TraceContext {
                trace_id: 42,
                span_id: 0,
            },
        );
        sim.run_to_quiescence();

        // A chaos-dropped traced message leaves an attributable instant.
        let drops: Vec<_> = obs
            .trace
            .events()
            .into_iter()
            .filter(|e| e.name == "simnet.drop")
            .collect();
        assert_eq!(drops.len(), 1);
        assert_eq!(drops[0].trace_id, 42);
        assert!(drops[0]
            .fields
            .iter()
            .any(|(k, v)| k == "chaos" && *v == FieldValue::Bool(true)));

        // Delivery to a crashed node is visible too.
        sim.clear_link_chaos();
        sim.crash(a);
        sim.inject_traced(
            b,
            a,
            8,
            TraceContext {
                trace_id: 43,
                span_id: 0,
            },
        );
        sim.run_to_quiescence();
        let dead: Vec<_> = obs
            .trace
            .events()
            .into_iter()
            .filter(|e| e.name == "simnet.drop_dead_node")
            .collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].trace_id, 43);
    }

    #[test]
    fn clock_skew_shifts_actor_visible_time_only() {
        struct Clock {
            seen_now: Vec<SimTime>,
        }
        impl Actor for Clock {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Context<()>) {
                ctx.set_timer(SimTime::from_millis(10), TimerToken(0));
            }
            fn on_timer(&mut self, _t: TimerToken, ctx: &mut Context<()>) {
                self.seen_now.push(ctx.now);
            }
            fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Context<()>) {}
        }
        let mut sim = Simulation::new(NetworkConfig::ideal(), 0);
        let n = sim.add_node(Clock { seen_now: vec![] });
        sim.skew_clock(n, 500);
        assert_eq!(sim.clock_skew(n), SimTime::from_millis(500));
        sim.run_until(SimTime::from_millis(20));
        // Timer fired at global t=10ms but the actor saw t=510ms.
        assert_eq!(sim.actor(n).unwrap().seen_now, vec![SimTime::from_millis(510)]);
        assert_eq!(sim.now(), SimTime::from_millis(20));
        // Skew accumulates.
        sim.skew_clock(n, 100);
        assert_eq!(sim.clock_skew(n), SimTime::from_millis(600));
    }
}
