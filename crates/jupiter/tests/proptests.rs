//! Property tests of the bidding algorithm on randomized two-level
//! markets: every emitted decision satisfies the NLP's constraints.

use jupiter::{BiddingStrategy, ExtraStrategy, JupiterStrategy, ServiceSpec, ZoneState};
use proptest::prelude::*;
use spot_market::{InstanceType, Price, PricePoint, PriceTrace};
use spot_model::{FailureModel, FailureModelConfig};

/// A two-level alternating trace: `low` for `stay` minutes, `high` for
/// `burst` minutes, repeated.
fn two_level(low: u64, high: u64, stay: u64, burst: u64) -> PriceTrace {
    let mut points = Vec::new();
    let mut t = 0;
    for _ in 0..120 {
        points.push(PricePoint {
            minute: t,
            price: Price::from_micros(low * 100),
        });
        t += stay;
        points.push(PricePoint {
            minute: t,
            price: Price::from_micros(high * 100),
        });
        t += burst;
    }
    PriceTrace::new(points, t)
}

#[derive(Debug, Clone)]
struct ZoneSpec {
    low: u64,
    high_delta: u64,
    stay: u64,
    burst: u64,
}

fn zone_spec() -> impl Strategy<Value = ZoneSpec> {
    (40u64..120, 10u64..120, 5u64..90, 1u64..20).prop_map(|(low, high_delta, stay, burst)| {
        ZoneSpec {
            low,
            high_delta,
            stay,
            burst,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jupiter_decisions_satisfy_constraints(
        specs in proptest::collection::vec(zone_spec(), 6..10),
        horizon in 60u32..480,
    ) {
        let zones_all = spot_market::topology::all_zones();
        let models: Vec<FailureModel> = specs
            .iter()
            .map(|z| {
                FailureModel::from_trace(
                    &two_level(z.low, z.low + z.high_delta, z.stay, z.burst),
                    FailureModelConfig::default(),
                )
            })
            .collect();
        let od = Price::from_dollars(0.044);
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zones_all[i],
                instance_type: InstanceType::M1Small,
                spot_price: Price::from_micros(specs[i].low * 100),
                sojourn_age: 1,
                on_demand: od,
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();
        let d = JupiterStrategy::new().decide(&states, &spec, horizon);
        if d.n() == 0 {
            return Ok(()); // infeasible markets are allowed to refuse
        }
        // Group size supports the quorum rule.
        prop_assert!(d.n() >= spec.quorum.min_nodes());
        let target = spec.node_fp_target(d.n()).expect("target for chosen n");
        for pb in &d.bids {
            let zs = states.iter().find(|s| s.zone == pb.zone).expect("zone known");
            // Constraint 9: the instance actually starts.
            prop_assert!(pb.bid >= zs.spot_price);
            // §4.2 cap: strictly below on-demand.
            prop_assert!(pb.bid < od);
            // The model agrees the per-node target is met.
            let fp = zs.model.estimate_fp(pb.bid, zs.spot_price, zs.sojourn_age, horizon);
            prop_assert!(fp <= target + 1e-9, "fp {fp} > target {target}");
        }
        // No duplicate pools (failure independence).
        let mut seen: Vec<_> = d.bids.iter().map(|b| (b.zone, b.instance_type)).collect();
        seen.sort();
        seen.dedup();
        prop_assert_eq!(seen.len(), d.n());
    }

    #[test]
    fn extra_strategy_counts_and_caps(
        specs in proptest::collection::vec(zone_spec(), 5..12),
        extra in 0usize..3,
        portion in 0.0f64..0.5,
    ) {
        let zones_all = spot_market::topology::all_zones();
        let models: Vec<FailureModel> = specs
            .iter()
            .map(|z| {
                FailureModel::from_trace(
                    &two_level(z.low, z.low + z.high_delta, z.stay, z.burst),
                    FailureModelConfig::default(),
                )
            })
            .collect();
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zones_all[i],
                instance_type: InstanceType::M1Small,
                spot_price: Price::from_micros(specs[i].low * 100),
                sojourn_age: 0,
                on_demand: Price::from_dollars(0.044),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();
        let d = ExtraStrategy::new(extra, portion).decide(&states, &spec, 60);
        prop_assert_eq!(d.n(), (spec.baseline_nodes + extra).min(states.len()));
        for pb in &d.bids {
            let zs = states.iter().find(|s| s.zone == pb.zone).expect("zone");
            prop_assert_eq!(pb.bid, zs.spot_price.scale(1.0 + portion));
        }
        // The chosen zones are exactly the cheapest ones.
        let mut prices: Vec<Price> = states.iter().map(|s| s.spot_price).collect();
        prices.sort();
        let cutoff = prices[d.n() - 1];
        for pb in &d.bids {
            let zs = states.iter().find(|s| s.zone == pb.zone).expect("zone");
            prop_assert!(zs.spot_price <= cutoff);
        }
    }
}
