//! Chubby-style lease semantics on the replicated lock service: a client
//! holds a leased lock, renews it for a while, then disappears — and the
//! lease lapses deterministically across the whole replica group, even
//! across a leader failover.
//!
//! ```text
//! cargo run --release --example leases
//! ```

use spot_jupiter::paxos::{
    ClientOp, Cluster, LockCmd, LockResp, LockService, PaxosNode, ReplicaConfig,
};
use spot_jupiter::simnet::{NetworkConfig, SimTime};

fn main() {
    let mut c: Cluster<LockService> = Cluster::new(
        5,
        LockService::new(),
        ReplicaConfig::default(),
        NetworkConfig::default(),
        2025,
    );
    let alice = c.add_client();
    let bob = c.add_client();

    let submit_and_wait = |c: &mut Cluster<LockService>, who, op: LockCmd| -> Option<LockResp> {
        c.submit(who, ClientOp::App(op));
        assert!(c.run_until_drained(who, c.sim.now() + SimTime::from_secs(60)));
        c.sim
            .actor(who)
            .and_then(PaxosNode::as_client)
            .and_then(|cl| cl.history().last())
            .and_then(|h| h.completed.clone())
            .and_then(|(_, r)| r)
    };

    // Alice takes a 20-second lease on the master lock.
    let now = c.sim.now().as_millis();
    let r = submit_and_wait(
        &mut c,
        alice,
        LockCmd::AcquireLease {
            name: "master".into(),
            owner: alice,
            now_ms: now,
            ttl_ms: 20_000,
        },
    );
    println!("alice acquires 20 s lease: {r:?}");

    // Bob is refused while the lease is live.
    let now = c.sim.now().as_millis();
    let r = submit_and_wait(
        &mut c,
        bob,
        LockCmd::AcquireLease {
            name: "master".into(),
            owner: bob,
            now_ms: now,
            ttl_ms: 20_000,
        },
    );
    println!("bob during alice's lease:  {r:?}");

    // Alice renews once…
    let now = c.sim.now().as_millis();
    let r = submit_and_wait(
        &mut c,
        alice,
        LockCmd::Renew {
            name: "master".into(),
            owner: alice,
            now_ms: now,
        },
    );
    println!("alice renews:              {r:?}");

    // …then the leader crashes and Alice goes silent past her TTL.
    let leader = c.leader().expect("leader");
    println!("\nleader {leader} crashes; alice stops renewing…");
    c.crash(leader);
    c.sim.run_until(c.sim.now() + SimTime::from_secs(30));

    // Bob now wins: the lease lapsed inside the replicated state machine,
    // no matter which replica leads now.
    let now = c.sim.now().as_millis();
    let r = submit_and_wait(
        &mut c,
        bob,
        LockCmd::AcquireLease {
            name: "master".into(),
            owner: bob,
            now_ms: now,
            ttl_ms: 20_000,
        },
    );
    println!("bob after lease expiry:    {r:?}");
    assert_eq!(r, Some(LockResp::Granted));
    c.assert_log_agreement();
    println!("\nall surviving replicas agree on the full lock history.");
}
