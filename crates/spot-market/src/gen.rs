//! Synthetic spot-price trace generation.
//!
//! AWS removed spot bidding in 2017 and the 2014 price archives the paper
//! replays are not redistributable, so this module substitutes a calibrated
//! generator. It produces exactly the statistical structure the paper's
//! model assumes and the literature it cites reports:
//!
//! * the price sequence is **Markovian** over a discrete ladder of price
//!   levels (Chohan et al.; Song et al.), with mild mean reversion toward a
//!   base level around 15–20 % of the on-demand price (Fig. 1 shows
//!   $0.0071–$0.0117 against a $0.044 on-demand price);
//! * **sojourn times are not memoryless**: they are drawn from a two-part
//!   mixture of short (minutes) and long (hours) stays, so the process is
//!   semi-Markov, exactly what the paper's estimator must capture;
//! * prices change **many times per hour** (Wee's hourly pattern was gone
//!   by 2014, §4.2);
//! * occasional **spikes above the on-demand price** occur, so that no bid
//!   below the on-demand cap is ever perfectly safe — the phenomenon that
//!   breaks the naive "bid the spot price" strategy in the paper's
//!   introduction.
//!
//! Every zone/type pair gets its own stable "personality" (base level,
//! volatility, spike rate) derived deterministically from the generator
//! seed, so cheap-and-calm zones coexist with expensive-and-jumpy ones and
//! the greedy zone selection in the bidding algorithm has real choices to
//! make.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::instance::InstanceType;
use crate::money::Price;
use crate::topology::Zone;
use crate::trace::{PricePoint, PriceTrace};

/// Tunable parameters of the per-zone price process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenParams {
    /// Base spot price as a fraction of the on-demand price (grid bottom).
    pub base_fraction: f64,
    /// Top grid level as a fraction of the on-demand price (> 1 ⇒ spikes
    /// can exceed on-demand).
    pub top_fraction: f64,
    /// Number of discrete price levels on the geometric ladder.
    pub n_levels: usize,
    /// Mean of the short-stay sojourn component, in minutes.
    pub mean_sojourn_short: f64,
    /// Probability that a sojourn is drawn from the long component.
    pub long_sojourn_prob: f64,
    /// Mean of the long-stay sojourn component, in minutes.
    pub mean_sojourn_long: f64,
    /// Per-transition probability of jumping into the spike band (the top
    /// 20 % of levels) regardless of the current level.
    pub spike_prob: f64,
    /// Random-walk step scale: larger values make multi-level moves more
    /// common.
    pub step_scale: f64,
    /// Mean-reversion strength in `[0, 1]`: the higher the current level
    /// sits above base, the more the walk is biased downward.
    pub reversion: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            base_fraction: 0.115,
            top_fraction: 0.9,
            n_levels: 24,
            mean_sojourn_short: 7.0,
            long_sojourn_prob: 0.15,
            mean_sojourn_long: 120.0,
            spike_prob: 0.0004,
            step_scale: 1.4,
            reversion: 0.75,
        }
    }
}

impl GenParams {
    /// Derive a zone-specific personality from defaults: base level,
    /// volatility and spike rate vary deterministically with the mixed
    /// seed so that zones differ the way real availability zones do.
    pub fn personalize(&self, rng: &mut ChaCha8Rng) -> GenParams {
        let mut p = self.clone();
        p.base_fraction *= rng.gen_range(0.75..1.35);
        // Most zones top out below the on-demand price (safe bids exist,
        // as in the 2014 archives); a minority can spike above it.
        p.top_fraction *= rng.gen_range(0.55..1.55);
        p.mean_sojourn_short *= rng.gen_range(0.6..1.8);
        p.long_sojourn_prob *= rng.gen_range(0.5..1.6);
        p.mean_sojourn_long *= rng.gen_range(0.6..1.6);
        p.spike_prob *= rng.gen_range(0.2..2.0);
        p.step_scale *= rng.gen_range(0.8..1.3);
        p.reversion = (p.reversion * rng.gen_range(0.7..1.4)).min(0.9);
        p
    }
}

/// Deterministic semi-Markov trace generator.
///
/// ```
/// use spot_market::{InstanceType, TraceGenerator};
///
/// let zone = spot_market::topology::all_zones()[0];
/// let gen = TraceGenerator::new(42);
/// let day = gen.generate(zone, InstanceType::M1Small, 24 * 60);
/// // Prices are a positive step function over the whole day…
/// assert_eq!(day.horizon(), 24 * 60);
/// // …and regeneration is bit-identical.
/// assert_eq!(day, gen.generate(zone, InstanceType::M1Small, 24 * 60));
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    seed: u64,
    params: GenParams,
}

impl TraceGenerator {
    /// A generator with the given global seed and default parameters.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            seed,
            params: GenParams::default(),
        }
    }

    /// A generator with custom base parameters.
    pub fn with_params(seed: u64, params: GenParams) -> Self {
        TraceGenerator { seed, params }
    }

    /// Stable per-(zone, type) RNG stream.
    fn rng_for(&self, zone: Zone, ty: InstanceType) -> ChaCha8Rng {
        // SplitMix-style mixing of the identifying integers into one seed.
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(zone.ordinal() as u64 + 1)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(ty as u64 + 1);
        x ^= x >> 31;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 29;
        ChaCha8Rng::seed_from_u64(x)
    }

    /// The price ladder for a zone/type: geometric between base and top,
    /// rounded to the bidding tick, deduplicated, always non-empty.
    fn ladder(params: &GenParams, on_demand: Price) -> Vec<Price> {
        let base = on_demand.as_dollars() * params.base_fraction;
        let top = on_demand.as_dollars() * params.top_fraction;
        let n = params.n_levels.max(2);
        let ratio = (top / base).powf(1.0 / (n as f64 - 1.0));
        let mut ladder: Vec<Price> = (0..n)
            .map(|i| Price::from_dollars(base * ratio.powi(i as i32)).round_up_to_tick())
            .collect();
        ladder.dedup();
        ladder
    }

    /// Draw a sojourn time in minutes from the short/long mixture (≥ 1).
    fn draw_sojourn(params: &GenParams, rng: &mut ChaCha8Rng) -> u64 {
        let mean = if rng.gen::<f64>() < params.long_sojourn_prob {
            params.mean_sojourn_long
        } else {
            params.mean_sojourn_short
        };
        // Geometric with the requested mean: support {1, 2, ...}.
        let p = 1.0 / mean.max(1.0);
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let k = (u.ln() / (1.0 - p).ln()).ceil();
        (k as u64).max(1)
    }

    /// Pick the next ladder level from `current` (never returns `current`).
    fn next_level(params: &GenParams, n: usize, current: usize, rng: &mut ChaCha8Rng) -> usize {
        debug_assert!(n >= 2);
        let spike_band = ((n as f64 * 0.8) as usize).min(n - 1);
        if rng.gen::<f64>() < params.spike_prob && current < spike_band {
            return rng.gen_range(spike_band..n);
        }
        // Random-walk step with geometric magnitude and reversion-biased
        // direction.
        let height = current as f64 / (n as f64 - 1.0);
        let down_bias = 0.5 + params.reversion * (height - 0.15);
        loop {
            let mag = 1 + (rng.gen::<f64>() * params.step_scale) as usize;
            let down = rng.gen::<f64>() < down_bias.clamp(0.05, 0.95);
            let next = if down {
                current.saturating_sub(mag)
            } else {
                (current + mag).min(n - 1)
            };
            if next != current {
                return next;
            }
        }
    }

    /// Generate a trace of `minutes` length for `(zone, ty)`.
    ///
    /// The result is a pure function of `(seed, zone, ty, minutes)` — the
    /// first `k` minutes of a longer trace equal a shorter trace, which lets
    /// the replay harness grow histories incrementally.
    pub fn generate(&self, zone: Zone, ty: InstanceType, minutes: u64) -> PriceTrace {
        assert!(minutes > 0, "trace length must be positive");
        let mut rng = self.rng_for(zone, ty);
        let params = self.params.personalize(&mut rng);
        let on_demand = ty.on_demand_price(zone.region);
        let ladder = Self::ladder(&params, on_demand);
        let n = ladder.len();

        let mut level = if n >= 2 { rng.gen_range(0..n / 2) } else { 0 };
        let mut points = Vec::new();
        let mut t = 0u64;
        while t < minutes {
            points.push(PricePoint {
                minute: t,
                price: ladder[level],
            });
            // High prices dwell somewhat shorter than the base (demand
            // surges pass), but excursions remain *persistent* — tens of
            // minutes, as in the 2014 archives (Fig. 1 shows half-hour
            // sojourns) — rather than one-minute blips.
            let height = level as f64 / (n.max(2) as f64 - 1.0);
            let raw = Self::draw_sojourn(&params, &mut rng);
            t += ((raw as f64 * (1.0 - 0.35 * height)).round() as u64).max(1);
            if n < 2 {
                break;
            }
            // Skip to a genuinely different *price* (ladder rounding can
            // merge adjacent levels near the bottom).
            let mut next = Self::next_level(&params, n, level, &mut rng);
            let mut guard = 0;
            while ladder[next] == ladder[level] && guard < 16 {
                next = Self::next_level(&params, n, level, &mut rng);
                guard += 1;
            }
            if ladder[next] == ladder[level] {
                // Degenerate ladder; force a move to a distinct price.
                next = (0..n)
                    .find(|&i| ladder[i] != ladder[level])
                    .unwrap_or(level);
                if next == level {
                    break;
                }
            }
            level = next;
        }
        PriceTrace::new(points, minutes)
    }

    /// The base (non-personalized) parameters.
    pub fn params(&self) -> &GenParams {
        &self.params
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{all_zones, Region};

    fn zone() -> Zone {
        Zone::new(Region::UsEast1, 0)
    }

    #[test]
    fn deterministic_per_seed() {
        let g = TraceGenerator::new(7);
        let a = g.generate(zone(), InstanceType::M1Small, 10_000);
        let b = g.generate(zone(), InstanceType::M1Small, 10_000);
        assert_eq!(a, b);
        let g2 = TraceGenerator::new(8);
        let c = g2.generate(zone(), InstanceType::M1Small, 10_000);
        assert_ne!(a, c);
    }

    #[test]
    fn prefix_stability() {
        let g = TraceGenerator::new(7);
        let long = g.generate(zone(), InstanceType::M1Small, 20_000);
        let short = g.generate(zone(), InstanceType::M1Small, 5_000);
        for m in (0..5_000).step_by(17) {
            assert_eq!(long.price_at(m), short.price_at(m), "minute {m}");
        }
    }

    #[test]
    fn zones_and_types_differ() {
        let g = TraceGenerator::new(7);
        let a = g.generate(zone(), InstanceType::M1Small, 5_000);
        let b = g.generate(Zone::new(Region::UsEast1, 1), InstanceType::M1Small, 5_000);
        let c = g.generate(zone(), InstanceType::M3Large, 5_000);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prices_mostly_well_below_on_demand() {
        let g = TraceGenerator::new(42);
        let week = 7 * 24 * 60;
        for z in all_zones().into_iter().take(6) {
            let od = InstanceType::M1Small.on_demand_price(z.region);
            let t = g.generate(z, InstanceType::M1Small, week);
            // Time-weighted mean should sit in the cheap band.
            let mean = t.mean_price().as_dollars();
            assert!(
                mean < 0.6 * od.as_dollars(),
                "{}: mean {mean} vs od {}",
                z.name(),
                od.as_dollars()
            );
            // And the floor must be strictly positive.
            let min = t.segments().map(|s| s.price).min().unwrap();
            assert!(min > Price::ZERO);
        }
    }

    #[test]
    fn changes_many_times_per_hour_on_average() {
        // §4.2: by 2014 prices changed "many times each hour". Our default
        // short sojourn of ~7 minutes gives several changes per hour.
        let g = TraceGenerator::new(1);
        let t = g.generate(zone(), InstanceType::M1Small, 14 * 24 * 60);
        let rate = t.changes_per_hour();
        assert!(rate > 1.0, "rate {rate} too low");
        assert!(rate < 60.0, "rate {rate} impossibly high");
    }

    #[test]
    fn spikes_above_on_demand_exist_somewhere() {
        // Over many zone-weeks some zone must spike above its on-demand
        // price — the failure mode that motivates the whole paper.
        let g = TraceGenerator::new(3);
        let eleven_weeks = 11 * 7 * 24 * 60;
        let mut spiked = false;
        for z in all_zones() {
            let od = InstanceType::M1Small.on_demand_price(z.region);
            let t = g.generate(z, InstanceType::M1Small, eleven_weeks);
            if t.max_price_in(0, eleven_weeks) > od {
                spiked = true;
                break;
            }
        }
        assert!(spiked, "no zone ever spiked above on-demand");
    }

    #[test]
    fn sojourns_are_not_memoryless() {
        // The mixture produces excess variance relative to a geometric
        // distribution with the same mean (coefficient of variation > 1),
        // which is what makes the process semi-Markov rather than Markov.
        let g = TraceGenerator::new(5);
        let t = g.generate(zone(), InstanceType::M1Small, 60 * 24 * 60);
        let d: Vec<f64> = t.segments().map(|s| s.duration as f64).collect();
        let mean = d.iter().sum::<f64>() / d.len() as f64;
        let var = d.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / d.len() as f64;
        // Geometric(mean m) has variance m(m-1); a heavy mixture exceeds it.
        assert!(
            var > 1.5 * mean * (mean - 1.0),
            "var {var} vs geometric {}",
            mean * (mean - 1.0)
        );
    }

    #[test]
    fn ladder_is_tick_aligned_and_increasing() {
        let params = GenParams::default();
        let ladder = TraceGenerator::ladder(&params, Price::from_dollars(0.044));
        assert!(ladder.len() >= 2);
        for w in ladder.windows(2) {
            assert!(w[0] < w[1]);
        }
        for p in &ladder {
            assert_eq!(p.as_micros() % Price::TICK.as_micros(), 0);
        }
    }
}
