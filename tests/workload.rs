//! Integration coverage for the request-level workload engine and the
//! batched SMR fast path (DESIGN.md "Workload engine & batched fast
//! path"):
//!
//! * property tests for the seeded arrival processes — a Poisson
//!   stream's empirical rate stays within sampling tolerance of λ, and
//!   the diurnal process integrates to its configured daily volume;
//! * thread-count determinism — identical seeds yield identical arrival
//!   streams and identical `WorkloadReport`s no matter which thread
//!   runs them (the in-process counterpart of ci.sh's
//!   `RAYON_NUM_THREADS` diff over `repro workload`);
//! * the batching regression bar — at a reference load that saturates a
//!   depth-2 accept pipeline, enabling batching must not worsen the
//!   request-level p99 (the same inequality `bench-baseline` pins in
//!   BENCH_replay.json);
//! * session monotonicity of follower-local reads — a seeded
//!   interleaving sweep where a follower-served read must never return
//!   a value older than the session's last acknowledged write, with a
//!   printed-seed repro on failure.

use proptest::prelude::*;
use spot_jupiter::obs::Obs;
use spot_jupiter::paxos::open_loop::OpenLoopClient;
use spot_jupiter::paxos::{Cluster, LockCmd, LockResp, LockService, PaxosNode, ReplicaConfig};
use spot_jupiter::simnet::{NetworkConfig, NodeId, SimTime};
use spot_jupiter::workload::{
    run_lock_workload, ArrivalProcess, WorkloadReport, WorkloadSpec,
};
use test_util::{derive_seed, rng_from};

// ---- arrival-process properties -----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Empirical Poisson rate within 5σ of λ (σ = √(λT)/T for a count
    /// over horizon T): a seeded thinning sampler that drifted off its
    /// configured rate would blow through this for some (λ, seed).
    #[test]
    fn poisson_empirical_rate_tracks_lambda(
        rate in 5.0f64..150.0,
        seed in any::<u64>(),
    ) {
        let horizon_secs = 100u64;
        let p = ArrivalProcess::Poisson { rate_per_sec: rate };
        let n = p.sample(seed, SimTime::from_secs(horizon_secs)).len() as f64;
        let expected = rate * horizon_secs as f64;
        let tolerance = 5.0 * expected.sqrt() + 10.0;
        prop_assert!(
            (n - expected).abs() <= tolerance,
            "rate {rate}, seed {seed}: {n} arrivals vs expected {expected} ± {tolerance}"
        );
    }

    /// Over one full simulated day the diurnal process integrates to its
    /// configured daily volume (± 5σ): the sinusoid's calibration
    /// constant is exactly what this pins down.
    #[test]
    fn diurnal_integrates_to_daily_volume(
        volume in 1_000u64..50_000,
        seed in any::<u64>(),
    ) {
        let p = ArrivalProcess::Diurnal { daily_volume: volume };
        let n = p.sample(seed, SimTime::from_secs(86_400)).len() as f64;
        let expected = volume as f64;
        let tolerance = 5.0 * expected.sqrt() + 10.0;
        prop_assert!(
            (n - expected).abs() <= tolerance,
            "volume {volume}, seed {seed}: {n} arrivals vs {expected} ± {tolerance}"
        );
    }
}

// ---- determinism across threads -----------------------------------------

#[test]
fn identical_seeds_identical_streams_across_threads() {
    let p = ArrivalProcess::Bursty {
        base_rate: 20.0,
        peak_rate: 200.0,
        period: SimTime::from_secs(10),
        burst_len: SimTime::from_secs(2),
    };
    let horizon = SimTime::from_secs(120);
    let reference = p.sample(0xD15EA5E, horizon);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let p = p.clone();
            std::thread::spawn(move || p.sample(0xD15EA5E, horizon))
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("sampler thread"), reference);
    }
}

fn small_lock_spec() -> WorkloadSpec {
    WorkloadSpec {
        arrivals: ArrivalProcess::Poisson { rate_per_sec: 40.0 },
        horizon: SimTime::from_secs(5),
        sessions: 16,
        population: 200,
        trace_every: 0,
        ..WorkloadSpec::default()
    }
}

#[test]
fn workload_reports_are_identical_across_threads() {
    // The whole engine — arrival sampling, command mix, DES run,
    // summary reduction — replays bit-identically on any thread. This
    // is the in-process form of the ci.sh gate that diffs `repro
    // --quick workload` output across RAYON_NUM_THREADS settings.
    let spec = small_lock_spec();
    let reference = run_lock_workload(&spec, NetworkConfig::default(), &Obs::disabled());
    let handles: Vec<std::thread::JoinHandle<WorkloadReport>> = (0..3)
        .map(|_| {
            let spec = spec.clone();
            std::thread::spawn(move || {
                run_lock_workload(&spec, NetworkConfig::default(), &Obs::disabled())
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("workload thread"), reference);
    }
}

// ---- the batching regression bar ----------------------------------------

#[test]
fn batching_does_not_worsen_p99_at_reference_load() {
    // Reference load: 60 req/s against a depth-2 pipeline. Unbatched,
    // the leader commits ~2 ops per commit round trip (~100 ms on the
    // default WAN model), ~20 ops/s — a third of the offered load, so
    // its queue (and p99) grows for the whole horizon. Batch 8 lifts
    // capacity past the load. The regression test pins the same
    // inequality `bench-baseline` records from the workload's own
    // scheduled→completion latency counters.
    let reference = WorkloadSpec {
        arrivals: ArrivalProcess::Poisson { rate_per_sec: 60.0 },
        horizon: SimTime::from_secs(10),
        sessions: 32,
        population: 500,
        trace_every: 0,
        pipeline: 2,
        batch_max_ops: 1,
        ..WorkloadSpec::default()
    };
    let unbatched = run_lock_workload(&reference, NetworkConfig::default(), &Obs::disabled());
    let batched_spec = WorkloadSpec {
        batch_max_ops: 8,
        ..reference
    };
    let batched = run_lock_workload(&batched_spec, NetworkConfig::default(), &Obs::disabled());

    // Both configurations must fully drain (batching may not lose ops).
    assert_eq!(unbatched.completed, unbatched.requests);
    assert_eq!(batched.completed, batched.requests);
    assert_eq!(batched.requests, unbatched.requests, "same arrival stream");

    // The load must genuinely saturate the unbatched pipeline —
    // otherwise the inequality below tests nothing.
    assert!(
        unbatched.latency_p99 > SimTime::from_secs(2),
        "reference load no longer saturates the unbatched pipeline \
         (p99 {} ms)",
        unbatched.latency_p99.as_millis()
    );
    assert!(
        batched.latency_p99 <= unbatched.latency_p99,
        "batching worsened request-level p99: batched {} ms > unbatched {} ms",
        batched.latency_p99.as_millis(),
        unbatched.latency_p99.as_millis()
    );
    // And the SLO availability must move the same direction.
    assert!(
        batched.availability_ppm >= unbatched.availability_ppm,
        "batching worsened SLO availability: {} ppm < {} ppm",
        batched.availability_ppm,
        unbatched.availability_ppm
    );
}

// ---- follower-local reads: session monotonicity -------------------------

/// One seeded interleaving: a single open-loop session alternates
/// Acquire → Holder → Release → Holder on one lock against a 5-replica
/// cluster with follower-local reads enabled. Because no one else
/// touches the lock, session monotonicity ("a read never returns a
/// value older than my last acknowledged write") pins every read
/// exactly: Some(owner) after a Granted, None after a Released.
///
/// Returns (reads checked, reads served locally by a follower).
fn run_local_read_interleaving(seed: u64) -> (usize, usize) {
    let owner = NodeId(1);
    let cfg = ReplicaConfig {
        local_reads: true,
        ..ReplicaConfig::default()
    };
    let mut cluster = Cluster::new(
        5,
        LockService::new(),
        cfg,
        NetworkConfig::default(),
        derive_seed(seed, 1),
    );

    // Seeded gaps: the interleaving of reads with commit/apply traffic
    // at each follower is what varies run to run.
    let mut rng = rng_from(derive_seed(seed, 2));
    let mut t = SimTime::from_secs(3);
    let mut schedule = Vec::new();
    use rand::Rng;
    for _ in 0..12 {
        for cmd in [
            LockCmd::Acquire {
                name: "L".into(),
                owner,
            },
            LockCmd::Holder { name: "L".into() },
            LockCmd::Release {
                name: "L".into(),
                owner,
            },
            LockCmd::Holder { name: "L".into() },
        ] {
            t += SimTime::from_millis(rng.gen_range(20..400));
            schedule.push((t, cmd));
        }
    }
    let total = schedule.len();

    let id = NodeId(cluster.sim.node_count());
    let session = OpenLoopClient::new(id, cluster.servers().to_vec(), schedule)
        .with_local_reads(true)
        .with_trace_every(0);
    let got = cluster.sim.add_node(PaxosNode::OpenLoop(session));
    assert_eq!(got, id);

    let deadline = t + SimTime::from_secs(120);
    loop {
        let session = cluster
            .sim
            .actor(id)
            .and_then(PaxosNode::as_open_loop)
            .expect("session exists");
        if session.completions() == total || cluster.sim.now() >= deadline {
            break;
        }
        let next = cluster.sim.now() + SimTime::from_secs(1);
        cluster.sim.run_until(next.min(deadline));
    }

    let session = cluster
        .sim
        .actor(id)
        .and_then(PaxosNode::as_open_loop)
        .expect("session exists");
    let mut expected_holder: Option<NodeId> = None;
    let mut reads_checked = 0;
    for (i, op) in session.records().iter().enumerate() {
        let Some((_, resp)) = &op.completed else {
            panic!("op {i} never completed — repro: run_local_read_interleaving({seed:#x})");
        };
        match (&op.cmd, resp) {
            (LockCmd::Acquire { .. }, LockResp::Granted) => expected_holder = Some(owner),
            (LockCmd::Release { .. }, LockResp::Released) => expected_holder = None,
            (LockCmd::Holder { .. }, LockResp::HolderIs(h)) => {
                assert_eq!(
                    *h,
                    expected_holder,
                    "stale read at op {i} (served {}): got {h:?}, session's last \
                     acknowledged write implies {expected_holder:?} — repro: \
                     run_local_read_interleaving({seed:#x})",
                    if op.read { "locally by a follower" } else { "by the leader" },
                );
                reads_checked += 1;
            }
            (cmd, resp) => panic!(
                "op {i} ({cmd:?}) answered {resp:?} — repro: \
                 run_local_read_interleaving({seed:#x})"
            ),
        }
    }
    (reads_checked, session.local_served() as usize)
}

#[test]
fn follower_local_reads_preserve_session_monotonicity() {
    let mut reads = 0;
    let mut local = 0;
    for seed in 0..24u64 {
        let (r, l) = run_local_read_interleaving(derive_seed(0x10CA1, seed));
        reads += r;
        local += l;
    }
    assert!(reads > 0, "sweep never checked a read");
    // The property is vacuous unless followers actually served reads.
    assert!(
        local > 0,
        "no read was ever served from follower-local state — the local-read \
         path is not being exercised"
    );
}
