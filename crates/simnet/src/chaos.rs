//! Seeded fault-injection schedules.
//!
//! A [`ChaosSchedule`] is a time-ordered list of fault actions — crashes,
//! restarts, partitions, link-level chaos, clock skew — generated as a pure
//! function of a `u64` seed and a [`ChaosPlan`]. The schedule is plain
//! data: the simulator executes the network-level actions and the service
//! harnesses (which know how to build fresh actors) execute crash/restart,
//! so any failing run reproduces byte-for-byte from its printed seed.
//!
//! The out-of-bid terminations of the spot-market replay produce the same
//! data type (see `replay::chaos`), which lets the protocol simulations be
//! driven by market-derived death schedules instead of purely random ones.

use std::fmt;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::network::LinkChaos;
use crate::sim::NodeId;
use crate::time::SimTime;

/// One fault-injection action.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosAction {
    /// Crash a node (state destroyed, timers cancelled, in-flight messages
    /// to it dropped on arrival). No-op if the node is already down.
    Crash(NodeId),
    /// Restart a crashed node with a fresh actor (the harness supplies the
    /// actor; recovery is the protocol's business). No-op if it is up.
    Restart(NodeId),
    /// Install a network partition; each group is one island. Harnesses
    /// add unlisted nodes (e.g. clients) to every group so only the listed
    /// replicas are actually separated.
    Partition(Vec<Vec<NodeId>>),
    /// Heal any partition.
    Heal,
    /// Enable link-level chaos: extra drops, duplicates, delay spikes.
    SetLinkChaos(LinkChaos),
    /// Disable link-level chaos.
    ClearLinkChaos,
    /// Skew a node's actor-visible clock forward by the given millis.
    ClockSkew(NodeId, u64),
}

impl ChaosAction {
    /// Short lowercase tag for pretty-printing and digests.
    pub fn tag(&self) -> &'static str {
        match self {
            ChaosAction::Crash(_) => "crash",
            ChaosAction::Restart(_) => "restart",
            ChaosAction::Partition(_) => "partition",
            ChaosAction::Heal => "heal",
            ChaosAction::SetLinkChaos(_) => "link-chaos",
            ChaosAction::ClearLinkChaos => "link-clear",
            ChaosAction::ClockSkew(_, _) => "clock-skew",
        }
    }
}

/// A timestamped fault action.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosEvent {
    /// When the action fires (virtual time).
    pub at: SimTime,
    /// The action.
    pub action: ChaosAction,
}

/// Generation parameters for a random schedule.
///
/// The generator tracks which nodes it has crashed so far and never takes
/// more than `max_down` of the `nodes` replicas down at once — the quorum
/// margin the service is supposed to tolerate stays intact, so *safety and
/// eventual progress are both fair assertions* against a generated
/// schedule.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Replica count; fault targets are `NodeId(0..nodes)`.
    pub nodes: usize,
    /// Schedule horizon: all events land in `[0, duration)`.
    pub duration: SimTime,
    /// Number of fault events to draw.
    pub events: usize,
    /// Maximum concurrently-crashed replicas.
    pub max_down: usize,
    /// Allow partition/heal events.
    pub partitions: bool,
    /// Allow link-chaos toggles (drop/duplicate/delay spikes).
    pub link_chaos: bool,
    /// Allow clock-skew events; skews are drawn from `[0, max_skew_ms]`.
    pub max_skew_ms: u64,
    /// Append heal/clear/restart-everything events at `duration`, so the
    /// cluster is whole again and progress afterwards can be asserted.
    pub heal_at_end: bool,
}

impl ChaosPlan {
    /// A plan matching the paper's lock service: five replicas, majority
    /// quorum, at most two concurrently dead (Def. 1 margin).
    pub fn lock_service(duration: SimTime, events: usize) -> Self {
        ChaosPlan {
            nodes: 5,
            duration,
            events,
            max_down: 2,
            partitions: true,
            link_chaos: true,
            max_skew_ms: 2_000,
            heal_at_end: true,
        }
    }

    /// A plan matching θ(3,5) RS-Paxos storage: five replicas, quorum 4,
    /// at most one concurrently dead (Def. 2 margin).
    pub fn storage_service(duration: SimTime, events: usize) -> Self {
        ChaosPlan {
            nodes: 5,
            duration,
            events,
            max_down: 1,
            partitions: false, // θ(3,5) tolerates 1: a 2|3 split stalls it
            link_chaos: true,
            max_skew_ms: 2_000,
            heal_at_end: true,
        }
    }
}

/// A deterministic, seed-reproducible fault schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSchedule {
    /// The seed the schedule was generated from (0 for derived schedules,
    /// e.g. market-replay deaths).
    pub seed: u64,
    /// Events in non-decreasing time order.
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// An empty schedule.
    pub fn empty(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            events: Vec::new(),
        }
    }

    /// Generate a schedule from `seed` under `plan`. Pure function of its
    /// arguments: the same `(seed, plan)` yields the same schedule on
    /// every platform (ChaCha8 + integer sampling only).
    pub fn generate(seed: u64, plan: &ChaosPlan) -> Self {
        assert!(plan.nodes >= 1, "need at least one node");
        assert!(plan.max_down < plan.nodes, "must keep one node alive");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let horizon = plan.duration.as_millis().max(1);
        let mut times: Vec<u64> = (0..plan.events)
            .map(|_| rng.gen_range(0..horizon))
            .collect();
        times.sort_unstable();

        let mut down: Vec<NodeId> = Vec::new();
        let mut partitioned = false;
        let mut link_dirty = false;
        let mut events = Vec::with_capacity(plan.events + plan.nodes + 2);
        for at in times {
            let at = SimTime::from_millis(at);
            // Draw an action kind, retrying kinds that are currently
            // inapplicable (e.g. restart with nothing down). Bounded
            // retries keep generation total.
            let mut action = None;
            for _ in 0..8 {
                match rng.gen_range(0..6u32) {
                    0 | 1 if down.len() < plan.max_down => {
                        // Crash is twice as likely as any other kind: the
                        // paper's threat model is dominated by out-of-bid
                        // kills.
                        let up: Vec<NodeId> = (0..plan.nodes)
                            .map(NodeId)
                            .filter(|n| !down.contains(n))
                            .collect();
                        let victim = up[rng.gen_range(0..up.len())];
                        down.push(victim);
                        action = Some(ChaosAction::Crash(victim));
                    }
                    2 if !down.is_empty() => {
                        let idx = rng.gen_range(0..down.len());
                        let node = down.swap_remove(idx);
                        action = Some(ChaosAction::Restart(node));
                    }
                    3 if plan.partitions => {
                        if partitioned {
                            partitioned = false;
                            action = Some(ChaosAction::Heal);
                        } else {
                            // Random two-island split with both sides
                            // non-empty.
                            let cut = rng.gen_range(1..plan.nodes);
                            let mut ids: Vec<NodeId> = (0..plan.nodes).map(NodeId).collect();
                            // Fisher–Yates with the schedule RNG.
                            for i in (1..ids.len()).rev() {
                                let j = rng.gen_range(0..=i);
                                ids.swap(i, j);
                            }
                            let right = ids.split_off(cut);
                            partitioned = true;
                            action = Some(ChaosAction::Partition(vec![ids, right]));
                        }
                    }
                    4 if plan.link_chaos => {
                        if link_dirty {
                            link_dirty = false;
                            action = Some(ChaosAction::ClearLinkChaos);
                        } else {
                            link_dirty = true;
                            action = Some(ChaosAction::SetLinkChaos(LinkChaos {
                                drop_pr: rng.gen_range(0..=10) as f64 / 100.0,
                                dup_pr: rng.gen_range(0..=10) as f64 / 100.0,
                                delay_pr: rng.gen_range(0..=20) as f64 / 100.0,
                                extra_delay_max: SimTime::from_millis(rng.gen_range(50..=800)),
                            }));
                        }
                    }
                    5 if plan.max_skew_ms > 0 => {
                        let node = NodeId(rng.gen_range(0..plan.nodes));
                        let skew = rng.gen_range(0..=plan.max_skew_ms);
                        action = Some(ChaosAction::ClockSkew(node, skew));
                    }
                    _ => continue,
                }
                break;
            }
            if let Some(action) = action {
                events.push(ChaosEvent { at, action });
            }
        }

        if plan.heal_at_end {
            let at = plan.duration;
            if partitioned {
                events.push(ChaosEvent {
                    at,
                    action: ChaosAction::Heal,
                });
            }
            if link_dirty {
                events.push(ChaosEvent {
                    at,
                    action: ChaosAction::ClearLinkChaos,
                });
            }
            down.sort_unstable();
            for node in down {
                events.push(ChaosEvent {
                    at,
                    action: ChaosAction::Restart(node),
                });
            }
        }

        ChaosSchedule { seed, events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The schedule truncated to its first `n` events (same seed tag).
    pub fn prefix(&self, n: usize) -> Self {
        ChaosSchedule {
            seed: self.seed,
            events: self.events[..n.min(self.events.len())].to_vec(),
        }
    }

    /// Shrink a failing schedule to its minimal failing prefix: the
    /// shortest prefix for which `fails` still returns `true`.
    ///
    /// `fails` must be deterministic (run the simulation from scratch on
    /// each candidate — that is exactly what seeded schedules make cheap).
    /// Returns `None` when the full schedule does not fail.
    pub fn minimal_failing_prefix(
        &self,
        mut fails: impl FnMut(&ChaosSchedule) -> bool,
    ) -> Option<ChaosSchedule> {
        if !fails(self) {
            return None;
        }
        // Fault-dependent failures are not necessarily monotone in the
        // prefix length, so scan for the *first* failing prefix instead of
        // bisecting.
        for n in 0..self.events.len() {
            let candidate = self.prefix(n);
            if fails(&candidate) {
                return Some(candidate);
            }
        }
        Some(self.clone())
    }
}

impl fmt::Display for ChaosSchedule {
    /// A human-readable table, one event per line — what a failing chaos
    /// test prints next to the repro seed.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chaos schedule seed={:#018x} ({} events)",
            self.seed,
            self.events.len()
        )?;
        for ev in &self.events {
            write!(f, "  {:>12} {:<10}", ev.at.to_string(), ev.action.tag())?;
            match &ev.action {
                ChaosAction::Crash(n) | ChaosAction::Restart(n) => writeln!(f, " {n}")?,
                ChaosAction::Partition(groups) => {
                    let sides: Vec<String> = groups
                        .iter()
                        .map(|g| {
                            let ids: Vec<String> = g.iter().map(NodeId::to_string).collect();
                            format!("{{{}}}", ids.join(","))
                        })
                        .collect();
                    writeln!(f, " {}", sides.join(" | "))?;
                }
                ChaosAction::Heal | ChaosAction::ClearLinkChaos => writeln!(f)?,
                ChaosAction::SetLinkChaos(c) => writeln!(
                    f,
                    " drop={:.2} dup={:.2} delay={:.2}≤{}ms",
                    c.drop_pr,
                    c.dup_pr,
                    c.delay_pr,
                    c.extra_delay_max.as_millis()
                )?,
                ChaosAction::ClockSkew(n, ms) => writeln!(f, " {n} +{ms}ms")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChaosPlan {
        ChaosPlan::lock_service(SimTime::from_secs(60), 24)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ChaosSchedule::generate(42, &plan());
        let b = ChaosSchedule::generate(42, &plan());
        assert_eq!(a, b);
        let c = ChaosSchedule::generate(43, &plan());
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn events_are_time_ordered_and_bounded() {
        let s = ChaosSchedule::generate(7, &plan());
        let mut last = SimTime::ZERO;
        for ev in &s.events {
            assert!(ev.at >= last, "events out of order");
            assert!(ev.at <= SimTime::from_secs(60));
            last = ev.at;
        }
        assert!(!s.is_empty());
    }

    #[test]
    fn never_exceeds_max_down() {
        for seed in 0..50 {
            let s = ChaosSchedule::generate(seed, &plan());
            let mut down = 0usize;
            for ev in &s.events {
                match ev.action {
                    ChaosAction::Crash(_) => {
                        down += 1;
                        assert!(down <= 2, "seed {seed}: {down} down at once");
                    }
                    ChaosAction::Restart(_) => down = down.saturating_sub(1),
                    _ => {}
                }
            }
            assert_eq!(down, 0, "seed {seed}: heal_at_end must restart all");
        }
    }

    #[test]
    fn heal_at_end_restores_the_network() {
        for seed in 0..50 {
            let s = ChaosSchedule::generate(seed, &plan());
            let mut partitioned = false;
            let mut chaotic = false;
            for ev in &s.events {
                match ev.action {
                    ChaosAction::Partition(_) => partitioned = true,
                    ChaosAction::Heal => partitioned = false,
                    ChaosAction::SetLinkChaos(_) => chaotic = true,
                    ChaosAction::ClearLinkChaos => chaotic = false,
                    _ => {}
                }
            }
            assert!(!partitioned && !chaotic, "seed {seed}: dirty at end");
        }
    }

    #[test]
    fn prefix_truncates() {
        let s = ChaosSchedule::generate(1, &plan());
        let p = s.prefix(3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.events[..], s.events[..3]);
        assert_eq!(s.prefix(10_000).len(), s.len());
    }

    #[test]
    fn shrink_finds_first_failing_prefix() {
        let s = ChaosSchedule::generate(5, &plan());
        // Synthetic failure: "fails" once the prefix contains ≥ 2 crashes.
        let crashes =
            |s: &ChaosSchedule| s.events.iter().filter(|e| e.action.tag() == "crash").count();
        let min = s.minimal_failing_prefix(|p| crashes(p) >= 2).unwrap();
        assert_eq!(crashes(&min), 2);
        assert_eq!(
            min.events.last().map(|e| e.action.tag()),
            Some("crash"),
            "minimal prefix ends at the failure-inducing event"
        );
        // A predicate the full schedule doesn't satisfy shrinks to None.
        assert!(s.minimal_failing_prefix(|_| false).is_none());
    }

    #[test]
    fn storage_plan_keeps_quorum_margin() {
        let p = ChaosPlan::storage_service(SimTime::from_secs(30), 40);
        for seed in 0..20 {
            let s = ChaosSchedule::generate(seed, &p);
            let mut down = 0usize;
            for ev in &s.events {
                match ev.action {
                    ChaosAction::Crash(_) => {
                        down += 1;
                        assert!(down <= 1, "θ(3,5) margin violated");
                    }
                    ChaosAction::Restart(_) => down = down.saturating_sub(1),
                    ChaosAction::Partition(_) => panic!("no partitions for storage"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn display_prints_every_event() {
        let s = ChaosSchedule::generate(9, &plan());
        let text = s.to_string();
        assert!(text.contains("seed=0x"));
        // One header line plus one line per event.
        assert_eq!(text.lines().count(), 1 + s.len());
    }
}
