//! The RS-Paxos replica.

use std::collections::{BTreeMap, HashMap, HashSet};

use bytes::Bytes;
use erasure::ReedSolomon;
use obs::{Counter, FieldValue, Gauge, Histogram, Obs, SpanHandle, TraceContext};
use paxos::Ballot;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::{Context, NodeId, SimTime, TimerToken};

use crate::msg::{
    RsAccepted, RsChosen, RsMsg, SlotValue, StoreCmd, StoreResp, WireValue, RS_MSG_KINDS,
};
use crate::store::ShardStore;

type Slot = u64;

const TICK_TOKEN: TimerToken = TimerToken(0);
/// Batch-delay expiry (token 1 belongs to the closed-loop client).
const BATCH_TOKEN: TimerToken = TimerToken(2);

/// RS-Paxos deployment parameters.
#[derive(Clone, Debug)]
pub struct RsConfig {
    /// Erasure data-shard count `m` (the code is θ(m, view.len())).
    pub m: usize,
    /// Bookkeeping tick.
    pub tick: SimTime,
    /// Leader heartbeat period.
    pub heartbeat_every: SimTime,
    /// Election timeout range.
    pub election_timeout: (SimTime, SimTime),
    /// Re-broadcast period for unacknowledged proposals and shard pulls.
    pub retry: SimTime,
    /// Give up on a read after this long without `m` shards.
    pub read_timeout: SimTime,
    /// Maximum client commands combined into one slot. `1` (the
    /// default) disables batching and preserves the classic one-command
    /// -per-slot behavior bit for bit.
    pub batch_max_ops: usize,
    /// How long the leader holds a non-full batch open for stragglers.
    pub batch_delay: SimTime,
    /// Maximum concurrently outstanding proposals (accept pipelining).
    /// `0` means unlimited, the classic behavior.
    pub pipeline: usize,
    /// Observability sink (metrics + tracing). Disabled by default; when
    /// enabled the replica counts messages by kind, tracks elections and
    /// ballot churn, and times phase-1/phase-2 round trips in sim time.
    pub obs: Obs,
}

impl Default for RsConfig {
    fn default() -> Self {
        RsConfig {
            m: 3,
            tick: SimTime::from_millis(50),
            heartbeat_every: SimTime::from_millis(200),
            election_timeout: (SimTime::from_millis(800), SimTime::from_millis(1600)),
            retry: SimTime::from_millis(400),
            read_timeout: SimTime::from_secs(5),
            batch_max_ops: 1,
            batch_delay: SimTime::from_millis(5),
            pipeline: 0,
            obs: Obs::disabled(),
        }
    }
}

#[derive(Clone, Debug)]
enum Phase {
    Follower,
    Preparing {
        promises: HashMap<NodeId, (Vec<RsAccepted>, Slot)>,
    },
    Leading,
}

#[derive(Clone, Debug)]
struct Proposal {
    value: SlotValue,
    /// Per-sub-value encoded put shards, aligned with the batch entries
    /// (length 1 for singleton values): `shards[j]` is `Some` iff
    /// sub-value `j` is a put, and then indexed by view position.
    shards: Vec<Option<Vec<Bytes>>>,
    acks: HashSet<NodeId>,
    sent_at: SimTime,
    /// Open per-operation propose span, a causal child of the request
    /// that triggered the proposal (inert when tracing is off).
    propose_span: SpanHandle,
    /// Open quorum-wait trace span, a causal child of `propose_span`.
    span: SpanHandle,
}

/// Pre-resolved instrument handles (see `paxos::replica`): per-message
/// cost is an atomic add, or a `None` check when disabled.
#[derive(Clone, Debug)]
struct RsMetrics {
    obs: Obs,
    sent: [Counter; RS_MSG_KINDS.len()],
    recv: [Counter; RS_MSG_KINDS.len()],
    elections: Counter,
    leadership: Counter,
    ballot_round: Gauge,
    phase1_micros: Histogram,
    phase2_micros: Histogram,
    reads_reconstructed: Counter,
    reads_unavailable: Counter,
    batches_proposed: Counter,
    batched_ops: Counter,
}

impl RsMetrics {
    fn new(obs: Obs) -> Self {
        RsMetrics {
            sent: std::array::from_fn(|i| {
                obs.counter(&format!("storage.msg_sent.{}", RS_MSG_KINDS[i]))
            }),
            recv: std::array::from_fn(|i| {
                obs.counter(&format!("storage.msg_recv.{}", RS_MSG_KINDS[i]))
            }),
            elections: obs.counter("storage.elections_started"),
            leadership: obs.counter("storage.leadership_acquired"),
            ballot_round: obs.gauge("storage.ballot_round"),
            phase1_micros: obs.histogram("storage.phase1_micros"),
            phase2_micros: obs.histogram("storage.phase2_micros"),
            reads_reconstructed: obs.counter("storage.reads_reconstructed"),
            reads_unavailable: obs.counter("storage.reads_unavailable"),
            batches_proposed: obs.counter("storage.batches_proposed"),
            batched_ops: obs.counter("storage.batched_ops"),
            obs,
        }
    }
}

/// Sim-time milliseconds as trace microseconds.
fn sim_micros(t: SimTime) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

#[derive(Clone, Debug, Default)]
struct SlotState {
    accepted: Option<(Ballot, WireValue)>,
    chosen: Option<WireValue>,
}

/// A client command the leader has admitted but not yet proposed,
/// waiting in the batch/pipeline queue.
#[derive(Clone, Debug)]
struct PendingCmd {
    client: NodeId,
    req_id: u64,
    cmd: StoreCmd,
    /// Trace context captured when the request arrived.
    trace: TraceContext,
    /// Admission time (batch age is measured from the oldest entry).
    at: SimTime,
}

#[derive(Clone, Debug)]
struct PendingRead {
    client: NodeId,
    req_id: u64,
    shards: BTreeMap<u8, Bytes>,
    started: SimTime,
    last_pull: SimTime,
}

/// An RS-Paxos storage replica.
#[derive(Clone, Debug)]
pub struct RsReplica {
    me: NodeId,
    cfg: RsConfig,
    view: Vec<NodeId>,
    codec: ReedSolomon,

    store: ShardStore,
    /// Leader-side full-object cache: key → (version, object).
    objects: HashMap<String, (u64, Bytes)>,
    slots: BTreeMap<Slot, SlotState>,
    commit_index: Slot,
    dedup: HashMap<NodeId, (u64, StoreResp)>,

    promised: Ballot,
    ballot: Ballot,
    phase: Phase,
    leader: Option<NodeId>,
    proposals: BTreeMap<Slot, Proposal>,
    next_slot: Slot,
    /// Admitted-but-unproposed commands (leader only, batching mode).
    pending: std::collections::VecDeque<PendingCmd>,
    /// Reads awaiting shard reconstruction: (key, version) → state.
    pending_reads: HashMap<(String, u64), PendingRead>,
    /// Lifetime count of batch slot values applied (survives reboots;
    /// chaos sweeps assert the batched path actually ran).
    batches_applied: u64,

    election_deadline: SimTime,
    last_heartbeat_sent: SimTime,
    rng: ChaCha8Rng,
    metrics: RsMetrics,
    /// Open phase-1 trace span and its start time while campaigning.
    phase1_open: Option<(SpanHandle, SimTime)>,
}

impl RsReplica {
    /// A replica with identity `me` in the fixed `view` running θ(m, n).
    pub fn new(me: NodeId, view: Vec<NodeId>, cfg: RsConfig, seed: u64) -> Self {
        let mut view = view;
        view.sort_unstable();
        view.dedup();
        assert!(view.contains(&me), "replica not in view");
        assert!(cfg.m >= 1 && cfg.m <= view.len(), "invalid erasure m");
        let codec = ReedSolomon::new(cfg.m, view.len());
        let metrics = RsMetrics::new(cfg.obs.clone());
        RsReplica {
            me,
            codec,
            view,
            cfg,
            store: ShardStore::new(),
            objects: HashMap::new(),
            slots: BTreeMap::new(),
            commit_index: 0,
            dedup: HashMap::new(),
            promised: Ballot::BOTTOM,
            ballot: Ballot::BOTTOM,
            phase: Phase::Follower,
            leader: None,
            proposals: BTreeMap::new(),
            next_slot: 0,
            pending: std::collections::VecDeque::new(),
            pending_reads: HashMap::new(),
            batches_applied: 0,
            election_deadline: SimTime::ZERO,
            last_heartbeat_sent: SimTime::ZERO,
            rng: ChaCha8Rng::seed_from_u64(seed ^ (me.0 as u64).wrapping_mul(0xD1B5_4A32)),
            metrics,
            phase1_open: None,
        }
    }

    // ------------------------------------------------------ introspection

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// Whether this replica currently leads.
    pub fn is_leader(&self) -> bool {
        matches!(self.phase, Phase::Leading)
    }

    /// The believed leader.
    pub fn leader_hint(&self) -> Option<NodeId> {
        self.leader
    }

    /// First unchosen slot.
    pub fn commit_index(&self) -> Slot {
        self.commit_index
    }

    /// The applied shard store.
    pub fn store(&self) -> &ShardStore {
        &self.store
    }

    /// The quorum size `⌈(n+m)/2⌉`.
    pub fn quorum(&self) -> usize {
        (self.view.len() + self.cfg.m).div_ceil(2)
    }

    /// Lifetime count of batch slot values this replica has applied.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// This replica's shard index (position in the sorted view).
    pub fn shard_idx(&self) -> u8 {
        self.idx_of(self.me)
    }

    fn idx_of(&self, node: NodeId) -> u8 {
        self.view
            .iter()
            .position(|&n| n == node)
            .expect("node in view") as u8
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        let (lo, hi) = self.cfg.election_timeout;
        let span = hi.as_millis().saturating_sub(lo.as_millis()).max(1);
        let jitter = self.rng.gen_range(0..span);
        self.election_deadline = now + lo + SimTime::from_millis(jitter);
    }

    fn step_down(&mut self, now: SimTime) {
        if let Some((span, _)) = self.phase1_open.take() {
            self.metrics.obs.trace.span_close(
                span,
                "storage.election",
                &[("won", FieldValue::Bool(false))],
            );
        }
        let open_spans: Vec<(SpanHandle, SpanHandle)> = self
            .proposals
            .values()
            .map(|p| (p.span, p.propose_span))
            .collect();
        for (span, propose_span) in open_spans {
            self.metrics.obs.trace.span_close(
                span,
                "storage.quorum_wait",
                &[("aborted", FieldValue::Bool(true))],
            );
            self.metrics.obs.trace.span_close(
                propose_span,
                "storage.propose",
                &[("aborted", FieldValue::Bool(true))],
            );
        }
        self.phase = Phase::Follower;
        self.proposals.clear();
        self.pending.clear();
        self.pending_reads.clear();
        self.reset_election_deadline(now);
    }

    /// Recover after a crash: drop volatile leadership state, keep the
    /// durable state — `promised`, the slot log, the shard store, dedup
    /// cache and commit index. Same contract as `paxos::Replica::reboot`:
    /// quorum intersection requires acceptor state to survive restarts, so
    /// the harness models a restart as a reboot with the disk intact.
    pub fn reboot(&mut self) {
        self.step_down(SimTime::ZERO);
        self.leader = None;
        // `on_start` re-arms the tick timer and election deadline at boot.
    }

    // ------------------------------------------------------ observability

    /// Send one message, counting it by kind.
    fn send_msg(&self, ctx: &mut Context<RsMsg>, to: NodeId, msg: RsMsg) {
        self.metrics.sent[msg.kind_index()].inc();
        ctx.send(to, msg);
    }

    /// [`RsReplica::send_msg`] under an explicit trace context, so
    /// per-operation protocol traffic (shard Accepts, Commits, retries)
    /// stays parented under the operation's propose span rather than
    /// whatever message happened to trigger the send.
    fn send_msg_traced(&self, ctx: &mut Context<RsMsg>, to: NodeId, msg: RsMsg, trace: TraceContext) {
        self.metrics.sent[msg.kind_index()].inc();
        ctx.send_traced(to, msg, trace);
    }

    /// Broadcast to the view (self excluded, matching
    /// [`Context::broadcast`]), counting each copy by kind.
    fn broadcast_msg(&self, ctx: &mut Context<RsMsg>, msg: RsMsg) {
        let fanout = self.view.iter().filter(|&&p| p != self.me).count();
        self.metrics.sent[msg.kind_index()].add(fanout as u64);
        ctx.broadcast(self.view.iter(), msg);
    }

    /// Drive the shared trace clock to the simulation's current time.
    fn sync_obs_time(&self, now: SimTime) {
        self.metrics.obs.set_time_micros(sim_micros(now));
    }

    // ----------------------------------------------------------- election

    fn start_election(&mut self, ctx: &mut Context<RsMsg>) {
        let round = self.promised.round.max(self.ballot.round) + 1;
        self.ballot = Ballot {
            round,
            node: self.me,
        };
        self.promised = self.ballot;
        self.leader = None;
        let mut promises = HashMap::new();
        promises.insert(
            self.me,
            (self.accepted_tail(self.commit_index), self.commit_index),
        );
        self.phase = Phase::Preparing { promises };
        self.reset_election_deadline(ctx.now);
        self.metrics.elections.inc();
        self.metrics.ballot_round.set(round as f64);
        if let Some((span, _)) = self.phase1_open.take() {
            // A re-election supersedes the previous campaign.
            self.metrics.obs.trace.span_close(
                span,
                "storage.election",
                &[("won", FieldValue::Bool(false))],
            );
        }
        let span = self.metrics.obs.trace.span_open(
            "storage.election",
            &[
                ("node", FieldValue::U64(self.me.0 as u64)),
                ("round", FieldValue::U64(round)),
            ],
        );
        self.phase1_open = Some((span, ctx.now));
        let msg = RsMsg::Prepare {
            ballot: self.ballot,
            from_slot: self.commit_index,
        };
        self.broadcast_msg(ctx, msg);
        self.try_become_leader(ctx);
    }

    fn accepted_tail(&self, from: Slot) -> Vec<RsAccepted> {
        self.slots
            .range(from..)
            .filter(|(_, st)| st.chosen.is_none())
            .filter_map(|(&slot, st)| {
                st.accepted.as_ref().map(|(ballot, value)| RsAccepted {
                    slot,
                    ballot: *ballot,
                    value: value.clone(),
                })
            })
            .collect()
    }

    fn chosen_tail_for(&self, from: Slot, dest: NodeId) -> Vec<RsChosen> {
        let dest_idx = self.idx_of(dest);
        self.slots
            .range(from..)
            .filter_map(|(&slot, st)| {
                st.chosen.as_ref().map(|v| RsChosen {
                    slot,
                    value: self.reshape_for(v, slot, dest_idx),
                })
            })
            .collect()
    }

    /// Produce the destination-specific wire value for a chosen slot:
    /// re-encode the shard when the full object is at hand, otherwise send
    /// metadata so the destination at least tracks versions.
    fn reshape_for(&self, chosen: &WireValue, slot: Slot, dest_idx: u8) -> WireValue {
        match chosen {
            // A batched put's version is the shared slot, so each sub
            // reshapes exactly like a singleton.
            WireValue::Batch(subs) => WireValue::Batch(
                subs.iter()
                    .map(|s| self.reshape_for(s, slot, dest_idx))
                    .collect(),
            ),
            WireValue::PutShard {
                client,
                req_id,
                key,
                ..
            } => {
                if let Some((version, object)) = self.objects.get(key) {
                    if *version == slot {
                        let shards = self.codec.encode_object(object);
                        return WireValue::PutShard {
                            client: *client,
                            req_id: *req_id,
                            key: key.clone(),
                            shard_idx: dest_idx,
                            shard: shards[dest_idx as usize].clone(),
                        };
                    }
                }
                // No object: metadata-only (empty shard marker).
                WireValue::PutShard {
                    client: *client,
                    req_id: *req_id,
                    key: key.clone(),
                    shard_idx: dest_idx,
                    shard: Bytes::new(),
                }
            }
            other => other.clone(),
        }
    }

    fn try_become_leader(&mut self, ctx: &mut Context<RsMsg>) {
        let quorum = self.quorum();
        let Phase::Preparing { promises } = &self.phase else {
            return;
        };
        if promises.len() < quorum {
            return;
        }
        let promises = promises.clone();
        // Per slot: find the highest ballot and gather its shards.
        struct Merge {
            ballot: Ballot,
            values: Vec<WireValue>,
        }
        impl Default for Merge {
            fn default() -> Self {
                Merge {
                    ballot: Ballot::BOTTOM,
                    values: Vec::new(),
                }
            }
        }
        let mut merged: BTreeMap<Slot, Merge> = BTreeMap::new();
        let mut max_commit = self.commit_index;
        let mut best_peer = self.me;
        for (&peer, (accepted, ci)) in &promises {
            if *ci > max_commit {
                max_commit = *ci;
                best_peer = peer;
            }
            for e in accepted {
                let m = merged.entry(e.slot).or_default();
                if e.ballot > m.ballot {
                    m.ballot = e.ballot;
                    m.values = vec![e.value.clone()];
                } else if e.ballot == m.ballot {
                    m.values.push(e.value.clone());
                }
            }
        }
        self.phase = Phase::Leading;
        self.leader = Some(self.me);
        self.metrics.leadership.inc();
        if let Some((span, started)) = self.phase1_open.take() {
            self.metrics
                .phase1_micros
                .record(sim_micros(ctx.now.saturating_sub(started)));
            self.metrics.obs.trace.span_close(
                span,
                "storage.election",
                &[("won", FieldValue::Bool(true))],
            );
        }
        self.last_heartbeat_sent = SimTime::ZERO;
        // Fresh proposals must start past every slot already decided, not
        // just past the merged *accepted* entries: a chosen slot adopted
        // from a promise can sit beyond a gap (commit_index stalls at the
        // gap), and a peer's commit index proves everything below it was
        // chosen somewhere. Assigning a fresh command to such a slot would
        // overwrite a decided value.
        let top = merged.keys().next_back().map(|s| s + 1).unwrap_or(0);
        let chosen_top = self
            .slots
            .iter()
            .rev()
            .find(|(_, st)| st.chosen.is_some())
            .map(|(&s, _)| s + 1)
            .unwrap_or(0);
        self.next_slot = self
            .commit_index
            .max(top)
            .max(chosen_top)
            .max(max_commit);
        let mut plans: Vec<(Slot, SlotValue)> = Vec::new();
        for slot in self.commit_index..self.next_slot {
            if self
                .slots
                .get(&slot)
                .map(|st| st.chosen.is_some())
                .unwrap_or(false)
            {
                continue;
            }
            let value = merged
                .get(&slot)
                .map(|m| self.recover_value(m.ballot, &m.values))
                .unwrap_or(SlotValue::Noop);
            plans.push((slot, value));
        }
        for (slot, value) in plans {
            // Re-proposals triggered by the view change are causally the
            // election's work: parent them under whatever message closed
            // the quorum (usually the deciding Promise).
            let trace = ctx.trace();
            self.send_accepts(slot, value, trace, ctx);
        }
        if max_commit > self.commit_index && best_peer != self.me {
            self.send_msg(
                ctx,
                best_peer,
                RsMsg::CatchupRequest {
                    from_slot: self.commit_index,
                },
            );
        }
        self.send_heartbeat(ctx);
    }

    /// Reconstruct a slot value from the highest-ballot shards seen in a
    /// prepare quorum. A chosen put always yields ≥ m shards here
    /// (quorum-intersection ≥ m); fewer shards prove the value was never
    /// chosen, so a no-op is safe. For batches the same argument holds
    /// per sub-put — a chosen batch yields ≥ m shards for *every* sub —
    /// so any unrecoverable sub proves the whole batch was never chosen
    /// and the slot no-ops atomically (a batch is never partially
    /// recovered).
    fn recover_value(&self, _ballot: Ballot, values: &[WireValue]) -> SlotValue {
        match &values[0] {
            WireValue::Batch(subs) => {
                let mut out = Vec::with_capacity(subs.len());
                for (j, sub) in subs.iter().enumerate() {
                    let copies: Vec<&WireValue> = values
                        .iter()
                        .filter_map(|v| match v {
                            WireValue::Batch(s) if s.len() == subs.len() => s.get(j),
                            _ => None,
                        })
                        .collect();
                    match self.recover_one(sub, &copies) {
                        Some(v) => out.push(v),
                        None => return SlotValue::Noop,
                    }
                }
                SlotValue::Batch(out)
            }
            first => {
                let copies: Vec<&WireValue> = values.iter().collect();
                self.recover_one(first, &copies).unwrap_or(SlotValue::Noop)
            }
        }
    }

    /// Recover one (sub-)value from the highest-ballot copies of it.
    /// `None` means a put with too few shards to reconstruct.
    fn recover_one(&self, first: &WireValue, copies: &[&WireValue]) -> Option<SlotValue> {
        match first {
            WireValue::Get {
                client,
                req_id,
                key,
            } => Some(SlotValue::Get {
                client: *client,
                req_id: *req_id,
                key: key.clone(),
            }),
            WireValue::Delete {
                client,
                req_id,
                key,
            } => Some(SlotValue::Delete {
                client: *client,
                req_id: *req_id,
                key: key.clone(),
            }),
            WireValue::Noop => Some(SlotValue::Noop),
            // Nested batches violate the wire invariant; treat as
            // unrecoverable rather than recurse.
            WireValue::Batch(_) => None,
            WireValue::PutShard {
                client,
                req_id,
                key,
                ..
            } => {
                let mut slots: Vec<Option<Vec<u8>>> = vec![None; self.view.len()];
                let mut have = 0usize;
                for v in copies {
                    if let WireValue::PutShard {
                        shard_idx, shard, ..
                    } = v
                    {
                        if !shard.is_empty() && slots[*shard_idx as usize].is_none() {
                            slots[*shard_idx as usize] = Some(shard.to_vec());
                            have += 1;
                        }
                    }
                }
                if have >= self.codec.data_shards() {
                    if let Ok(object) = self.codec.decode_object(&slots) {
                        return Some(SlotValue::Put {
                            client: *client,
                            req_id: *req_id,
                            key: key.clone(),
                            object: Bytes::from(object),
                        });
                    }
                }
                None
            }
        }
    }

    // --------------------------------------------------------- proposing

    /// Encode the per-sub-value put shards for a proposal (aligned with
    /// [`Proposal::shards`]).
    fn encode_shards(&self, value: &SlotValue) -> Vec<Option<Vec<Bytes>>> {
        let encode_one = |v: &SlotValue| match v {
            SlotValue::Put { object, .. } => Some(self.codec.encode_object(object)),
            _ => None,
        };
        match value {
            SlotValue::Batch(subs) => subs.iter().map(encode_one).collect(),
            other => vec![encode_one(other)],
        }
    }

    fn wire_for(&self, value: &SlotValue, shards: &[Option<Vec<Bytes>>], dest_idx: u8) -> WireValue {
        match value {
            SlotValue::Batch(subs) => WireValue::Batch(
                subs.iter()
                    .zip(shards)
                    .map(|(s, sh)| self.wire_one(s, sh.as_ref(), dest_idx))
                    .collect(),
            ),
            other => self.wire_one(other, shards[0].as_ref(), dest_idx),
        }
    }

    fn wire_one(&self, value: &SlotValue, shards: Option<&Vec<Bytes>>, dest_idx: u8) -> WireValue {
        match value {
            SlotValue::Put {
                client,
                req_id,
                key,
                ..
            } => WireValue::PutShard {
                client: *client,
                req_id: *req_id,
                key: key.clone(),
                shard_idx: dest_idx,
                shard: shards.expect("puts carry shards")[dest_idx as usize].clone(),
            },
            SlotValue::Get {
                client,
                req_id,
                key,
            } => WireValue::Get {
                client: *client,
                req_id: *req_id,
                key: key.clone(),
            },
            SlotValue::Delete {
                client,
                req_id,
                key,
            } => WireValue::Delete {
                client: *client,
                req_id: *req_id,
                key: key.clone(),
            },
            SlotValue::Batch(_) => unreachable!("batches are never nested"),
            SlotValue::Noop => WireValue::Noop,
        }
    }

    fn send_accepts(
        &mut self,
        slot: Slot,
        value: SlotValue,
        trace: TraceContext,
        ctx: &mut Context<RsMsg>,
    ) {
        let shards = self.encode_shards(&value);
        let ballot = self.ballot;
        let my_idx = self.shard_idx();
        let my_wire = self.wire_for(&value, &shards, my_idx);
        self.slots.entry(slot).or_default().accepted = Some((ballot, my_wire));
        let mut acks = HashSet::new();
        acks.insert(self.me);
        // Per-operation spans: the propose span is a causal child of the
        // request (or election) that produced the value; the quorum wait
        // nests inside it and the per-shard phase-2 sends ride its context.
        let propose_span = self.metrics.obs.trace.span_open_causal(
            "storage.propose",
            trace,
            &[
                ("slot", FieldValue::U64(slot)),
                ("node", FieldValue::U64(self.me.0 as u64)),
            ],
        );
        let span = self.metrics.obs.trace.span_open_causal(
            "storage.quorum_wait",
            propose_span.context(),
            &[("slot", FieldValue::U64(slot))],
        );
        // Send each peer its own shard.
        let peers = self.view.clone();
        for peer in peers {
            if peer == self.me {
                continue;
            }
            let wire = self.wire_for(&value, &shards, self.idx_of(peer));
            self.send_msg_traced(
                ctx,
                peer,
                RsMsg::Accept {
                    ballot,
                    slot,
                    value: wire,
                },
                span.context(),
            );
        }
        self.proposals.insert(
            slot,
            Proposal {
                value,
                shards,
                acks,
                sent_at: ctx.now,
                propose_span,
                span,
            },
        );
        self.maybe_choose(slot, ctx);
    }

    /// Whether batching/pipelining is configured at all. When not, the
    /// request path is byte-identical to the classic one-command-per-slot
    /// protocol.
    fn batching_enabled(&self) -> bool {
        self.cfg.batch_max_ops > 1 || self.cfg.pipeline > 0
    }

    /// Whether `value` carries `(client, req_id)` (descending into
    /// batches).
    fn value_matches(value: &SlotValue, client: NodeId, req_id: u64) -> bool {
        match value {
            SlotValue::Put {
                client: c,
                req_id: r,
                ..
            }
            | SlotValue::Get {
                client: c,
                req_id: r,
                ..
            }
            | SlotValue::Delete {
                client: c,
                req_id: r,
                ..
            } => *c == client && *r == req_id,
            SlotValue::Batch(subs) => subs
                .iter()
                .any(|s| Self::value_matches(s, client, req_id)),
            SlotValue::Noop => false,
        }
    }

    /// Dedup-cache admission: answer resends from the cache, drop stale
    /// requests. Returns `false` when the request is already settled.
    fn admit(&mut self, client: NodeId, req_id: u64, ctx: &mut Context<RsMsg>) -> bool {
        if let Some((last, resp)) = self.dedup.get(&client) {
            if *last == req_id {
                let resp = resp.clone();
                self.send_msg(ctx, client, RsMsg::Response { req_id, resp });
                return false;
            }
            if *last > req_id {
                return false;
            }
        }
        !self
            .proposals
            .values()
            .any(|p| Self::value_matches(&p.value, client, req_id))
    }

    fn cmd_value(client: NodeId, req_id: u64, cmd: StoreCmd) -> SlotValue {
        match cmd {
            StoreCmd::Put { key, object } => SlotValue::Put {
                client,
                req_id,
                key,
                object,
            },
            StoreCmd::Get { key } => SlotValue::Get {
                client,
                req_id,
                key,
            },
            StoreCmd::Delete { key } => SlotValue::Delete {
                client,
                req_id,
                key,
            },
        }
    }

    /// Never allocate a slot that is already decided (a commit adopted
    /// from a peer can land beyond the contiguous prefix).
    fn allocate_slot(&mut self) -> Slot {
        while self
            .slots
            .get(&self.next_slot)
            .is_some_and(|st| st.chosen.is_some())
        {
            self.next_slot += 1;
        }
        let slot = self.next_slot;
        self.next_slot += 1;
        slot
    }

    fn propose_cmd(
        &mut self,
        client: NodeId,
        req_id: u64,
        cmd: StoreCmd,
        trace: TraceContext,
        ctx: &mut Context<RsMsg>,
    ) {
        if !self.admit(client, req_id, ctx) {
            return;
        }
        let value = Self::cmd_value(client, req_id, cmd);
        let slot = self.allocate_slot();
        self.send_accepts(slot, value, trace, ctx);
    }

    /// Batching-mode admission: queue the command and flush what the
    /// batch/pipeline policy allows.
    fn enqueue_cmd(
        &mut self,
        client: NodeId,
        req_id: u64,
        cmd: StoreCmd,
        trace: TraceContext,
        ctx: &mut Context<RsMsg>,
    ) {
        if !self.admit(client, req_id, ctx) {
            return;
        }
        if self
            .pending
            .iter()
            .any(|p| p.client == client && p.req_id == req_id)
        {
            return;
        }
        self.pending.push_back(PendingCmd {
            client,
            req_id,
            cmd,
            trace,
            at: ctx.now,
        });
        self.maybe_flush_batches(false, ctx);
    }

    /// Turn the pending queue into proposals, honoring the pipeline cap,
    /// the batch size cap, the batch delay, and the batch composition
    /// invariants (one entry per client, one put per key — a batched
    /// put's version is the shared slot).
    fn maybe_flush_batches(&mut self, force: bool, ctx: &mut Context<RsMsg>) {
        loop {
            if self.pending.is_empty() || !matches!(self.phase, Phase::Leading) {
                return;
            }
            if self.cfg.pipeline > 0 && self.proposals.len() >= self.cfg.pipeline {
                return;
            }
            let mut clients = HashSet::new();
            let mut put_keys = HashSet::new();
            let mut take = 0usize;
            for p in &self.pending {
                if take >= self.cfg.batch_max_ops || !clients.insert(p.client) {
                    break;
                }
                if let StoreCmd::Put { key, .. } = &p.cmd {
                    if !put_keys.insert(key.clone()) {
                        break;
                    }
                }
                take += 1;
            }
            // A composition conflict means waiting cannot grow this
            // batch further; only a genuinely short batch is worth
            // holding open for the delay window.
            let full = take >= self.cfg.batch_max_ops || take < self.pending.len();
            let oldest = self.pending.front().expect("nonempty").at;
            let age = ctx.now.saturating_sub(oldest);
            if !force && !full && age < self.cfg.batch_delay {
                let wait = self.cfg.batch_delay.saturating_sub(age);
                ctx.set_timer(wait.max(SimTime::from_millis(1)), BATCH_TOKEN);
                return;
            }
            let entries: Vec<PendingCmd> = self.pending.drain(..take).collect();
            let trace = entries[0].trace;
            for e in &entries[1..] {
                // Later entries' causal chains join the batch here.
                self.metrics.obs.trace.event_causal(
                    "storage.batch_join",
                    e.trace,
                    &[("client", FieldValue::U64(e.client.0 as u64))],
                );
            }
            let value = if entries.len() == 1 {
                let e = entries.into_iter().next().expect("len 1");
                Self::cmd_value(e.client, e.req_id, e.cmd)
            } else {
                self.metrics.batches_proposed.inc();
                self.metrics.batched_ops.add(entries.len() as u64);
                SlotValue::Batch(
                    entries
                        .into_iter()
                        .map(|e| Self::cmd_value(e.client, e.req_id, e.cmd))
                        .collect(),
                )
            };
            let slot = self.allocate_slot();
            self.send_accepts(slot, value, trace, ctx);
        }
    }

    fn maybe_choose(&mut self, slot: Slot, ctx: &mut Context<RsMsg>) {
        let quorum = self.quorum();
        let Some(p) = self.proposals.get(&slot) else {
            return;
        };
        if p.acks.len() < quorum {
            return;
        }
        let p = self.proposals.remove(&slot).expect("present");
        self.metrics
            .phase2_micros
            .record(sim_micros(ctx.now.saturating_sub(p.sent_at)));
        self.metrics.obs.trace.span_close(
            p.span,
            "storage.quorum_wait",
            &[
                ("slot", FieldValue::U64(slot)),
                ("acks", FieldValue::U64(p.acks.len() as u64)),
            ],
        );
        let propose_ctx = p.propose_span.context();
        self.metrics.obs.trace.event_causal(
            "storage.commit",
            propose_ctx,
            &[("slot", FieldValue::U64(slot))],
        );
        self.metrics.obs.trace.span_close(
            p.propose_span,
            "storage.propose",
            &[("slot", FieldValue::U64(slot))],
        );
        let my_idx = self.shard_idx();
        let my_wire = self.wire_for(&p.value, &p.shards, my_idx);
        // Chosen values are write-once (mirroring `note_chosen`): if a
        // commit for this slot was adopted while our proposal was in
        // flight, Paxos guarantees the decisions agree — keep the stored
        // entry.
        let st = self.slots.entry(slot).or_default();
        if st.chosen.is_none() {
            st.chosen = Some(my_wire);
        }
        // Leader-side extras before generic apply: cache full objects
        // (each batched put shares the slot as its version).
        let puts: Vec<(String, Bytes)> = match &p.value {
            SlotValue::Put { key, object, .. } => vec![(key.clone(), object.clone())],
            SlotValue::Batch(subs) => subs
                .iter()
                .filter_map(|s| match s {
                    SlotValue::Put { key, object, .. } => Some((key.clone(), object.clone())),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        for (key, object) in puts {
            self.objects.insert(key, (slot, object));
        }
        // Commit to every peer with its own shard.
        let peers = self.view.clone();
        for peer in peers {
            if peer == self.me {
                continue;
            }
            let wire = self.wire_for(&p.value, &p.shards, self.idx_of(peer));
            self.send_msg_traced(
                ctx,
                peer,
                RsMsg::Commit {
                    entry: RsChosen { slot, value: wire },
                },
                propose_ctx,
            );
        }
        self.advance(ctx);
        if self.batching_enabled() {
            // A retired proposal frees a pipeline slot.
            self.maybe_flush_batches(false, ctx);
        }
    }

    // ----------------------------------------------------------- learning

    /// Upgrade metadata-only put records in `existing` once real shard
    /// bytes arrive, sub-value by sub-value for batches. Both sides
    /// describe the same decided slot for the same destination, so only
    /// the shard bytes can differ.
    fn upgrade_chosen(existing: &mut WireValue, incoming: WireValue) {
        match (existing, incoming) {
            (
                WireValue::PutShard { shard: e, .. },
                WireValue::PutShard { shard: i, .. },
            ) if e.is_empty() && !i.is_empty() => {
                *e = i;
            }
            (WireValue::Batch(es), WireValue::Batch(is)) if es.len() == is.len() => {
                for (e, i) in es.iter_mut().zip(is) {
                    Self::upgrade_chosen(e, i);
                }
            }
            _ => {}
        }
    }

    fn note_chosen(&mut self, entry: RsChosen, ctx: &mut Context<RsMsg>) {
        let st = self.slots.entry(entry.slot).or_default();
        match st.chosen.as_mut() {
            None => st.chosen = Some(entry.value),
            Some(existing) => Self::upgrade_chosen(existing, entry.value),
        }
        self.advance(ctx);
    }

    fn advance(&mut self, ctx: &mut Context<RsMsg>) {
        while let Some(value) = self
            .slots
            .get(&self.commit_index)
            .and_then(|st| st.chosen.clone())
        {
            let slot = self.commit_index;
            self.commit_index += 1;
            self.apply(slot, value, ctx);
        }
    }

    fn apply(&mut self, slot: Slot, value: WireValue, ctx: &mut Context<RsMsg>) {
        // Applies triggered by a traced Commit/Accepted land inside the
        // operation's trace; catch-up applies carry their own context.
        self.metrics.obs.trace.event_causal(
            "storage.apply",
            ctx.trace(),
            &[
                ("slot", FieldValue::U64(slot)),
                ("node", FieldValue::U64(self.me.0 as u64)),
            ],
        );
        match value {
            WireValue::Batch(subs) => {
                // Sub-values apply in order; the slot is one apply step,
                // so no other slot's work interleaves (atomicity).
                self.batches_applied += 1;
                for sub in subs {
                    self.apply_one(slot, sub, ctx);
                }
            }
            other => self.apply_one(slot, other, ctx),
        }
    }

    fn apply_one(&mut self, slot: Slot, value: WireValue, ctx: &mut Context<RsMsg>) {
        match value {
            WireValue::Noop | WireValue::Batch(_) => {}
            WireValue::PutShard {
                client,
                req_id,
                key,
                shard_idx,
                shard,
            } => {
                let bytes = (!shard.is_empty()).then_some(shard);
                self.store.apply_put(&key, slot, shard_idx, bytes);
                let resp = StoreResp::Stored { version: slot };
                self.finish(client, req_id, resp, ctx);
            }
            WireValue::Delete {
                client,
                req_id,
                key,
            } => {
                self.store.apply_delete(&key, slot);
                self.objects.remove(&key);
                self.finish(client, req_id, StoreResp::Deleted, ctx);
            }
            WireValue::Get {
                client,
                req_id,
                key,
            } => {
                if !matches!(self.phase, Phase::Leading) {
                    // Followers only note the read in dedup-free fashion.
                    return;
                }
                match self.store.get(&key) {
                    None => {
                        self.finish(client, req_id, StoreResp::Value { object: None }, ctx);
                    }
                    Some(entry) => {
                        let version = entry.version;
                        if let Some((v, object)) = self.objects.get(&key) {
                            if *v == version {
                                let resp = StoreResp::Value {
                                    object: Some(object.clone()),
                                };
                                self.finish(client, req_id, resp, ctx);
                                return;
                            }
                        }
                        // Reconstruct: gather shards from peers.
                        let mut shards = BTreeMap::new();
                        if let Some(bytes) = &entry.shard {
                            shards.insert(entry.shard_idx, bytes.clone());
                        }
                        self.pending_reads.insert(
                            (key.clone(), version),
                            PendingRead {
                                client,
                                req_id,
                                shards,
                                started: ctx.now,
                                last_pull: ctx.now,
                            },
                        );
                        self.broadcast_msg(ctx, RsMsg::ShardPull { key, version });
                        self.try_finish_read_queue(ctx);
                    }
                }
            }
        }
    }

    fn finish(&mut self, client: NodeId, req_id: u64, resp: StoreResp, ctx: &mut Context<RsMsg>) {
        let newer = self
            .dedup
            .get(&client)
            .map(|(last, _)| *last < req_id)
            .unwrap_or(true);
        if newer {
            self.dedup.insert(client, (req_id, resp.clone()));
        }
        if matches!(self.phase, Phase::Leading) {
            self.send_msg(ctx, client, RsMsg::Response { req_id, resp });
        }
    }

    fn try_finish_read_queue(&mut self, ctx: &mut Context<RsMsg>) {
        let m = self.codec.data_shards();
        let n = self.view.len();
        let done: Vec<(String, u64)> = self
            .pending_reads
            .iter()
            .filter(|(_, r)| r.shards.len() >= m)
            .map(|(k, _)| k.clone())
            .collect();
        for key_ver in done {
            let r = self.pending_reads.remove(&key_ver).expect("present");
            let mut slots: Vec<Option<Vec<u8>>> = vec![None; n];
            for (idx, bytes) in &r.shards {
                slots[*idx as usize] = Some(bytes.to_vec());
            }
            let resp = match self.codec.decode_object(&slots) {
                Ok(object) => {
                    let object = Bytes::from(object);
                    self.objects
                        .insert(key_ver.0.clone(), (key_ver.1, object.clone()));
                    self.metrics.reads_reconstructed.inc();
                    StoreResp::Value {
                        object: Some(object),
                    }
                }
                Err(_) => {
                    self.metrics.reads_unavailable.inc();
                    StoreResp::Unavailable
                }
            };
            self.finish(r.client, r.req_id, resp, ctx);
        }
    }

    // ---------------------------------------------------------- heartbeat

    fn send_heartbeat(&mut self, ctx: &mut Context<RsMsg>) {
        self.last_heartbeat_sent = ctx.now;
        self.broadcast_msg(
            ctx,
            RsMsg::Heartbeat {
                ballot: self.ballot,
                commit_index: self.commit_index,
            },
        );
    }

    // ---------------------------------------------------- actor callbacks

    /// Boot.
    pub fn on_start(&mut self, ctx: &mut Context<RsMsg>) {
        self.reset_election_deadline(ctx.now);
        ctx.set_timer(self.cfg.tick, TICK_TOKEN);
    }

    /// Periodic bookkeeping.
    pub fn on_timer(&mut self, t: TimerToken, ctx: &mut Context<RsMsg>) {
        self.sync_obs_time(ctx.now);
        if t == BATCH_TOKEN {
            self.maybe_flush_batches(false, ctx);
            return;
        }
        ctx.set_timer(self.cfg.tick, TICK_TOKEN);
        match self.phase {
            Phase::Leading => {
                if ctx.now.saturating_sub(self.last_heartbeat_sent) >= self.cfg.heartbeat_every {
                    self.send_heartbeat(ctx);
                }
                if self.batching_enabled() && !self.pending.is_empty() {
                    // Backstop: a lost batch timer must not strand the
                    // queue past the delay window.
                    self.maybe_flush_batches(false, ctx);
                }
                // Retry stale proposals (per-destination shards).
                let stale: Vec<Slot> = self
                    .proposals
                    .iter()
                    .filter(|(_, p)| ctx.now.saturating_sub(p.sent_at) >= self.cfg.retry)
                    .map(|(&s, _)| s)
                    .collect();
                let ballot = self.ballot;
                for slot in stale {
                    // Retries are causally part of the original quorum
                    // wait, not the timer that noticed the staleness.
                    let (value, shards, trace) = {
                        let p = self.proposals.get_mut(&slot).expect("stale slot present");
                        p.sent_at = ctx.now;
                        (p.value.clone(), p.shards.clone(), p.span.context())
                    };
                    let peers = self.view.clone();
                    for peer in peers {
                        if peer == self.me {
                            continue;
                        }
                        let wire = self.wire_for(&value, &shards, self.idx_of(peer));
                        self.send_msg_traced(
                            ctx,
                            peer,
                            RsMsg::Accept {
                                ballot,
                                slot,
                                value: wire,
                            },
                            trace,
                        );
                    }
                }
                // Retry / expire pending reads.
                let mut expired = Vec::new();
                let mut repull = Vec::new();
                for (kv, r) in &self.pending_reads {
                    if ctx.now.saturating_sub(r.started) >= self.cfg.read_timeout {
                        expired.push(kv.clone());
                    } else if ctx.now.saturating_sub(r.last_pull) >= self.cfg.retry {
                        repull.push(kv.clone());
                    }
                }
                for kv in expired {
                    let r = self.pending_reads.remove(&kv).expect("present");
                    self.finish(r.client, r.req_id, StoreResp::Unavailable, ctx);
                }
                for (key, version) in repull {
                    if let Some(r) = self.pending_reads.get_mut(&(key.clone(), version)) {
                        r.last_pull = ctx.now;
                    }
                    self.broadcast_msg(ctx, RsMsg::ShardPull { key, version });
                }
            }
            _ => {
                if ctx.now >= self.election_deadline {
                    self.start_election(ctx);
                }
            }
        }
    }

    /// Message dispatch.
    pub fn on_message(&mut self, from: NodeId, msg: RsMsg, ctx: &mut Context<RsMsg>) {
        self.sync_obs_time(ctx.now);
        self.metrics.recv[msg.kind_index()].inc();
        match msg {
            RsMsg::Prepare { ballot, from_slot } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if ballot.node != self.me {
                        if matches!(self.phase, Phase::Leading | Phase::Preparing { .. }) {
                            self.step_down(ctx.now);
                        }
                        self.leader = None;
                        self.reset_election_deadline(ctx.now);
                    }
                    let reply = RsMsg::Promise {
                        ballot,
                        accepted: self.accepted_tail(from_slot),
                        chosen: self.chosen_tail_for(from_slot, from),
                        commit_index: self.commit_index,
                    };
                    self.send_msg(ctx, from, reply);
                } else {
                    self.send_msg(
                        ctx,
                        from,
                        RsMsg::Reject {
                            promised: self.promised,
                        },
                    );
                }
            }
            RsMsg::Promise {
                ballot,
                accepted,
                chosen,
                commit_index,
            } => {
                // Note: `chosen` entries are reshaped for *us* by the
                // sender, so they are safe to adopt directly.
                for e in chosen {
                    self.note_chosen(e, ctx);
                }
                if ballot != self.ballot {
                    return;
                }
                if let Phase::Preparing { promises } = &mut self.phase {
                    promises.insert(from, (accepted, commit_index));
                    self.try_become_leader(ctx);
                }
            }
            RsMsg::Accept {
                ballot,
                slot,
                value,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if ballot.node != self.me {
                        if matches!(self.phase, Phase::Leading | Phase::Preparing { .. }) {
                            self.step_down(ctx.now);
                        }
                        self.leader = Some(ballot.node);
                        self.reset_election_deadline(ctx.now);
                    }
                    self.slots.entry(slot).or_default().accepted = Some((ballot, value));
                    self.send_msg(ctx, from, RsMsg::Accepted { ballot, slot });
                } else {
                    self.send_msg(
                        ctx,
                        from,
                        RsMsg::Reject {
                            promised: self.promised,
                        },
                    );
                }
            }
            RsMsg::Accepted { ballot, slot } => {
                if ballot == self.ballot && matches!(self.phase, Phase::Leading) {
                    if let Some(p) = self.proposals.get_mut(&slot) {
                        p.acks.insert(from);
                        self.maybe_choose(slot, ctx);
                    }
                }
            }
            RsMsg::Reject { promised } => {
                if promised > self.promised {
                    self.promised = promised;
                }
                if promised > self.ballot
                    && matches!(self.phase, Phase::Leading | Phase::Preparing { .. })
                {
                    self.step_down(ctx.now);
                }
            }
            RsMsg::Commit { entry } => self.note_chosen(entry, ctx),
            RsMsg::Heartbeat {
                ballot,
                commit_index,
            } => {
                if ballot >= self.promised {
                    self.promised = ballot;
                    if ballot.node != self.me {
                        if matches!(self.phase, Phase::Leading | Phase::Preparing { .. }) {
                            self.step_down(ctx.now);
                        }
                        self.leader = Some(ballot.node);
                    }
                    self.reset_election_deadline(ctx.now);
                    if commit_index > self.commit_index {
                        self.send_msg(
                            ctx,
                            ballot.node,
                            RsMsg::CatchupRequest {
                                from_slot: self.commit_index,
                            },
                        );
                    }
                }
            }
            RsMsg::CatchupRequest { from_slot } => {
                let mut entries = self.chosen_tail_for(from_slot, from);
                entries.truncate(512);
                self.send_msg(ctx, from, RsMsg::CatchupReply { entries });
            }
            RsMsg::CatchupReply { entries } => {
                for e in entries {
                    self.note_chosen(e, ctx);
                }
            }
            RsMsg::ShardPull { key, version } => {
                if let Some(entry) = self.store.get(&key) {
                    if entry.version == version {
                        if let Some(shard) = &entry.shard {
                            let push = RsMsg::ShardPush {
                                key,
                                version,
                                shard_idx: entry.shard_idx,
                                shard: shard.clone(),
                            };
                            self.send_msg(ctx, from, push);
                        }
                    }
                }
            }
            RsMsg::ShardPush {
                key,
                version,
                shard_idx,
                shard,
            } => {
                if let Some(r) = self.pending_reads.get_mut(&(key, version)) {
                    r.shards.entry(shard_idx).or_insert(shard);
                    self.try_finish_read_queue(ctx);
                }
            }
            RsMsg::Request {
                client,
                req_id,
                cmd,
            } => match self.phase {
                Phase::Leading => {
                    let trace = ctx.trace();
                    if self.batching_enabled() {
                        self.enqueue_cmd(client, req_id, cmd, trace, ctx);
                    } else {
                        self.propose_cmd(client, req_id, cmd, trace, ctx);
                    }
                }
                _ => {
                    if let Some(leader) = self.leader {
                        if leader != self.me {
                            self.send_msg(
                                ctx,
                                leader,
                                RsMsg::Request {
                                    client,
                                    req_id,
                                    cmd,
                                },
                            );
                        }
                    }
                }
            },
            RsMsg::Response { .. } => {}
        }
    }
}
