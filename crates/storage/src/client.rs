//! Closed-loop storage client (mirrors `paxos::client` for the RS-Paxos
//! message set).

use std::collections::VecDeque;

use obs::{FieldValue, Obs, SpanHandle};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::{Context, NodeId, SimTime, TimerToken};

use crate::msg::{RsMsg, StoreCmd, StoreResp};

const TICK_TOKEN: TimerToken = TimerToken(1);

/// Sim-time milliseconds as trace microseconds.
fn sim_micros(t: SimTime) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

/// One operation in the client history.
#[derive(Clone, Debug)]
pub struct RsCompletedOp {
    /// Request id.
    pub req_id: u64,
    /// The command.
    pub cmd: StoreCmd,
    /// Issue time.
    pub issued_at: SimTime,
    /// Completion time and response, when done.
    pub completed: Option<(SimTime, StoreResp)>,
}

#[derive(Clone, Debug)]
struct InFlight {
    req_id: u64,
    last_sent: SimTime,
    target: usize,
    /// Root span of the operation's causal trace; every send (and
    /// retransmit) of the request carries `span.context()`, so the whole
    /// submit → propose → commit chain hangs under one trace id.
    span: SpanHandle,
}

/// Storage client actor state.
#[derive(Clone, Debug)]
pub struct RsClientState {
    me: NodeId,
    servers: Vec<NodeId>,
    tick: SimTime,
    timeout: SimTime,
    queue: VecDeque<StoreCmd>,
    inflight: Option<InFlight>,
    leader_hint: Option<NodeId>,
    history: Vec<RsCompletedOp>,
    rng: ChaCha8Rng,
    /// Observability sink (disabled by default; the harness wires the
    /// cluster's handle in so client spans land in the same trace ring
    /// as the replicas').
    obs: Obs,
}

impl RsClientState {
    /// A client of `servers`.
    pub fn new(me: NodeId, servers: Vec<NodeId>, seed: u64) -> Self {
        assert!(!servers.is_empty());
        RsClientState {
            me,
            servers,
            tick: SimTime::from_millis(100),
            timeout: SimTime::from_millis(1_500),
            queue: VecDeque::new(),
            inflight: None,
            leader_hint: None,
            history: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ (me.0 as u64).wrapping_mul(0x2545_F491)),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle (builder-style); request spans are
    /// only recorded when its tracer is enabled.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Queue a command.
    pub fn submit(&mut self, cmd: StoreCmd) {
        self.queue.push_back(cmd);
    }

    /// Request history.
    pub fn history(&self) -> &[RsCompletedOp] {
        &self.history
    }

    /// Outstanding (queued + in-flight) operations.
    pub fn outstanding(&self) -> usize {
        self.queue.len() + usize::from(self.inflight.is_some())
    }

    fn send_current(&mut self, ctx: &mut Context<RsMsg>) {
        let Some(f) = &mut self.inflight else { return };
        let entry = self
            .history
            .iter()
            .find(|h| h.req_id == f.req_id)
            .expect("in-flight recorded");
        let target = match self.leader_hint {
            Some(l) if self.servers.contains(&l) => l,
            _ => self.servers[f.target % self.servers.len()],
        };
        f.last_sent = ctx.now;
        let trace = f.span.context();
        ctx.send_traced(
            target,
            RsMsg::Request {
                client: self.me,
                req_id: f.req_id,
                cmd: entry.cmd.clone(),
            },
            trace,
        );
    }

    /// Boot.
    pub fn on_start(&mut self, ctx: &mut Context<RsMsg>) {
        ctx.set_timer(self.tick, TICK_TOKEN);
    }

    /// Tick: issue and retransmit.
    pub fn on_timer(&mut self, _t: TimerToken, ctx: &mut Context<RsMsg>) {
        ctx.set_timer(self.tick, TICK_TOKEN);
        if self.inflight.is_none() {
            if let Some(cmd) = self.queue.pop_front() {
                let req_id = self.history.len() as u64 + 1;
                self.history.push(RsCompletedOp {
                    req_id,
                    cmd,
                    issued_at: ctx.now,
                    completed: None,
                });
                // Root of the operation's causal trace: the span covers
                // submit → commit → response, so its duration *is* the
                // observed commit latency.
                self.obs.set_time_micros(sim_micros(ctx.now));
                let span = self.obs.trace.span_open_causal(
                    "client.request",
                    ctx.new_trace(),
                    &[
                        ("client", FieldValue::U64(self.me.0 as u64)),
                        ("req_id", FieldValue::U64(req_id)),
                    ],
                );
                self.inflight = Some(InFlight {
                    req_id,
                    last_sent: ctx.now,
                    target: self.rng.gen_range(0..self.servers.len()),
                    span,
                });
                self.send_current(ctx);
            }
            return;
        }
        let timed_out = self
            .inflight
            .as_ref()
            .map(|f| ctx.now.saturating_sub(f.last_sent) >= self.timeout)
            .unwrap_or(false);
        if timed_out {
            if let Some(f) = &mut self.inflight {
                f.target += 1;
            }
            self.leader_hint = None;
            if let Some(f) = &self.inflight {
                // Mark the retry inside the trace: a retransmit usually
                // means the previous attempt's sub-tree was orphaned by
                // a drop or a dead leader.
                self.obs.set_time_micros(sim_micros(ctx.now));
                self.obs.trace.event_causal(
                    "client.retransmit",
                    f.span.context(),
                    &[("req_id", FieldValue::U64(f.req_id))],
                );
            }
            self.send_current(ctx);
        }
    }

    /// Responses.
    pub fn on_message(&mut self, from: NodeId, msg: RsMsg, ctx: &mut Context<RsMsg>) {
        if let RsMsg::Response { req_id, resp } = msg {
            let matches = self
                .inflight
                .as_ref()
                .map(|f| f.req_id == req_id)
                .unwrap_or(false);
            if matches {
                let f = self.inflight.take().expect("matched above");
                self.leader_hint = Some(from);
                let now = ctx.now;
                self.obs.set_time_micros(sim_micros(now));
                self.obs.trace.span_close(
                    f.span,
                    "client.request",
                    &[
                        ("req_id", FieldValue::U64(req_id)),
                        ("leader", FieldValue::U64(from.0 as u64)),
                    ],
                );
                if let Some(h) = self.history.iter_mut().find(|h| h.req_id == req_id) {
                    h.completed = Some((now, resp));
                }
            }
        }
    }
}
