//! Convergence of the estimated failure probability (Eq. 13/14) to its
//! closed form on a synthetic market with known dynamics.
//!
//! The market alternates between two price states with geometric sojourn
//! times — the discrete-time analogue of the exponential-sojourn
//! semi-Markov process the kernel assumes:
//!
//! * low  = $0.01, mean sojourn μ_L = 20 min;
//! * high = $0.05, mean sojourn μ_H = 5 min.
//!
//! The stationary fraction of minutes spent high is μ_H/(μ_L+μ_H) = 0.2,
//! so for a bid strictly between the two prices the long-horizon
//! out-of-bid fraction is 0.2 and Eq. 4 composes it with the on-demand
//! floor: FP = 1 − (1 − 0.01)(1 − 0.2) = 0.208. A bid at or above the
//! high price is never out-of-bid (FP = FP⁰ = 0.01); a bid below the
//! current price is refused outright (FP = 1).

use spot_market::{Price, PricePoint, PriceTrace};
use spot_model::{FailureModel, FailureModelConfig};

const LOW: Price = Price(10_000); // $0.01 in micro-dollars
const HIGH: Price = Price(50_000); // $0.05
const MEAN_LOW: f64 = 20.0;
const MEAN_HIGH: f64 = 5.0;

/// SplitMix64: a tiny deterministic generator so this test needs no RNG
/// dependency.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform01(state: &mut u64) -> f64 {
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A geometric sojourn with the given mean (support 1, 2, …).
fn geometric(state: &mut u64, mean: f64) -> u64 {
    let p = 1.0 / mean;
    let u = uniform01(state).max(f64::MIN_POSITIVE);
    1 + (u.ln() / (1.0 - p).ln()).floor() as u64
}

/// An alternating low/high trace of `horizon` minutes.
fn two_state_trace(seed: u64, horizon: u64) -> PriceTrace {
    let mut rng = seed;
    let mut points = Vec::new();
    let mut minute = 0u64;
    let mut in_low = true;
    while minute < horizon {
        points.push(PricePoint {
            minute,
            price: if in_low { LOW } else { HIGH },
        });
        minute += geometric(&mut rng, if in_low { MEAN_LOW } else { MEAN_HIGH });
        in_low = !in_low;
    }
    PriceTrace::new(points, horizon)
}

#[test]
fn kernel_recovers_the_sojourn_means() {
    let trace = two_state_trace(7, 60 * 24 * 60); // 60 days
    let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
    let kernel = model.kernel();
    let low = kernel.nearest_state(LOW).expect("low state trained");
    let high = kernel.nearest_state(HIGH).expect("high state trained");
    let mu_l = kernel.mean_sojourn(low);
    let mu_h = kernel.mean_sojourn(high);
    assert!(
        (mu_l - MEAN_LOW).abs() < 0.15 * MEAN_LOW,
        "low sojourn mean {mu_l}, want ≈ {MEAN_LOW}"
    );
    assert!(
        (mu_h - MEAN_HIGH).abs() < 0.15 * MEAN_HIGH,
        "high sojourn mean {mu_h}, want ≈ {MEAN_HIGH}"
    );
}

#[test]
fn estimated_fp_converges_to_the_closed_form() {
    let trace = two_state_trace(11, 60 * 24 * 60);
    let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
    // Current state: low price, fresh sojourn; 12-hour bidding interval —
    // long enough that the evolution mixes to the stationary split.
    let bid_between = Price(30_000); // $0.03
    let fp = model.estimate_fp(bid_between, LOW, 0, 720);
    let stationary_high = MEAN_HIGH / (MEAN_LOW + MEAN_HIGH); // 0.2
    let closed_form = 1.0 - (1.0 - 0.01) * (1.0 - stationary_high); // 0.208
    assert!(
        (fp - closed_form).abs() < 0.03,
        "fp {fp}, closed form {closed_form}"
    );
}

#[test]
fn safe_and_hopeless_bids_hit_the_boundaries() {
    let trace = two_state_trace(13, 60 * 24 * 60);
    let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
    // Bidding at (or above) the highest price the market ever takes: the
    // instance is never out-of-bid, only the on-demand floor remains.
    let fp_safe = model.estimate_fp(HIGH, LOW, 0, 720);
    assert!(
        (fp_safe - 0.01).abs() < 0.005,
        "safe bid fp {fp_safe}, want ≈ FP⁰ = 0.01"
    );
    // Bidding below the current spot price: the request is not granted.
    let fp_refused = model.estimate_fp(Price(5_000), LOW, 0, 720);
    assert_eq!(fp_refused, 1.0);
    // An untrained model is conservative about everything.
    let untrained = FailureModel::new(FailureModelConfig::default());
    assert_eq!(untrained.estimate_fp(HIGH, LOW, 0, 720), 1.0);
}

#[test]
fn longer_history_tightens_the_estimate() {
    // Kernel estimation is consistent: more training data lands closer to
    // the closed form (compared on the same evaluation setup; generous
    // margins keep this robust to seed choice).
    let stationary_high = MEAN_HIGH / (MEAN_LOW + MEAN_HIGH);
    let closed_form = 1.0 - (1.0 - 0.01) * (1.0 - stationary_high);
    let bid = Price(30_000);

    let short = FailureModel::from_trace(
        &two_state_trace(17, 2 * 24 * 60),
        FailureModelConfig::default(),
    );
    let long = FailureModel::from_trace(
        &two_state_trace(17, 90 * 24 * 60),
        FailureModelConfig::default(),
    );
    let err_short = (short.estimate_fp(bid, LOW, 0, 720) - closed_form).abs();
    let err_long = (long.estimate_fp(bid, LOW, 0, 720) - closed_form).abs();
    assert!(
        err_long <= err_short + 0.01,
        "90d error {err_long} should not exceed 2d error {err_short}"
    );
    assert!(err_long < 0.02, "90d error {err_long}");
}
