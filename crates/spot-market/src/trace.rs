//! Step-function spot-price traces at one-minute resolution.
//!
//! A trace is a sorted sequence of change points `(minute, price)`; the
//! price holds until the next change point. One minute is the time unit the
//! paper adopts for the semi-Markov model (Eq. 12: sojourn times are
//! discretized to minutes because 2014 prices changed many times per hour).

use serde::{Deserialize, Serialize};

use crate::money::Price;

/// A price change point: from `minute` (inclusive) the market price is
/// `price` until the next point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PricePoint {
    /// Minute index since trace start.
    pub minute: u64,
    /// The spot price holding from this minute.
    pub price: Price,
}

/// A maximal constant-price interval of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    /// The price during the segment.
    pub price: Price,
    /// First minute of the segment (inclusive).
    pub start: u64,
    /// Length in minutes (≥ 1; the final segment runs to the horizon).
    pub duration: u64,
}

/// A spot-price history for one (zone, instance type) pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PriceTrace {
    points: Vec<PricePoint>,
    /// Total trace length in minutes; prices are defined on `[0, horizon)`.
    horizon: u64,
}

impl PriceTrace {
    /// Build a trace from change points.
    ///
    /// Points must start at minute 0, be strictly increasing in time, lie
    /// within the horizon, and consecutive points must change the price
    /// (equal-price points would be redundant and break sojourn statistics).
    pub fn new(points: Vec<PricePoint>, horizon: u64) -> Self {
        assert!(!points.is_empty(), "trace needs at least one point");
        assert_eq!(points[0].minute, 0, "trace must start at minute 0");
        assert!(horizon > 0, "horizon must be positive");
        for w in points.windows(2) {
            assert!(
                w[0].minute < w[1].minute,
                "points must be strictly increasing in time"
            );
            assert_ne!(
                w[0].price, w[1].price,
                "consecutive points must change the price"
            );
        }
        assert!(
            points.last().unwrap().minute < horizon,
            "last point beyond horizon"
        );
        PriceTrace { points, horizon }
    }

    /// The trace length in minutes.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The underlying change points.
    pub fn points(&self) -> &[PricePoint] {
        &self.points
    }

    /// The price in effect at `minute` (must be `< horizon`).
    pub fn price_at(&self, minute: u64) -> Price {
        assert!(minute < self.horizon, "minute {minute} beyond horizon");
        let idx = self
            .points
            .partition_point(|p| p.minute <= minute)
            .checked_sub(1)
            .expect("trace starts at 0");
        self.points[idx].price
    }

    /// Iterate over the maximal constant-price segments.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.points.iter().enumerate().map(move |(i, p)| {
            let end = self
                .points
                .get(i + 1)
                .map(|n| n.minute)
                .unwrap_or(self.horizon);
            Segment {
                price: p.price,
                start: p.minute,
                duration: end - p.minute,
            }
        })
    }

    /// The last price change at or before the end of `[from, to)`; i.e. the
    /// price in effect just before minute `to`. Used by billing ("the last
    /// price of a spot instance in the hour").
    pub fn last_price_in(&self, from: u64, to: u64) -> Price {
        assert!(from < to && to <= self.horizon, "bad window {from}..{to}");
        self.price_at(to - 1)
    }

    /// The maximum price over `[from, to)`.
    pub fn max_price_in(&self, from: u64, to: u64) -> Price {
        assert!(from < to && to <= self.horizon, "bad window {from}..{to}");
        self.segments()
            .filter(|s| s.start < to && s.start + s.duration > from)
            .map(|s| s.price)
            .max()
            .expect("window overlaps at least one segment")
    }

    /// First minute in `[from, horizon)` at which the price strictly
    /// exceeds `bid` — the out-of-bid termination minute for an instance
    /// holding `bid` — or `None` if the bid survives to the horizon.
    pub fn first_minute_above(&self, bid: Price, from: u64) -> Option<u64> {
        self.segments()
            .filter(|s| s.start + s.duration > from && s.price > bid)
            .map(|s| s.start.max(from))
            .next()
    }

    /// Fraction of minutes in `[from, to)` during which `price > bid`
    /// (the measured out-of-bid failure probability of the micro-benchmark,
    /// Fig. 4).
    pub fn fraction_above(&self, bid: Price, from: u64, to: u64) -> f64 {
        assert!(from < to && to <= self.horizon, "bad window {from}..{to}");
        let mut above = 0u64;
        for s in self.segments() {
            let lo = s.start.max(from);
            let hi = (s.start + s.duration).min(to);
            if lo < hi && s.price > bid {
                above += hi - lo;
            }
        }
        above as f64 / (to - from) as f64
    }

    /// Restrict the trace to `[from, to)`, re-basing minutes to 0.
    /// Used to split history into a training prefix and an evaluation
    /// suffix.
    pub fn window(&self, from: u64, to: u64) -> PriceTrace {
        assert!(from < to && to <= self.horizon, "bad window {from}..{to}");
        let mut points = vec![PricePoint {
            minute: 0,
            price: self.price_at(from),
        }];
        for p in &self.points {
            if p.minute > from && p.minute < to {
                if p.price == points.last().unwrap().price {
                    continue;
                }
                points.push(PricePoint {
                    minute: p.minute - from,
                    price: p.price,
                });
            }
        }
        PriceTrace::new(points, to - from)
    }

    /// Minutes the price at `minute` has already held its value (the
    /// semi-Markov sojourn age observed at bidding time).
    pub fn sojourn_age_at(&self, minute: u64) -> u64 {
        assert!(minute < self.horizon, "minute {minute} beyond horizon");
        let idx = self
            .points
            .partition_point(|p| p.minute <= minute)
            .checked_sub(1)
            .expect("trace starts at 0");
        minute - self.points[idx].minute
    }

    /// The trace re-quoted on a coarser price grid: every price rounds up
    /// to a multiple of `quantum`, merging adjacent segments that land on
    /// the same quantized value. Keeps semi-Markov state spaces bounded
    /// when the underlying process quotes near-continuously (e.g. the
    /// AR(1) market model).
    pub fn quantized(&self, quantum: Price) -> PriceTrace {
        assert!(quantum > Price::ZERO, "quantum must be positive");
        let q = quantum.as_micros();
        let mut points: Vec<PricePoint> = Vec::with_capacity(self.points.len());
        for p in &self.points {
            let price = Price::from_micros(p.price.as_micros().div_ceil(q) * q);
            match points.last() {
                Some(last) if last.price == price => {}
                _ => points.push(PricePoint { minute: p.minute, price }),
            }
        }
        PriceTrace::new(points, self.horizon)
    }

    /// Mean price over the whole trace, weighted by sojourn time.
    pub fn mean_price(&self) -> Price {
        let total: u64 = self
            .segments()
            .map(|s| s.price.as_micros() * s.duration)
            .sum();
        Price::from_micros(total / self.horizon)
    }

    /// Number of price changes per hour, averaged over the trace.
    pub fn changes_per_hour(&self) -> f64 {
        (self.points.len() - 1) as f64 / (self.horizon as f64 / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    fn sample() -> PriceTrace {
        // Mirrors Fig. 1: 0.0071 for a while, then 0.0081, then 0.0117.
        PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.0071),
                },
                PricePoint {
                    minute: 40,
                    price: p(0.0081),
                },
                PricePoint {
                    minute: 70,
                    price: p(0.0117),
                },
                PricePoint {
                    minute: 100,
                    price: p(0.0081),
                },
            ],
            120,
        )
    }

    #[test]
    fn price_lookup() {
        let t = sample();
        assert_eq!(t.price_at(0), p(0.0071));
        assert_eq!(t.price_at(39), p(0.0071));
        assert_eq!(t.price_at(40), p(0.0081));
        assert_eq!(t.price_at(99), p(0.0117));
        assert_eq!(t.price_at(119), p(0.0081));
    }

    #[test]
    fn segments_partition_the_horizon() {
        let t = sample();
        let segs: Vec<Segment> = t.segments().collect();
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].duration, 40);
        assert_eq!(segs[2].duration, 30);
        let total: u64 = segs.iter().map(|s| s.duration).sum();
        assert_eq!(total, t.horizon());
        for w in segs.windows(2) {
            assert_eq!(w[0].start + w[0].duration, w[1].start);
        }
    }

    #[test]
    fn window_queries() {
        let t = sample();
        assert_eq!(t.last_price_in(0, 60), p(0.0081));
        assert_eq!(t.last_price_in(0, 40), p(0.0071));
        assert_eq!(t.max_price_in(0, 60), p(0.0081));
        assert_eq!(t.max_price_in(0, 120), p(0.0117));
    }

    #[test]
    fn out_of_bid_minute() {
        let t = sample();
        // Bid 0.0081 survives until the 0.0117 segment.
        assert_eq!(t.first_minute_above(p(0.0081), 0), Some(70));
        // Starting inside the expensive segment fails immediately.
        assert_eq!(t.first_minute_above(p(0.0081), 80), Some(80));
        // A bid at the max price never goes out of bid.
        assert_eq!(t.first_minute_above(p(0.0117), 0), None);
        // Low bid dies at minute 0.
        assert_eq!(t.first_minute_above(p(0.0050), 0), Some(0));
    }

    #[test]
    fn fraction_above_counts_minutes() {
        let t = sample();
        // price > 0.0081 only during [70, 100): 30 of 120 minutes.
        assert!((t.fraction_above(p(0.0081), 0, 120) - 0.25).abs() < 1e-12);
        assert_eq!(t.fraction_above(p(0.0117), 0, 120), 0.0);
        assert_eq!(t.fraction_above(p(0.001), 0, 120), 1.0);
    }

    #[test]
    fn sojourn_age_tracks_segments() {
        let t = sample();
        assert_eq!(t.sojourn_age_at(0), 0);
        assert_eq!(t.sojourn_age_at(39), 39);
        assert_eq!(t.sojourn_age_at(40), 0);
        assert_eq!(t.sojourn_age_at(75), 5);
        assert_eq!(t.sojourn_age_at(119), 19);
    }

    #[test]
    fn windowing_rebases() {
        let t = sample();
        let w = t.window(50, 110);
        assert_eq!(w.horizon(), 60);
        assert_eq!(w.price_at(0), p(0.0081));
        assert_eq!(w.price_at(25), p(0.0117));
        assert_eq!(w.price_at(55), p(0.0081));
        assert_eq!(w.points().len(), 3);
    }

    #[test]
    fn window_merges_equal_prices() {
        // Window starting inside segment B where the next point is also B
        // must not produce two consecutive equal prices.
        let t = PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.01),
                },
                PricePoint {
                    minute: 10,
                    price: p(0.02),
                },
                PricePoint {
                    minute: 20,
                    price: p(0.01),
                },
            ],
            30,
        );
        let w = t.window(5, 30);
        assert_eq!(w.points().len(), 3);
        assert_eq!(w.price_at(0), p(0.01));
    }

    #[test]
    fn quantization_bounds_states_and_preserves_shape() {
        let t = PriceTrace::new(
            vec![
                PricePoint { minute: 0, price: Price::from_micros(10_010) },
                PricePoint { minute: 5, price: Price::from_micros(10_090) },
                PricePoint { minute: 9, price: Price::from_micros(11_700) },
                PricePoint { minute: 15, price: Price::from_micros(10_040) },
            ],
            20,
        );
        let q = t.quantized(Price::from_micros(1_000));
        // 10_010 and 10_090 both round up to 11_000 and merge.
        assert_eq!(q.points().len(), 3);
        assert_eq!(q.price_at(0), Price::from_micros(11_000));
        assert_eq!(q.price_at(9), Price::from_micros(12_000));
        assert_eq!(q.price_at(16), Price::from_micros(11_000));
        // Quantized prices never fall below the originals (bids chosen on
        // the quantized grid stay conservative).
        for m in 0..20 {
            assert!(q.price_at(m) >= t.price_at(m));
        }
    }

    #[test]
    fn statistics() {
        let t = sample();
        assert_eq!(t.changes_per_hour(), 1.5);
        let mean = t.mean_price().as_dollars();
        let expect = (0.0071 * 40.0 + 0.0081 * 30.0 + 0.0117 * 30.0 + 0.0081 * 20.0) / 120.0;
        assert!((mean - expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_points() {
        PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.01),
                },
                PricePoint {
                    minute: 0,
                    price: p(0.02),
                },
            ],
            10,
        );
    }

    #[test]
    #[should_panic(expected = "change the price")]
    fn rejects_redundant_points() {
        PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.01),
                },
                PricePoint {
                    minute: 5,
                    price: p(0.01),
                },
            ],
            10,
        );
    }
}
