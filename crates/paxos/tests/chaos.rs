//! Chaos testing: randomized crash/restart schedules against the lock
//! service. Safety (log agreement) must hold unconditionally; progress
//! must hold because the schedule never takes more than two of five
//! replicas down at once.

use paxos::{ClientOp, Cluster, LockCmd, LockService, PaxosNode, ReplicaConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::{NetworkConfig, NodeId, SimTime};

fn run_chaos(seed: u64, rounds: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c: Cluster<LockService> = Cluster::new(
        5,
        LockService::new(),
        ReplicaConfig::default(),
        NetworkConfig::default(),
        seed,
    );
    let client = c.add_client();
    let mut down: Vec<NodeId> = Vec::new();

    for round in 0..rounds {
        // Random fault action keeping at least 3 replicas alive.
        match rng.gen_range(0..3) {
            0 if down.len() < 2 => {
                let up: Vec<NodeId> = c
                    .servers()
                    .iter()
                    .copied()
                    .filter(|n| !down.contains(n))
                    .collect();
                let victim = up[rng.gen_range(0..up.len())];
                c.crash(victim);
                down.push(victim);
            }
            1 if !down.is_empty() => {
                let idx = rng.gen_range(0..down.len());
                let node = down.swap_remove(idx);
                let view = c.current_view().expect("some replica alive");
                c.restart(node, LockService::new(), view);
            }
            _ => {}
        }
        // A lock operation must still commit (quorum always alive).
        let name = format!("chaos-{round}");
        c.submit(
            client,
            ClientOp::App(LockCmd::Acquire {
                name,
                owner: client,
            }),
        );
        assert!(
            c.run_until_drained(client, c.sim.now() + SimTime::from_secs(180)),
            "seed {seed} round {round}: no progress with {} down",
            down.len()
        );
        // Safety after every step.
        c.assert_log_agreement();
    }
    // Let restarts catch up fully, then check the global invariant: every
    // live replica's state machine holds every acquired lock.
    for &n in &down.clone() {
        let view = c.current_view().expect("view");
        c.restart(n, LockService::new(), view);
    }
    c.sim.run_until(c.sim.now() + SimTime::from_secs(60));
    let committed = c.assert_log_agreement();
    assert!(committed >= rounds, "only {committed} of {rounds} agreed");
    for &s in c.servers() {
        if let Some(r) = c.sim.actor(s).and_then(PaxosNode::as_server) {
            if r.commit_index() as usize >= rounds {
                assert!(
                    r.state_machine().held_count() >= rounds,
                    "replica {s} lost locks: {}",
                    r.state_machine().held_count()
                );
            }
        }
    }
}

#[test]
fn chaos_schedule_seed_1() {
    run_chaos(1, 12);
}

#[test]
fn chaos_schedule_seed_2() {
    run_chaos(2, 12);
}

#[test]
fn chaos_schedule_seed_3() {
    run_chaos(3, 12);
}

#[test]
fn chaos_harsh_network() {
    // Heavy loss + jitter, one permanent crash, continued progress.
    let mut c: Cluster<LockService> = Cluster::new(
        5,
        LockService::new(),
        ReplicaConfig::default(),
        NetworkConfig::harsh(),
        77,
    );
    let client = c.add_client();
    c.crash(c.servers()[4]);
    for round in 0..6 {
        c.submit(
            client,
            ClientOp::App(LockCmd::Acquire {
                name: format!("h{round}"),
                owner: client,
            }),
        );
        assert!(
            c.run_until_drained(client, c.sim.now() + SimTime::from_secs(600)),
            "round {round}"
        );
    }
    c.assert_log_agreement();
}
