//! The Jupiter online bidding algorithm (Fig. 3): enumeration over node
//! counts + greedy zone selection.
//!
//! For every candidate node count `n`:
//!
//! 1. derive the per-node failure-probability target `FP` that keeps an
//!    `n`-node deployment at the availability target when every node has
//!    the same failure probability (equal probabilities are optimal for a
//!    fixed threshold quorum, §4.1);
//! 2. per availability zone, find the **minimal bid** whose estimated
//!    failure probability over the interval is ≤ `FP` (bids capped below
//!    the on-demand price);
//! 3. sort the feasible bids and greedily take the `n` cheapest;
//! 4. the candidate's score is its cost upper bound Σ bids.
//!
//! The answer is the candidate with the lowest upper bound. Zone forecasts
//! are computed once and shared across all `n` (they do not depend on the
//! node count), and in parallel across zones with rayon — the dominant
//! cost is the semi-Markov forward evolution per zone.

use obs::Obs;
use rayon::prelude::*;
use spot_market::Price;

use crate::service::ServiceSpec;
use crate::strategy::{BidDecision, BiddingStrategy, PoolBid, ZoneState};

/// Pick `n` pools from `bids` approximately minimizing total cost subject
/// to the capacity-weight floor: start from the `n` cheapest bids (the
/// paper's homogeneous order), then repeatedly apply the single swap — a
/// selected pool out, a strictly heavier unselected pool in — with the
/// lowest marginal cost per unit of strength gained, until the floor is
/// met. When the node-count constraint binds (the cheap picks already
/// satisfy the floor) this buys no excess strength; when the strength
/// constraint binds it pays for strength wherever it is cheapest per
/// unit. Returns `None` when no `n`-pool subset can reach the target.
fn select_with_strength(bids: &[PoolBid], n: usize, min_strength: u32) -> Option<Vec<PoolBid>> {
    let mut sorted: Vec<PoolBid> = bids.to_vec();
    sorted.sort_by_key(|b| (b.bid, b.zone.ordinal(), b.instance_type.ordinal()));
    let selected: Vec<PoolBid> = sorted[..n].to_vec();
    let rest: Vec<PoolBid> = sorted.split_off(n);
    upgrade_to_strength(selected, rest, min_strength)
}

/// [`select_with_strength`] with a zone-diversified starting selection:
/// instead of the `n` cheapest pools outright, take the cheapest pool
/// per *zone* first (round-robin passes in price order), so same-zone
/// pools — which share capacity crunches under `BidEra::CapacityReclaim`
/// — are only doubled up once every zone is covered. The strength
/// upgrade loop then runs unchanged.
fn select_diversified(bids: &[PoolBid], n: usize, min_strength: u32) -> Option<Vec<PoolBid>> {
    let mut sorted: Vec<PoolBid> = bids.to_vec();
    sorted.sort_by_key(|b| (b.bid, b.zone.ordinal(), b.instance_type.ordinal()));
    let mut selected: Vec<PoolBid> = Vec::with_capacity(n);
    let mut used = vec![false; sorted.len()];
    while selected.len() < n {
        // One pick per zone per pass, cheapest first; a second pool in a
        // zone is only taken once every zone with an unused pool has one
        // more pick than it had last pass.
        let mut pass_zones: Vec<spot_market::Zone> = Vec::new();
        let mut progressed = false;
        for (i, b) in sorted.iter().enumerate() {
            if selected.len() >= n {
                break;
            }
            if used[i] || pass_zones.contains(&b.zone) {
                continue;
            }
            used[i] = true;
            pass_zones.push(b.zone);
            selected.push(*b);
            progressed = true;
        }
        if !progressed {
            break; // every pool is used: bids.len() < n, caller filters
        }
    }
    if selected.len() < n {
        return None;
    }
    let rest: Vec<PoolBid> = sorted
        .into_iter()
        .zip(used)
        .filter_map(|(b, u)| (!u).then_some(b))
        .collect();
    upgrade_to_strength(selected, rest, min_strength)
}

/// The marginal-cost strength-upgrade loop shared by the plain and the
/// diversified selections (see [`select_with_strength`]).
fn upgrade_to_strength(
    mut selected: Vec<PoolBid>,
    mut rest: Vec<PoolBid>,
    min_strength: u32,
) -> Option<Vec<PoolBid>> {
    let weight = |b: &PoolBid| b.instance_type.capacity_weight();
    let mut strength: u32 = selected.iter().map(weight).sum();
    while strength < min_strength {
        // Marginal-cost comparison is exact via cross-multiplication:
        // Δcost_a / gain_a < Δcost_b / gain_b  ⇔  Δcost_a·gain_b <
        // Δcost_b·gain_a (gains positive; Δcost may be negative once
        // earlier swaps put expensive pools into the selection). Ties
        // prefer the bigger strength gain, then bid and ordinal order,
        // keeping the choice deterministic.
        let mut best: Option<(i128, i128, usize, usize)> = None; // (Δcost µ, gain, vi, ri)
        for (vi, v) in selected.iter().enumerate() {
            for (ri, r) in rest.iter().enumerate() {
                let gain = i128::from(weight(r)) - i128::from(weight(v));
                if gain <= 0 {
                    continue;
                }
                let dc = r.bid.as_micros() as i128 - v.bid.as_micros() as i128;
                let better = match &best {
                    None => true,
                    Some((bdc, bgain, bvi, bri)) => {
                        let (cur, prev) = (dc * bgain, *bdc * gain);
                        let cur_tie =
                            (std::cmp::Reverse(gain), r.bid, selected[vi].bid, ri, vi);
                        let prev_tie = (
                            std::cmp::Reverse(*bgain),
                            rest[*bri].bid,
                            selected[*bvi].bid,
                            *bri,
                            *bvi,
                        );
                        cur < prev || (cur == prev && cur_tie < prev_tie)
                    }
                };
                if better {
                    best = Some((dc, gain, vi, ri));
                }
            }
        }
        let (_, gain, vi, ri) = best?;
        selected[vi] = rest.remove(ri);
        strength = (i128::from(strength) + gain) as u32;
    }
    Some(selected)
}

/// Which per-instance failure estimator drives the minimum-bid search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Estimator {
    /// The paper's Eq. 5: expected fraction of the interval spent
    /// out-of-bid. Cheap (one forecast answers every candidate bid), but
    /// it prices *downtime share*, not the chance of being killed.
    #[default]
    Expectation,
    /// Absorbing variant: the probability of being killed at all during
    /// the interval. Strictly more conservative; costs one forward
    /// evolution per probed bid (binary-searched). Used by the ablation
    /// study.
    Absorbing,
}

/// The paper's bidding algorithm ("Jupiter").
#[derive(Clone, Debug, Default)]
pub struct JupiterStrategy {
    /// Cap the enumeration of node counts (`None` = up to the zone count).
    pub max_nodes: Option<usize>,
    /// The failure estimator variant.
    pub estimator: Estimator,
    /// Observability sink (disabled by default; see [`Self::with_obs`]).
    pub obs: Obs,
}

impl JupiterStrategy {
    /// The paper's algorithm: expectation estimator, every node count.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ablation variant driven by absorbing (kill-probability)
    /// estimates.
    pub fn absorbing() -> Self {
        JupiterStrategy {
            max_nodes: None,
            estimator: Estimator::Absorbing,
            obs: Obs::disabled(),
        }
    }

    /// Record decision metrics (`jupiter.*` instruments) into `obs`.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }
}

impl BiddingStrategy for JupiterStrategy {
    fn name(&self) -> String {
        match self.estimator {
            Estimator::Expectation => "Jupiter".into(),
            Estimator::Absorbing => "Jupiter-abs".into(),
        }
    }

    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision {
        if zones.is_empty() {
            return BidDecision::empty();
        }
        if !self.obs.is_enabled() {
            return self.decide_inner(zones, spec, horizon_minutes);
        }
        let evaluated = self.obs.counter("jupiter.candidates_evaluated");
        let feasible = self.obs.counter("jupiter.candidates_feasible");
        let (evaluated_before, feasible_before) = (evaluated.get(), feasible.get());
        let start = std::time::Instant::now();
        let decision = self.decide_inner(zones, spec, horizon_minutes);
        let micros = start.elapsed().as_micros() as u64;
        self.obs.histogram("jupiter.decide_micros").record(micros);
        // Per-decision trajectories on the market-minute axis (the obs
        // clock is driven in minutes-as-micros by the replay loops; a
        // wall-clocked Obs just gets wall minutes).
        let minute = self.obs.trace.now_micros() / 60_000_000;
        self.obs
            .series
            .record("jupiter.decide_micros", minute, micros as f64);
        self.obs.series.record(
            "jupiter.candidates_evaluated",
            minute,
            (evaluated.get() - evaluated_before) as f64,
        );
        self.obs.series.record(
            "jupiter.candidates_feasible",
            minute,
            (feasible.get() - feasible_before) as f64,
        );
        self.obs
            .series
            .record("jupiter.group_size", minute, decision.n() as f64);
        decision
    }
}

impl JupiterStrategy {
    fn decide_inner(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision {
        let forecast_micros = self.obs.histogram("jupiter.forecast_micros");
        let forecasts_computed = self.obs.counter("jupiter.forecasts_computed");
        let fp_cache_hits = self.obs.counter("jupiter.fp_cache_hits");
        let fp_cache_misses = self.obs.counter("jupiter.fp_cache_misses");
        let forward_micros = self.obs.histogram("jupiter.forward_evolution_micros");
        // One forecast per zone, shared by every node-count candidate
        // (expectation estimator). For the absorbing estimator every
        // probed level costs a full forward evolution, so probes are
        // memoized per zone *across* node counts — distinct targets
        // mostly revisit the same handful of ladder levels.
        let forecasts: Vec<_> = match self.estimator {
            Estimator::Expectation => zones
                .par_iter()
                .map(|z| {
                    let f = forecast_micros.time(|| z.forecast(horizon_minutes));
                    if f.is_some() {
                        forecasts_computed.inc();
                    }
                    f
                })
                .collect(),
            Estimator::Absorbing => vec![None; zones.len()],
        };
        // Every probed bid is either a ladder level of the zone's frozen
        // kernel or the zone's own spot price, so the memo is a dense
        // bid-grid vector (slot 0 = off-ladder spot price, slot 1 + l =
        // ladder level l) instead of a locked hash map.
        let absorbing_cache: Vec<Vec<std::sync::OnceLock<f64>>> = zones
            .iter()
            .map(|z| vec![std::sync::OnceLock::new(); z.model.kernel().n_states() + 1])
            .collect();
        // The expectation estimator probes the same bid grid: the node
        // counts n = 1..max_n revisit the same forecast levels at shifting
        // targets, so the per-(zone, level) FP is memoized across the
        // enumeration — and across nothing else, since forecast, spot
        // price and horizon are fixed within one decide (slot 0 =
        // off-ladder spot price, slot 1 + l = forecast level l).
        let expectation_cache: Vec<Vec<std::sync::OnceLock<f64>>> = forecasts
            .iter()
            .map(|f| {
                vec![
                    std::sync::OnceLock::new();
                    f.as_ref().map_or(0, |f| f.levels().len() + 1)
                ]
            })
            .collect();
        let expectation_fp = |zi: usize, slot: usize, bid: Price| -> f64 {
            let cell = &expectation_cache[zi][slot];
            if let Some(&fp) = cell.get() {
                fp_cache_hits.inc();
                return fp;
            }
            fp_cache_misses.inc();
            let z = &zones[zi];
            let f = forecasts[zi].as_ref().expect("slots exist only when forecast does");
            *cell.get_or_init(|| z.model.fp_from_forecast(f, bid, z.spot_price))
        };
        // The minimal feasible bid at `target`, mirroring
        // `ZoneState::min_bid` with the FP lookups served from the grid.
        let expectation_min_bid = |zi: usize, target: f64| -> Option<Price> {
            let z = &zones[zi];
            let f = forecasts[zi].as_ref()?;
            let mut best: Option<Price> = None;
            for (slot, b) in std::iter::once(z.spot_price)
                .chain(f.levels().iter().copied())
                .enumerate()
            {
                if b < z.spot_price || b >= z.on_demand {
                    continue;
                }
                if expectation_fp(zi, slot, b) <= target {
                    best = Some(best.map_or(b, |prev: Price| prev.min(b)));
                }
            }
            best
        };
        let absorbing_fp = |zi: usize, bid: Price| -> f64 {
            let z = &zones[zi];
            let slot = match z.model.kernel().level_index(bid) {
                Some(l) => l + 1,
                None => 0,
            };
            let cell = &absorbing_cache[zi][slot];
            if let Some(&fp) = cell.get() {
                fp_cache_hits.inc();
                return fp;
            }
            fp_cache_misses.inc();
            let fp = forward_micros.time(|| {
                z.model
                    .estimate_fp_absorbing(bid, z.spot_price, z.sojourn_age, horizon_minutes)
            });
            *cell.get_or_init(|| fp)
        };
        // Minimal feasible bid on the level ladder by binary search
        // (absorbing FP is non-increasing in the bid).
        let absorbing_min_bid = |zi: usize, target: f64| -> Option<Price> {
            let z = &zones[zi];
            let candidates: Vec<Price> = std::iter::once(z.spot_price)
                .chain(z.model.kernel().prices().iter().copied())
                .filter(|&b| b >= z.spot_price && b < z.on_demand)
                .collect();
            if candidates.is_empty() {
                return None;
            }
            let (mut lo, mut hi) = (0usize, candidates.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if absorbing_fp(zi, candidates[mid]) <= target {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            candidates
                .get(lo)
                .copied()
                .filter(|&b| absorbing_fp(zi, b) <= target)
        };

        let candidates_evaluated = self.obs.counter("jupiter.candidates_evaluated");
        let candidates_feasible = self.obs.counter("jupiter.candidates_feasible");
        let max_n = self.max_nodes.unwrap_or(zones.len()).min(zones.len());
        let mut best: Option<(Price, BidDecision)> = None;
        for n in 1..=max_n {
            let Some(fp_target) = spec.node_fp_target(n) else {
                continue;
            };
            candidates_evaluated.inc();
            // Minimal feasible bid per pool at this target.
            let pool_bid = |zi: usize, b: Price| PoolBid {
                zone: zones[zi].zone,
                instance_type: zones[zi].instance_type,
                bid: b,
            };
            let mut bids: Vec<PoolBid> = match self.estimator {
                Estimator::Expectation => (0..zones.len())
                    .filter_map(|zi| expectation_min_bid(zi, fp_target).map(|b| pool_bid(zi, b)))
                    .collect(),
                Estimator::Absorbing => (0..zones.len())
                    .into_par_iter()
                    .filter_map(|zi| absorbing_min_bid(zi, fp_target).map(|b| pool_bid(zi, b)))
                    .collect(),
            };
            if bids.len() < n {
                continue; // not enough pools can meet the target
            }
            if spec.is_hetero() {
                // Heterogeneous selection: the n cheapest pools, upgraded
                // to heavier types at the lowest marginal cost per unit of
                // strength until the capacity floor holds. Under
                // `diversify` the starting selection covers zones
                // round-robin before doubling up in any zone.
                let selected = if spec.diversify {
                    select_diversified(&bids, n, spec.min_strength)
                } else {
                    select_with_strength(&bids, n, spec.min_strength)
                };
                let Some(selected) = selected else {
                    continue; // no n-pool subset reaches the strength floor
                };
                bids = selected;
            } else if spec.diversify {
                // Homogeneous diversified: one pool per zone (which the
                // paper's single-type setup already is — every zone is
                // its own pool — so this only reorders multi-pool lists).
                bids = match select_diversified(&bids, n, 0) {
                    Some(sel) => sel,
                    None => continue,
                };
            } else {
                // The paper's greedy: cheapest n zones.
                bids.sort_by_key(|b| (b.bid, b.zone.ordinal()));
                bids.truncate(n);
            }
            candidates_feasible.inc();
            let candidate = BidDecision { bids };
            let cost = candidate.cost_upper_bound();
            let better = best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true);
            if better {
                best = Some((cost, candidate));
            }
        }
        best.map(|(_, d)| d).unwrap_or_else(BidDecision::empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::{InstanceType, PricePoint, PriceTrace, Region, Zone};
    use spot_model::{FailureModel, FailureModelConfig};

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    /// A zone whose price alternates `low` (stay minutes) → `high`
    /// (3 min) — riskier the longer `high` dwells relative to `low`.
    fn model(low: f64, high: f64, stay: u64) -> FailureModel {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..200 {
            points.push(PricePoint {
                minute: t,
                price: p(low),
            });
            t += stay;
            points.push(PricePoint {
                minute: t,
                price: p(high),
            });
            t += 3;
        }
        FailureModel::from_trace(&PriceTrace::new(points, t), FailureModelConfig::default())
    }

    fn zone(i: usize) -> Zone {
        let zones = spot_market::topology::all_zones();
        zones[i]
    }

    #[test]
    fn picks_safe_bids_meeting_availability() {
        // 6 zones, all calm (price alternates 0.008/0.012, high phase is
        // brief): bidding 0.012 pins FP at FP0 = 0.01.
        let models: Vec<FailureModel> = (0..6).map(|_| model(0.008, 0.012, 60)).collect();
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: p(0.008),
                sojourn_age: 5,
                on_demand: InstanceType::M1Small.on_demand_price(Region::UsEast1),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();
        let d = JupiterStrategy::new().decide(&states, &spec, 360);
        assert!(d.n() >= 5, "needs ≥5 nodes at FP≈0.01: got {}", d.n());
        for b in &d.bids {
            assert_eq!(b.bid, p(0.012), "minimal safe bid is the high level");
        }
    }

    #[test]
    fn prefers_cheaper_zones() {
        // Two cheap-safe zones, four expensive-safe zones; at n = 5 the
        // cheap ones must be included.
        let cheap = model(0.004, 0.006, 60);
        let pricey = model(0.010, 0.014, 60);
        let models = [&cheap, &cheap, &pricey, &pricey, &pricey, &pricey];
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: if i < 2 { p(0.004) } else { p(0.010) },
                sojourn_age: 5,
                on_demand: p(0.044),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();
        let d = JupiterStrategy::new().decide(&states, &spec, 360);
        assert!(d.bid_for(zone(0), InstanceType::M1Small).is_some());
        assert!(d.bid_for(zone(1), InstanceType::M1Small).is_some());
        assert_eq!(d.bid_for(zone(0), InstanceType::M1Small), Some(p(0.006)));
    }

    #[test]
    fn untrainable_zones_are_skipped() {
        let trained = model(0.008, 0.012, 60);
        let untrained = FailureModel::new(FailureModelConfig::default());
        let models: Vec<&FailureModel> =
            vec![&trained, &trained, &trained, &trained, &trained, &untrained];
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: p(0.008),
                sojourn_age: 0,
                on_demand: p(0.044),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();
        let d = JupiterStrategy::new().decide(&states, &spec, 360);
        assert!(
            d.bid_for(zone(5), InstanceType::M1Small).is_none(),
            "untrained zone must not be bid"
        );
        assert!(d.n() >= 5);
    }

    #[test]
    fn infeasible_everywhere_returns_empty() {
        // One zone, lock service needs FP ≈ 0.0017 at n = 1... a single
        // node can never reach 0.99999 availability with FP0 = 0.01, and
        // there are not enough zones for more nodes.
        let m = model(0.008, 0.012, 60);
        let states = vec![ZoneState {
            zone: zone(0),
            instance_type: InstanceType::M1Small,
            spot_price: p(0.008),
            sojourn_age: 0,
            on_demand: p(0.044),
            model: &m,
        }];
        let spec = ServiceSpec::lock_service();
        let d = JupiterStrategy::new().decide(&states, &spec, 360);
        assert_eq!(d, BidDecision::empty());
    }

    #[test]
    fn absorbing_variant_bids_at_least_as_high() {
        let models: Vec<FailureModel> = (0..6).map(|_| model(0.008, 0.012, 60)).collect();
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: p(0.008),
                sojourn_age: 5,
                on_demand: p(0.044),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();
        let expectation = JupiterStrategy::new().decide(&states, &spec, 240);
        let absorbing = JupiterStrategy::absorbing().decide(&states, &spec, 240);
        // For every zone both selected, the absorbing bid dominates.
        for b in &absorbing.bids {
            if let Some(b_exp) = expectation.bid_for(b.zone, b.instance_type) {
                assert!(b.bid >= b_exp, "{}: {:?} < {b_exp:?}", b.zone.name(), b.bid);
            }
        }
    }

    #[test]
    fn observability_counts_candidates_and_cache() {
        let models: Vec<FailureModel> = (0..6).map(|_| model(0.008, 0.012, 60)).collect();
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: p(0.008),
                sojourn_age: 5,
                on_demand: p(0.044),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();

        let (o, _clock) = Obs::simulated();
        let d = JupiterStrategy::new()
            .with_obs(o.clone())
            .decide(&states, &spec, 240);
        assert!(d.n() > 0);
        let snap = o.metrics.snapshot();
        assert!(snap.counter("jupiter.candidates_evaluated").unwrap_or(0) >= 1);
        assert_eq!(snap.counter("jupiter.forecasts_computed"), Some(6));
        assert!(snap.histogram("jupiter.decide_micros").unwrap().count >= 1);
        assert!(snap.histogram("jupiter.forecast_micros").unwrap().count >= 6);

        let (o2, _clock) = Obs::simulated();
        let d2 = JupiterStrategy::absorbing()
            .with_obs(o2.clone())
            .decide(&states, &spec, 240);
        assert!(d2.n() > 0);
        let snap2 = o2.metrics.snapshot();
        let misses = snap2.counter("jupiter.fp_cache_misses").unwrap_or(0);
        let hits = snap2.counter("jupiter.fp_cache_hits").unwrap_or(0);
        assert!(misses >= 1, "absorbing probes must miss at least once");
        assert!(hits >= 1, "ladder levels are revisited across node counts");
        assert_eq!(
            snap2.histogram("jupiter.forward_evolution_micros").unwrap().count,
            misses
        );
    }

    #[test]
    fn expectation_path_reuses_the_fp_grid_across_node_counts() {
        // Regression: the bid-grid FP cache used to be wired only into
        // the absorbing estimator, so `jupiter.fp_cache_hits/misses` both
        // read 0 on every replay of the paper's default strategy. The
        // expectation path probes the same (zone, ladder-level) grid for
        // every node count n = 1..max_n, so a repeated decide must hit.
        let models: Vec<FailureModel> = (0..6).map(|_| model(0.008, 0.012, 60)).collect();
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: p(0.008),
                sojourn_age: 5,
                on_demand: p(0.044),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::lock_service();

        let (o, _clock) = Obs::simulated();
        let strategy = JupiterStrategy::new().with_obs(o.clone());
        let first = strategy.decide(&states, &spec, 240);
        let snap = o.metrics.snapshot();
        let misses = snap.counter("jupiter.fp_cache_misses").unwrap_or(0);
        let hits = snap.counter("jupiter.fp_cache_hits").unwrap_or(0);
        assert!(misses >= 1, "first probe of each (zone, level) misses");
        assert!(hits >= 1, "node counts 2..=6 revisit the same grid");
        // Memoization must not change the decision: every chosen bid
        // equals the cache-less reference probe (ZoneState::min_bid) at
        // the decision's own per-node FP target.
        let target = spec
            .node_fp_target(first.n())
            .expect("chosen n has a target");
        for b in &first.bids {
            let state = states.iter().find(|s| s.zone == b.zone).expect("known zone");
            let f = state.forecast(240).expect("alternating trace trains");
            assert_eq!(state.min_bid(&f, target), Some(b.bid), "{}", b.zone.name());
        }
        let again = strategy.decide(&states, &spec, 240);
        assert_eq!(first, again, "repeated decide is deterministic");
        let snap2 = o.metrics.snapshot();
        assert!(
            snap2.counter("jupiter.fp_cache_hits").unwrap_or(0) > hits,
            "a repeated decide hits the (fresh) grid again"
        );
    }

    #[test]
    fn storage_spec_uses_larger_quorums() {
        // With the RS rule the same market needs more reliable nodes:
        // the decision never uses fewer than m = 3 nodes.
        let models: Vec<FailureModel> = (0..8).map(|_| model(0.02, 0.03, 120)).collect();
        let states: Vec<ZoneState> = models
            .iter()
            .enumerate()
            .map(|(i, m)| ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: p(0.02),
                sojourn_age: 10,
                on_demand: InstanceType::M3Large.on_demand_price(Region::UsEast1),
                model: m,
            })
            .collect();
        let spec = ServiceSpec::storage_service();
        let d = JupiterStrategy::new().decide(&states, &spec, 360);
        if d.n() > 0 {
            assert!(d.n() >= 3, "θ(3,·) needs at least 3 nodes");
        }
    }

    /// Two pools per zone (small + large). With a strength floor the mix
    /// must reach it; without one, the hetero path at equal weights
    /// reduces to the legacy cheapest-bid order.
    #[test]
    fn hetero_mix_meets_strength_floor() {
        let small_models: Vec<FailureModel> = (0..6).map(|_| model(0.008, 0.012, 60)).collect();
        let large_models: Vec<FailureModel> = (0..6).map(|_| model(0.016, 0.024, 60)).collect();
        let mut states: Vec<ZoneState> = Vec::new();
        for i in 0..6 {
            states.push(ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M1Small,
                spot_price: p(0.008),
                sojourn_age: 5,
                on_demand: InstanceType::M1Small.on_demand_price(Region::UsEast1),
                model: &small_models[i],
            });
            states.push(ZoneState {
                zone: zone(i),
                instance_type: InstanceType::M3Large,
                spot_price: p(0.016),
                sojourn_age: 5,
                on_demand: InstanceType::M3Large.on_demand_price(Region::UsEast1),
                model: &large_models[i],
            });
        }
        let spec = ServiceSpec::lock_service()
            .with_pools(&[InstanceType::M1Small, InstanceType::M3Large])
            .with_min_strength(14);
        let d = JupiterStrategy::new().decide(&states, &spec, 360);
        assert!(d.n() > 0, "hetero instance must be feasible");
        assert!(d.strength() >= 14, "strength {} < floor", d.strength());
        // 14 strength cannot be met by m1.small alone within 6 zones, so
        // the mix must include large pools.
        assert!(
            d.bids.iter().any(|b| b.instance_type == InstanceType::M3Large),
            "mix must include m3.large: {:?}",
            d.bids
        );
        // Strength is bought where it is cheapest per unit (large upgrades
        // at 0.012 marginal cost for +3 weight): the mixed fleet costs
        // less than the same strength from small pools would (14 × 0.012
        // if it were even feasible).
        assert!(d.cost_upper_bound() < p(0.012) * 14);
        // And no more nodes than the quorum rule needs: the upgrade path
        // keeps the group at the 5-node enumeration floor.
        assert_eq!(d.n(), 5, "{:?}", d.bids);
    }

    #[test]
    fn select_with_strength_is_deterministic_and_minimal() {
        let mk = |zi: usize, ty: InstanceType, bid: f64| PoolBid {
            zone: zone(zi),
            instance_type: ty,
            bid: p(bid),
        };
        let bids = vec![
            mk(0, InstanceType::M1Small, 0.006),
            mk(1, InstanceType::M1Small, 0.007),
            mk(2, InstanceType::M3Large, 0.020),
            mk(3, InstanceType::M3Large, 0.022),
        ];
        // Pick 2 with floor 8: only the two larges can reach it.
        let sel = select_with_strength(&bids, 2, 8).expect("feasible");
        assert_eq!(
            sel.iter().map(|b| b.instance_type.capacity_weight()).sum::<u32>(),
            8
        );
        // Floor 9 is impossible with 2 pools (max 4+4).
        assert!(select_with_strength(&bids, 2, 9).is_none());
        // Floor 0 keeps the plain cheapest-first prefix — no upgrades.
        let sel0 = select_with_strength(&bids, 2, 0).expect("feasible");
        assert_eq!(sel0.len(), 2);
        assert!(sel0.iter().all(|b| b.instance_type == InstanceType::M1Small));
    }

    /// Two pools per zone with the cheap bids concentrated in two zones:
    /// the plain selection doubles up there, the diversified one covers
    /// distinct zones first — and with `diversify` off the decision is
    /// byte-identical to the legacy order.
    #[test]
    fn diversified_selection_spreads_across_zones() {
        let mk = |zi: usize, ty: InstanceType, bid: f64| PoolBid {
            zone: zone(zi),
            instance_type: ty,
            bid: p(bid),
        };
        // Zones 0 and 1 are cheap in both pools; zones 2..5 pricier.
        let mut bids = Vec::new();
        for i in 0..6 {
            let base = if i < 2 { 0.006 } else { 0.012 };
            bids.push(mk(i, InstanceType::M1Small, base + i as f64 * 0.0001));
            bids.push(mk(i, InstanceType::M1Medium, base + 0.001 + i as f64 * 0.0001));
        }
        let plain = select_with_strength(&bids, 4, 0).expect("feasible");
        let spread = select_diversified(&bids, 4, 0).expect("feasible");
        let distinct = |sel: &[PoolBid]| {
            let mut zs: Vec<_> = sel.iter().map(|b| b.zone).collect();
            zs.sort_by_key(|z| z.ordinal());
            zs.dedup();
            zs.len()
        };
        assert_eq!(distinct(&plain), 2, "cheapest-4 doubles up: {plain:?}");
        assert_eq!(distinct(&spread), 4, "diversified covers 4 zones: {spread:?}");
        // The diversified pick still honors a strength floor.
        let with_floor = select_diversified(&bids, 4, 7);
        if let Some(sel) = with_floor {
            let s: u32 = sel.iter().map(|b| b.instance_type.capacity_weight()).sum();
            assert!(s >= 7);
        }
        // Asking for more pools than exist fails cleanly.
        assert!(select_diversified(&bids[..3], 4, 0).is_none());
    }

    /// The node-count floor binding: the cheap picks already reach the
    /// strength floor after one upgrade, so the selection must NOT flood
    /// the group with heavy pools (that was the old per-strength ranking's
    /// failure mode — it bought 5 larges where 4 smalls + 1 large do).
    #[test]
    fn select_with_strength_buys_no_excess_strength() {
        let mk = |zi: usize, ty: InstanceType, bid: f64| PoolBid {
            zone: zone(zi),
            instance_type: ty,
            bid: p(bid),
        };
        let mut bids = Vec::new();
        for i in 0..6 {
            bids.push(mk(i, InstanceType::M1Small, 0.006 + i as f64 * 0.001));
            bids.push(mk(i, InstanceType::M3Large, 0.020 + i as f64 * 0.001));
        }
        // n = 5, floor 8: start with the 5 cheapest smalls (strength 5),
        // one upgrade (+3) reaches 8.
        let sel = select_with_strength(&bids, 5, 8).expect("feasible");
        let strength: u32 = sel.iter().map(|b| b.instance_type.capacity_weight()).sum();
        assert_eq!(strength, 8, "{sel:?}");
        let larges = sel
            .iter()
            .filter(|b| b.instance_type == InstanceType::M3Large)
            .count();
        assert_eq!(larges, 1, "exactly one upgrade: {sel:?}");
        // The upgrade evicts the most expensive small (0.010) for the
        // cheapest large (0.020): total = 0.006+0.007+0.008+0.009+0.020.
        let total: f64 = sel.iter().map(|b| b.bid.as_dollars()).sum();
        assert!((total - 0.050).abs() < 1e-9, "{sel:?}");
    }
}
