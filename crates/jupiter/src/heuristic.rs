//! The `Extra(m, p)` comparison heuristics (§5.2) and the on-demand
//! baseline marker.
//!
//! `Extra(m, p)` ignores the failure model entirely: it picks the
//! `baseline_nodes + m` zones with the lowest current spot prices and bids
//! the spot price plus an extra portion `p` (10 % or 20 % in the paper).
//! It is cheap and simple — and, as the evaluation shows, cannot hold the
//! availability level, which is the paper's core point.

use crate::service::ServiceSpec;
use crate::strategy::{BidDecision, BiddingStrategy, PoolBid, ZoneState};

/// The `Extra(m, p)` heuristic.
#[derive(Clone, Copy, Debug)]
pub struct ExtraStrategy {
    /// Additional nodes beyond the baseline count.
    pub extra_nodes: usize,
    /// Extra portion of the spot price to bid (0.1 ⇒ bid = spot × 1.1).
    pub extra_portion: f64,
}

impl ExtraStrategy {
    /// `Extra(m, p)`.
    pub fn new(extra_nodes: usize, extra_portion: f64) -> Self {
        assert!(extra_portion >= 0.0, "negative portion");
        ExtraStrategy {
            extra_nodes,
            extra_portion,
        }
    }
}

impl BiddingStrategy for ExtraStrategy {
    fn name(&self) -> String {
        format!("Extra({},{})", self.extra_nodes, self.extra_portion)
    }

    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        _horizon_minutes: u32,
    ) -> BidDecision {
        let want = spec.baseline_nodes + self.extra_nodes;
        let mut by_price: Vec<&ZoneState> = zones.iter().collect();
        by_price.sort_by_key(|z| (z.spot_price, z.zone.ordinal(), z.instance_type.ordinal()));
        let bids = by_price
            .into_iter()
            .take(want)
            .map(|z| PoolBid {
                zone: z.zone,
                instance_type: z.instance_type,
                bid: z.spot_price.scale(1.0 + self.extra_portion),
            })
            .collect();
        BidDecision { bids }
    }
}

/// A one-shot bidding wrapper modelling Andrzejak et al.'s decision model
/// (the paper's related work, [3]): compute an SLA-respecting bid
/// assignment **once**, then hold it unchanged for the whole deployment —
/// no re-bidding at interval boundaries. The paper argues this "simple
/// approach is not suitable for the case of frequent fluctuation of spot
/// prices"; the ablation quantifies that claim against online Jupiter.
pub struct FixedOnce<S> {
    inner: S,
    decision: std::sync::Mutex<Option<crate::strategy::BidDecision>>,
}

impl<S> FixedOnce<S> {
    /// Wrap `inner`, freezing its first decision.
    pub fn new(inner: S) -> Self {
        FixedOnce {
            inner,
            decision: std::sync::Mutex::new(None),
        }
    }
}

impl<S: BiddingStrategy> BiddingStrategy for FixedOnce<S> {
    fn name(&self) -> String {
        format!("{} [fixed-once]", self.inner.name())
    }

    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision {
        let mut cached = self.decision.lock().expect("poisoned");
        if let Some(d) = cached.as_ref() {
            return d.clone();
        }
        let d = self.inner.decide(zones, spec, horizon_minutes);
        *cached = Some(d.clone());
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::{InstanceType, Price, PricePoint, PriceTrace, Zone};
    use spot_model::{FailureModel, FailureModelConfig};

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    fn dummy_model() -> FailureModel {
        FailureModel::from_trace(
            &PriceTrace::new(
                vec![
                    PricePoint {
                        minute: 0,
                        price: p(0.01),
                    },
                    PricePoint {
                        minute: 10,
                        price: p(0.02),
                    },
                ],
                20,
            ),
            FailureModelConfig::default(),
        )
    }

    #[test]
    fn picks_cheapest_n_plus_m_and_scales_bids() {
        let model = dummy_model();
        let zones = spot_market::topology::all_zones();
        let states: Vec<ZoneState> = (0..8)
            .map(|i| ZoneState {
                zone: zones[i],
                instance_type: InstanceType::M1Small,
                spot_price: p(0.004 + 0.001 * i as f64),
                sojourn_age: 0,
                on_demand: p(0.044),
                model: &model,
            })
            .collect();
        let spec = ServiceSpec::lock_service();

        let d0 = ExtraStrategy::new(0, 0.1).decide(&states, &spec, 60);
        assert_eq!(d0.n(), 5);
        // Cheapest five are zones 0..5; bids are spot × 1.1.
        assert_eq!(d0.bid_for(zones[0], InstanceType::M1Small), Some(p(0.0044)));
        assert_eq!(d0.bid_for(zones[4], InstanceType::M1Small), Some(p(0.0088)));
        assert_eq!(d0.bid_for(zones[5], InstanceType::M1Small), None);

        let d2 = ExtraStrategy::new(2, 0.2).decide(&states, &spec, 60);
        assert_eq!(d2.n(), 7);
        assert_eq!(d2.bid_for(zones[6], InstanceType::M1Small), Some(p(0.012)));
    }

    #[test]
    fn fewer_zones_than_wanted_takes_all() {
        let model = dummy_model();
        let zones = spot_market::topology::all_zones();
        let states: Vec<ZoneState> = (0..3)
            .map(|i| ZoneState {
                zone: zones[i],
                instance_type: InstanceType::M1Small,
                spot_price: p(0.01),
                sojourn_age: 0,
                on_demand: p(0.044),
                model: &model,
            })
            .collect();
        let spec = ServiceSpec::lock_service();
        let d = ExtraStrategy::new(0, 0.2).decide(&states, &spec, 60);
        assert_eq!(d.n(), 3);
    }

    #[test]
    fn names() {
        assert_eq!(ExtraStrategy::new(0, 0.1).name(), "Extra(0,0.1)");
        assert_eq!(ExtraStrategy::new(2, 0.2).name(), "Extra(2,0.2)");
        assert_eq!(
            FixedOnce::new(ExtraStrategy::new(0, 0.1)).name(),
            "Extra(0,0.1) [fixed-once]"
        );
    }

    #[test]
    fn fixed_once_freezes_the_first_decision() {
        let model = dummy_model();
        let zones = spot_market::topology::all_zones();
        let mk_states = |spot0: f64| -> Vec<(Zone, Price)> {
            (0..6).map(|i| (zones[i], p(spot0 + 0.001 * i as f64))).collect()
        };
        let spec = ServiceSpec::lock_service();
        let frozen = FixedOnce::new(ExtraStrategy::new(0, 0.1));

        let build = |prices: &[(Zone, Price)]| -> Vec<ZoneState<'_>> {
            prices
                .iter()
                .map(|&(zone, spot_price)| ZoneState {
                    zone,
                    instance_type: InstanceType::M1Small,
                    spot_price,
                    sojourn_age: 0,
                    on_demand: p(0.044),
                    model: &model,
                })
                .collect()
        };
        let a = mk_states(0.004);
        let first = frozen.decide(&build(&a), &spec, 60);
        // Prices move; the frozen strategy must not.
        let b = mk_states(0.020);
        let second = frozen.decide(&build(&b), &spec, 60);
        assert_eq!(first, second);
        // The unwrapped strategy would have re-bid.
        let live = ExtraStrategy::new(0, 0.1).decide(&build(&b), &spec, 60);
        assert_ne!(live, second);
    }
}
