//! The paper's proposed extension (§5.5): "detect the frequency of spot
//! prices fluctuating and change the bidding interval correspondingly."
//!
//! A short interval reacts quickly but pays startup churn; a long one
//! saves churn but holds stale bids through market swings (the paper's
//! sweeps find ≈ 6 h the best fixed choice). The adaptive rule here sizes
//! each interval so that the *expected number of price changes per zone
//! within the interval* stays near a target: fast-moving markets re-bid
//! hourly, quiet ones stretch toward the 12-hour cap.

use jupiter::{BiddingStrategy, ModelStore, ServiceSpec};
use obs::Obs;
use spot_market::Market;

use crate::lifecycle::{replay_schedule_stored, ReplayConfig};
use crate::results::ReplayResult;

/// Parameters of the adaptive interval rule.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Smallest interval, hours.
    pub min_hours: u64,
    /// Largest interval, hours.
    pub max_hours: u64,
    /// Desired price changes per zone per interval.
    pub target_changes: f64,
    /// Trailing window used to estimate the change rate, minutes.
    pub lookback_minutes: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_hours: 1,
            max_hours: 12,
            target_changes: 12.0,
            lookback_minutes: 24 * 60,
        }
    }
}

/// The interval (minutes) the adaptive rule picks at `boundary`, from the
/// *revealed* trailing price history only.
pub fn adaptive_interval(
    market: &Market,
    spec: &ServiceSpec,
    cfg: &AdaptiveConfig,
    boundary: u64,
) -> u64 {
    let ty = spec.instance_type;
    let from = boundary.saturating_sub(cfg.lookback_minutes);
    let span_hours = (boundary - from).max(60) as f64 / 60.0;
    let mut rate_sum = 0.0;
    let mut zones = 0.0;
    for &z in market.zones() {
        if boundary == 0 {
            break;
        }
        let w = market.trace(z, ty).window(from, boundary.max(from + 1));
        rate_sum += (w.points().len() - 1) as f64 / span_hours;
        zones += 1.0;
    }
    let rate = if zones > 0.0 { rate_sum / zones } else { 0.0 };
    let hours = if rate <= f64::EPSILON {
        cfg.max_hours
    } else {
        (cfg.target_changes / rate).round().max(1.0) as u64
    };
    hours.clamp(cfg.min_hours, cfg.max_hours) * 60
}

/// Replay a strategy under the adaptive interval schedule.
pub fn replay_adaptive<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    config: ReplayConfig,
    adaptive: AdaptiveConfig,
) -> ReplayResult {
    let store = ModelStore::new();
    replay_adaptive_stored(market, spec, strategy, config, adaptive, &store, &Obs::disabled())
}

/// [`replay_adaptive`] with the training fit served from a shared
/// [`ModelStore`], so an adaptive run alongside fixed-interval cells of
/// the same scenario reuses their per-zone kernels.
pub fn replay_adaptive_stored<S: BiddingStrategy>(
    market: &Market,
    spec: &ServiceSpec,
    strategy: S,
    mut config: ReplayConfig,
    adaptive: AdaptiveConfig,
    store: &ModelStore,
    obs: &Obs,
) -> ReplayResult {
    config.interval_hours = adaptive.min_hours.max(1);
    let spec_cloned = spec.clone();
    let mut result = replay_schedule_stored(
        market,
        spec,
        strategy,
        config,
        |boundary| adaptive_interval(market, &spec_cloned, &adaptive, boundary),
        store,
        obs,
    );
    result.strategy = format!("{} [adaptive]", result.strategy);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use jupiter::ExtraStrategy;
    use spot_market::{InstanceType, MarketConfig};

    fn market() -> Market {
        let mut cfg = MarketConfig::paper(13, 2 * 7 * 24 * 60);
        cfg.zones.truncate(6);
        cfg.types = vec![InstanceType::M1Small];
        Market::generate(cfg)
    }

    #[test]
    fn interval_respects_bounds_and_rate() {
        let market = market();
        let spec = ServiceSpec::lock_service();
        let cfg = AdaptiveConfig::default();
        let at = 7 * 24 * 60;
        let minutes = adaptive_interval(&market, &spec, &cfg, at);
        assert!(minutes >= cfg.min_hours * 60 && minutes <= cfg.max_hours * 60);
        // A higher change target stretches the interval.
        let longer = adaptive_interval(
            &market,
            &spec,
            &AdaptiveConfig {
                target_changes: 48.0,
                ..cfg
            },
            at,
        );
        assert!(longer >= minutes);
    }

    #[test]
    fn adaptive_replay_runs_and_labels_itself() {
        let market = market();
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(7 * 24 * 60, 9 * 24 * 60, 6);
        let r = replay_adaptive(
            &market,
            &spec,
            ExtraStrategy::new(0, 0.2),
            config,
            AdaptiveConfig::default(),
        );
        assert!(r.strategy.contains("[adaptive]"));
        assert_eq!(r.window_minutes, 2 * 24 * 60);
        assert!(!r.intervals.is_empty());
        // Interval lengths actually vary with the market unless the rate
        // is perfectly flat; all stay within bounds.
        for w in r.intervals.windows(2) {
            let len = w[1].start - w[0].start;
            assert!((60..=12 * 60).contains(&len), "interval {len}");
        }
    }
}
