//! Scenario fixtures shared by the integration suites: the synthetic
//! markets and protocol clusters the tests previously each hand-rolled.

use jupiter::{ExtraStrategy, ModelStore, ServiceSpec};
use obs::Obs;
use paxos::{Cluster, LockService, ReplicaConfig};
use replay::{replay_repair_stored, RepairConfig, ReplayConfig, ReplayResult};
use simnet::NetworkConfig;
use spot_market::{InstanceType, Market, MarketConfig};
use storage::{RsCluster, RsConfig};

/// A small paper-parameterized market: `weeks` of history across the
/// first `zones` availability zones, m1.small only.
pub fn quick_market(seed: u64, weeks: u64, zones: usize) -> Market {
    let mut cfg = MarketConfig::paper(seed, weeks * 7 * 24 * 60);
    cfg.zones.truncate(zones.max(1));
    cfg.types = vec![InstanceType::M1Small];
    Market::generate(cfg)
}

/// A day-granularity market for property tests; `zones` is clamped to
/// the 2–8 range the replay engine is exercised at.
pub fn market_days(seed: u64, zones: usize, days: u64) -> Market {
    let mut cfg = MarketConfig::paper(seed, days * 24 * 60);
    cfg.zones.truncate(zones.clamp(2, 8));
    cfg.types = vec![InstanceType::M1Small];
    Market::generate(cfg)
}

/// A day-granularity heterogeneous market: the paper-parameterized
/// per-type price processes ([`MarketConfig::hetero_paper`]) across all
/// four instance types, with `zones` clamped to the 2–8 range.
pub fn hetero_market_days(seed: u64, zones: usize, days: u64) -> Market {
    let mut cfg = MarketConfig::hetero_paper(seed, days * 24 * 60);
    cfg.zones.truncate(zones.clamp(2, 8));
    Market::generate(cfg)
}

/// A `n`-replica Paxos lock-service cluster on the default WAN model,
/// with the given replica configuration (pass
/// [`ReplicaConfig::default`] unless the test needs otherwise).
pub fn lock_cluster(n: usize, cfg: ReplicaConfig, seed: u64) -> Cluster<LockService> {
    Cluster::new(n, LockService::new(), cfg, NetworkConfig::default(), seed)
}

/// A θ(m, n) RS-Paxos storage cluster on the default WAN model.
pub fn storage_cluster(n: usize, cfg: RsConfig, seed: u64) -> RsCluster {
    RsCluster::new(n, cfg, NetworkConfig::default(), seed)
}

/// Two replays of the same kill-prone lock-service deployment over
/// `market` — repair off and under `repair` — through one shared frozen
/// kernel store, so the boundary decisions are byte-identical and every
/// difference between the pair is the repair controller's doing. The
/// strategy is the Extra(0, 0.02) razor-thin heuristic, which bids at
/// the spot price and reliably takes mid-interval out-of-bid kills.
/// `obs` instruments the repairing replay (`repair.*`, `replay.*`).
pub fn repair_pair(
    market: &Market,
    eval_start: u64,
    interval_hours: u64,
    repair: RepairConfig,
    obs: &Obs,
) -> (ReplayResult, ReplayResult) {
    let spec = ServiceSpec::lock_service();
    let config = ReplayConfig::new(eval_start, market.horizon(), interval_hours);
    let store = ModelStore::new();
    let off = replay_repair_stored(
        market,
        &spec,
        ExtraStrategy::new(0, 0.02),
        config,
        RepairConfig::off(),
        &store,
        &Obs::disabled(),
    );
    let repaired = replay_repair_stored(
        market,
        &spec,
        ExtraStrategy::new(0, 0.02),
        config,
        repair,
        &store,
        obs,
    );
    (off, repaired)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markets_are_seed_deterministic() {
        let a = quick_market(3, 1, 4);
        let b = quick_market(3, 1, 4);
        assert_eq!(a.zones(), b.zones());
        assert_eq!(a.horizon(), b.horizon());
        let z = a.zones()[0];
        let ty = InstanceType::M1Small;
        for minute in [0, 100, 1_000] {
            assert_eq!(
                a.trace(z, ty).price_at(minute),
                b.trace(z, ty).price_at(minute)
            );
        }
    }

    #[test]
    fn clamped_zone_counts() {
        assert_eq!(market_days(1, 0, 1).zones().len(), 2);
        assert_eq!(market_days(1, 100, 1).zones().len(), 8);
    }

    #[test]
    fn repair_pair_differs_only_by_the_controller() {
        let market = quick_market(21, 2, 8);
        let (obs, _clock) = Obs::simulated();
        let (off, hybrid) = repair_pair(
            &market,
            7 * 24 * 60,
            3,
            RepairConfig::hybrid(),
            &obs,
        );
        // Same boundary decisions: identical interval grid and targets.
        assert_eq!(off.intervals.len(), hybrid.intervals.len());
        for (a, b) in off.intervals.iter().zip(&hybrid.intervals) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.group_size, b.group_size);
        }
        // The controller only ever adds uptime.
        assert!(hybrid.up_minutes >= off.up_minutes);
        assert!(hybrid.degraded_minutes <= off.degraded_minutes);
    }
}
