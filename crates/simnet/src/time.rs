//! Virtual time for the simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, measured in milliseconds since simulation start.
///
/// `SimTime` is a thin wrapper over `u64` so that raw millisecond counts and
/// times cannot be confused at API boundaries. Durations are also expressed
/// as `SimTime` offsets (the simulator has no separate duration type; the
/// arithmetic below keeps usage ergonomic).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time infinitely far in the future (used as a run-forever bound).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_minutes(m: u64) -> Self {
        SimTime(m * 60_000)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000)
    }

    /// The raw millisecond count.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds elapsed (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole minutes elapsed (truncating).
    #[inline]
    pub const fn as_minutes(self) -> u64 {
        self.0 / 60_000
    }

    /// Whole hours elapsed (truncating).
    #[inline]
    pub const fn as_hours(self) -> u64 {
        self.0 / 3_600_000
    }

    /// Saturating subtraction, returning the gap between two times.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let s = self.as_secs() % 60;
        let m = self.as_minutes() % 60;
        let h = self.as_hours();
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_minutes(3).as_secs(), 180);
        assert_eq!(SimTime::from_hours(1).as_minutes(), 60);
        assert_eq!(SimTime::from_hours(25).as_hours(), 25);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!((a + b).as_secs(), 14);
        assert_eq!((a - b).as_secs(), 6);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 14);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_millis(3_661_042).to_string(), "01:01:01.042");
    }

    #[test]
    fn max_is_sticky_under_addition() {
        assert_eq!(SimTime::MAX + SimTime::from_hours(5), SimTime::MAX);
    }
}
