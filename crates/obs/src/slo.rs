//! Online SLO evaluation: declarative [`SloSpec`]s, error-budget
//! accounting over a stream of sim-time observations, and Google-SRE
//! style multi-window burn-rate alerting (a fast paging window and a
//! slow ticketing window, both in sim time, both deterministic).
//!
//! The unit of an observation is a *good fraction over a total*: the
//! replay feeds one observation per accounted minute-span
//! (`good = span` when a quorum was up), the service replay feeds one
//! per completed request (`good = 1` when it met the latency bound).
//! Burn rate over a trailing window `W` is
//! `(bad_W / total_W) / (1 − objective)` — burn 1.0 spends the budget
//! exactly at the rate that exhausts it at the window's end, burn
//! `x` spends it `x` times faster.

use std::collections::VecDeque;

use crate::monitor::{AlertSink, Severity};
use crate::trace::FieldValue;

/// A declarative service-level objective with its alerting windows.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// SLO name; alerts fire as `slo.{name}.fast_burn` /
    /// `slo.{name}.slow_burn` / `slo.{name}.budget_exhausted`.
    pub name: String,
    /// Target good fraction (the paper's fleet target is 0.99).
    pub objective: f64,
    /// Budget window in sim minutes: the error budget is
    /// `(1 − objective) × window_minutes` bad units.
    pub window_minutes: u64,
    /// Fast (paging) burn window, sim minutes.
    pub fast_window_minutes: u64,
    /// Slow (ticketing) burn window, sim minutes.
    pub slow_window_minutes: u64,
    /// Burn-rate threshold for the fast window (SRE convention: 14.4
    /// spends 2% of a 30-day budget in an hour).
    pub fast_burn_threshold: f64,
    /// Burn-rate threshold for the slow window.
    pub slow_burn_threshold: f64,
}

impl SloSpec {
    /// The paper's fleet-availability SLO (§5: ≥ 0.99 of evaluated
    /// minutes with a quorum up) over a budget window of
    /// `window_minutes`, with a 1-hour fast window at burn 14.4 and a
    /// 6-hour slow window at burn 6.
    pub fn paper_availability(window_minutes: u64) -> SloSpec {
        SloSpec {
            name: "availability".to_owned(),
            objective: 0.99,
            window_minutes,
            fast_window_minutes: 60,
            slow_window_minutes: 360,
            fast_burn_threshold: 14.4,
            slow_burn_threshold: 6.0,
        }
    }

    /// The request-latency SLO: 99% of requests within the configured
    /// SLA bound, same windows/thresholds as the availability SLO.
    pub fn request_latency(window_minutes: u64) -> SloSpec {
        SloSpec {
            name: "request_latency".to_owned(),
            ..SloSpec::paper_availability(window_minutes)
        }
    }
}

/// Online evaluator for one [`SloSpec`]: feed observations in sim-time
/// order via [`SloTracker::record`]; burn-rate alerts fire into the
/// [`AlertSink`] deterministically, cross-referencing the audit-record
/// seqs registered via [`SloTracker::link_decision`].
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    sink: AlertSink,
    /// Trailing observations `(minute, bad, total)` covering the slow
    /// window (older entries are evicted).
    window: VecDeque<(u64, f64, f64)>,
    first_minute: Option<u64>,
    cum_bad: f64,
    cum_total: f64,
    fast_firing: bool,
    slow_firing: bool,
    budget_fired: bool,
    alerts_fired: u64,
    /// Audit seqs of the most recent decisions, attached to fired
    /// alerts (bounded).
    recent_refs: VecDeque<u64>,
}

/// How many recent decision refs an alert carries.
const MAX_REFS: usize = 16;

impl SloTracker {
    /// A tracker for `spec`, alerting into `sink`.
    pub fn new(spec: SloSpec, sink: AlertSink) -> SloTracker {
        SloTracker {
            spec,
            sink,
            window: VecDeque::new(),
            first_minute: None,
            cum_bad: 0.0,
            cum_total: 0.0,
            fast_firing: false,
            slow_firing: false,
            budget_fired: false,
            alerts_fired: 0,
            recent_refs: VecDeque::new(),
        }
    }

    /// The spec under evaluation.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Register the audit seq of a decision now in effect; the most
    /// recent [`MAX_REFS`] are attached to any alert fired later.
    pub fn link_decision(&mut self, seq: u64) {
        if !self.sink.is_enabled() {
            return;
        }
        if self.recent_refs.len() >= MAX_REFS {
            self.recent_refs.pop_front();
        }
        self.recent_refs.push_back(seq);
    }

    /// Feed one observation at `minute`: `good` good units out of
    /// `total`. Returns the seq of the fast-window alert if one fired
    /// at this observation. No-op (a single branch) when the sink is
    /// disabled.
    pub fn record(&mut self, minute: u64, good: f64, total: f64) -> Option<u64> {
        if !self.sink.is_enabled() || total <= 0.0 {
            return None;
        }
        let bad = (total - good).max(0.0);
        let first = *self.first_minute.get_or_insert(minute);
        self.cum_bad += bad;
        self.cum_total += total;
        self.window.push_back((minute, bad, total));
        let keep_from = minute.saturating_sub(self.spec.slow_window_minutes.max(1) - 1);
        while self.window.front().map(|&(m, _, _)| m < keep_from).unwrap_or(false) {
            self.window.pop_front();
        }

        // Burn alerts stay armed-but-quiet until a full window of
        // stream has elapsed: a partial window inflates the bad
        // fraction (one bad minute at stream start is burn 100).
        let elapsed = minute.saturating_sub(first) + 1;
        let at_micros = minute.saturating_mul(60_000_000);
        let fast = self.burn_rate(self.spec.fast_window_minutes);
        let slow = self.burn_rate(self.spec.slow_window_minutes);
        let mut fast_seq = None;
        if fast >= self.spec.fast_burn_threshold && elapsed >= self.spec.fast_window_minutes {
            if !self.fast_firing {
                self.fast_firing = true;
                fast_seq = self.fire(
                    at_micros,
                    "fast_burn",
                    Severity::Critical,
                    fast,
                    self.spec.fast_window_minutes,
                );
            }
        } else {
            self.fast_firing = false;
        }
        if slow >= self.spec.slow_burn_threshold && elapsed >= self.spec.slow_window_minutes {
            if !self.slow_firing {
                self.slow_firing = true;
                self.fire(
                    at_micros,
                    "slow_burn",
                    Severity::Warning,
                    slow,
                    self.spec.slow_window_minutes,
                );
            }
        } else {
            self.slow_firing = false;
        }
        // Tolerance absorbs the f64 error in (1 − objective) × window.
        if !self.budget_fired && self.budget_remaining() <= 1e-9 {
            self.budget_fired = true;
            self.fire(at_micros, "budget_exhausted", Severity::Critical, fast, 0);
        }
        fast_seq
    }

    fn fire(
        &mut self,
        at_micros: u64,
        which: &str,
        severity: Severity,
        burn: f64,
        window_minutes: u64,
    ) -> Option<u64> {
        self.alerts_fired += 1;
        self.sink.emit(
            at_micros,
            &format!("slo.{}.{which}", self.spec.name),
            severity,
            format!(
                "{} burning at {burn:.1}× budget rate ({}% budget left)",
                self.spec.name,
                (self.budget_remaining().max(0.0) * 100.0).round()
            ),
            self.recent_refs.iter().copied().collect(),
            vec![
                ("burn_rate".to_owned(), FieldValue::F64(burn)),
                ("window_minutes".to_owned(), FieldValue::U64(window_minutes)),
                (
                    "budget_remaining".to_owned(),
                    FieldValue::F64(self.budget_remaining()),
                ),
                ("objective".to_owned(), FieldValue::F64(self.spec.objective)),
            ],
        )
    }

    /// Burn rate over the trailing `window_minutes` ending at the last
    /// observation: `(bad / total) / (1 − objective)`; 0 with no data.
    pub fn burn_rate(&self, window_minutes: u64) -> f64 {
        let Some(&(last, _, _)) = self.window.back() else {
            return 0.0;
        };
        let from = last.saturating_sub(window_minutes.max(1) - 1);
        let (mut bad, mut total) = (0.0, 0.0);
        for &(m, b, t) in self.window.iter().rev() {
            if m < from {
                break;
            }
            bad += b;
            total += t;
        }
        let budget_rate = (1.0 - self.spec.objective).max(f64::EPSILON);
        if total <= 0.0 {
            0.0
        } else {
            (bad / total) / budget_rate
        }
    }

    /// Cumulative good fraction observed so far (1.0 with no data).
    pub fn availability(&self) -> f64 {
        if self.cum_total <= 0.0 {
            1.0
        } else {
            1.0 - self.cum_bad / self.cum_total
        }
    }

    /// Fraction of the error budget left (can go negative when blown):
    /// `1 − bad / ((1 − objective) × window_minutes)`.
    pub fn budget_remaining(&self) -> f64 {
        let budget = (1.0 - self.spec.objective) * self.spec.window_minutes as f64;
        if budget <= 0.0 {
            return 0.0;
        }
        1.0 - self.cum_bad / budget
    }

    /// Alerts this tracker has fired.
    pub fn alerts_fired(&self) -> u64 {
        self.alerts_fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::paper_availability(7 * 24 * 60)
    }

    #[test]
    fn healthy_stream_fires_nothing() {
        let sink = AlertSink::new(64);
        let mut t = SloTracker::new(spec(), sink.clone());
        for minute in 0..1_000 {
            t.record(minute, 1.0, 1.0);
        }
        assert!(sink.is_empty());
        assert_eq!(t.availability(), 1.0);
        assert!((t.budget_remaining() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fast_burn_fires_deterministically_and_once_per_episode() {
        let sink = AlertSink::new(64);
        let mut t = SloTracker::new(spec(), sink.clone());
        for minute in 0..600 {
            t.record(minute, 1.0, 1.0);
        }
        // Total outage: burn over the 60-minute window crosses 14.4
        // once ⌈0.144 × 60⌉ = 9 bad minutes accumulate.
        let mut fired_at = None;
        for minute in 600..660 {
            if let Some(seq) = t.record(minute, 0.0, 1.0) {
                fired_at = Some((minute, seq));
                break;
            }
        }
        let (minute, _) = fired_at.expect("fast burn fires");
        assert_eq!(minute, 608, "9th bad minute of the fast window");
        // Still burning: no duplicate alert.
        for minute in 609..660 {
            assert_eq!(t.record(minute, 0.0, 1.0), None);
        }
        let fast: Vec<_> = sink
            .snapshot()
            .into_iter()
            .filter(|a| a.monitor == "slo.availability.fast_burn")
            .collect();
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].at_micros, 608 * 60_000_000);
        assert_eq!(fast[0].severity, Severity::Critical);
    }

    #[test]
    fn slow_burn_needs_a_sustained_deficit() {
        let sink = AlertSink::new(64);
        let mut t = SloTracker::new(spec(), sink.clone());
        // 8 bad minutes then recovery: under both thresholds' windows.
        for minute in 0..8 {
            t.record(minute, 0.0, 1.0);
        }
        for minute in 8..360 {
            t.record(minute, 1.0, 1.0);
        }
        assert!(
            sink.snapshot()
                .iter()
                .all(|a| a.monitor != "slo.availability.slow_burn"),
            "brief blip never tickets"
        );
        // A sustained 10%-bad stream crosses the slow threshold
        // (burn 10 ≥ 6) once enough of the window is bad.
        let mut t2 = SloTracker::new(spec(), AlertSink::new(64).clone());
        let sink2 = t2.sink.clone();
        for minute in 0..3_600 {
            let good = if minute % 10 == 0 { 0.0 } else { 1.0 };
            t2.record(minute, good, 1.0);
        }
        assert!(sink2
            .snapshot()
            .iter()
            .any(|a| a.monitor == "slo.availability.slow_burn"));
    }

    #[test]
    fn alerts_carry_linked_decisions() {
        let sink = AlertSink::new(64);
        let mut t = SloTracker::new(spec(), sink.clone());
        for seq in 1..=20 {
            t.link_decision(seq);
        }
        for minute in 0..60 {
            t.record(minute, 0.0, 1.0);
        }
        let alert = &sink.snapshot()[0];
        assert_eq!(alert.audit_refs.len(), MAX_REFS);
        assert_eq!(*alert.audit_refs.last().unwrap(), 20);
    }

    #[test]
    fn budget_accounting_is_exact() {
        let sink = AlertSink::new(1024);
        let mut t = SloTracker::new(SloSpec::paper_availability(1_000), sink.clone());
        // Budget = 10 bad minutes. Spend 5: half left.
        for minute in 0..5 {
            t.record(minute, 0.0, 1.0);
        }
        assert!((t.budget_remaining() - 0.5).abs() < 1e-12);
        for minute in 5..10 {
            t.record(minute, 0.0, 1.0);
        }
        assert!(t.budget_remaining() <= 1e-9);
        assert!(sink
            .snapshot()
            .iter()
            .any(|a| a.monitor == "slo.availability.budget_exhausted"));
        assert!((t.availability() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_sink_short_circuits() {
        let mut t = SloTracker::new(spec(), AlertSink::disabled());
        for minute in 0..100 {
            assert_eq!(t.record(minute, 0.0, 1.0), None);
        }
        // Nothing accumulated: the disabled path does no bookkeeping.
        assert_eq!(t.availability(), 1.0);
        assert_eq!(t.alerts_fired(), 0);
    }
}
