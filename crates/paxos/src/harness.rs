//! Driver-side helpers: build clusters, submit operations, manage
//! membership, and interrogate replicas — the API the examples, tests and
//! the replay harness use.

use simnet::{ChaosAction, NetworkConfig, NodeId, SimTime, Simulation};

use crate::client::ClientState;
use crate::msg::ClientOp;
use crate::node::PaxosNode;
use crate::replica::{Replica, ReplicaConfig, StateMachine};

/// Sim time with zero drain progress after which the harness liveness
/// watchdog fires `watchdog.liveness`: 30 sim-seconds, comfortably past
/// any healthy election + retry cycle, in the tracer's microsecond
/// convention.
pub const LIVENESS_STALL_BOUND: u64 = 30_000_000;

/// A Paxos cluster under simulation: replicas, clients, and the driver
/// conveniences around them.
pub struct Cluster<SM: StateMachine> {
    /// The underlying simulation (exposed for fault injection).
    pub sim: Simulation<PaxosNode<SM>>,
    servers: Vec<NodeId>,
    clients: Vec<NodeId>,
    replica_cfg: ReplicaConfig,
    /// Pristine state machine, cloned for chaos-driven restarts.
    initial_sm: SM,
    seed: u64,
}

impl<SM: StateMachine> Cluster<SM> {
    /// Build a cluster of `n` replicas initialized with clones of `sm`.
    pub fn new(
        n: usize,
        sm: SM,
        replica_cfg: ReplicaConfig,
        net: NetworkConfig,
        seed: u64,
    ) -> Self {
        assert!(n >= 1, "need at least one replica");
        let mut sim = Simulation::new(net, seed);
        // Network faults (drops, duplicates, delay spikes) emit
        // visibility events into the same trace ring the replicas use,
        // so orphaned request spans point at their cause.
        sim.set_tracer(replica_cfg.obs.trace.clone());
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        for &id in &ids {
            let replica = Replica::new(id, ids.clone(), sm.clone(), replica_cfg.clone(), seed);
            let got = sim.add_node(PaxosNode::Server(replica));
            assert_eq!(got, id);
        }
        Cluster {
            sim,
            servers: ids,
            clients: Vec::new(),
            replica_cfg,
            initial_sm: sm,
            seed,
        }
    }

    /// The current server node ids (as known to the driver).
    pub fn servers(&self) -> &[NodeId] {
        &self.servers
    }

    /// The client node ids.
    pub fn clients(&self) -> &[NodeId] {
        &self.clients
    }

    /// Add a closed-loop client.
    pub fn add_client(&mut self) -> NodeId {
        let id = NodeId(self.sim.node_count());
        let client = ClientState::new(id, self.servers.clone(), self.seed)
            .with_obs(self.replica_cfg.obs.clone());
        let got = self.sim.add_node(PaxosNode::Client(client));
        assert_eq!(got, id);
        self.clients.push(id);
        id
    }

    /// Add an open-loop workload session playing `schedule` (sorted by
    /// arrival time); see [`crate::open_loop::OpenLoopClient`].
    pub fn add_open_loop(
        &mut self,
        schedule: Vec<(SimTime, SM::Command)>,
    ) -> NodeId {
        let id = NodeId(self.sim.node_count());
        let session = crate::open_loop::OpenLoopClient::new(id, self.servers.clone(), schedule)
            .with_obs(self.replica_cfg.obs.clone());
        let got = self.sim.add_node(PaxosNode::OpenLoop(session));
        assert_eq!(got, id);
        id
    }

    /// Queue an operation on `client`; it is issued at the client's next
    /// tick and retried until a leader applies it.
    pub fn submit(&mut self, client: NodeId, op: ClientOp<SM::Command>) -> u64 {
        self.sim
            .actor_mut(client)
            .and_then(PaxosNode::as_client_mut)
            .expect("client exists")
            .submit(op)
    }

    /// Run the simulation until `client` has no outstanding operations or
    /// `deadline` passes. Returns true when the client drained. A
    /// liveness watchdog fires `watchdog.liveness` into the config's
    /// alert sink if requests sit outstanding with no progress for
    /// [`LIVENESS_STALL_BOUND`] of sim time.
    pub fn run_until_drained(&mut self, client: NodeId, deadline: SimTime) -> bool {
        let mut watchdog =
            obs::LivenessWatchdog::new(self.replica_cfg.obs.alerts.clone(), LIVENESS_STALL_BOUND);
        loop {
            let outstanding = self
                .sim
                .actor(client)
                .and_then(PaxosNode::as_client)
                .map(|c| c.outstanding())
                .unwrap_or(0);
            watchdog.observe(
                self.sim.now().as_millis().saturating_mul(1_000),
                outstanding as u64,
            );
            if outstanding == 0 {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let next = self.sim.now() + SimTime::from_millis(100);
            self.sim.run_until(next.min(deadline));
        }
    }

    /// The replica currently leading, if any replica believes it leads.
    pub fn leader(&self) -> Option<NodeId> {
        self.servers.iter().copied().find(|&id| {
            self.sim
                .actor(id)
                .and_then(PaxosNode::as_server)
                .map(|r| r.is_leader() && !r.is_retired())
                .unwrap_or(false)
        })
    }

    /// Immutable replica access.
    pub fn replica(&self, id: NodeId) -> Option<&Replica<SM>> {
        self.sim.actor(id).and_then(PaxosNode::as_server)
    }

    /// Crash a replica (spot instance killed out-of-bid).
    pub fn crash(&mut self, id: NodeId) {
        self.sim.crash(id);
    }

    /// Restart a crashed replica with an empty state machine clone — it
    /// rejoins and catches up from the log. `view` is the membership it
    /// should assume (typically another replica's current view).
    pub fn restart(&mut self, id: NodeId, sm: SM, view: Vec<NodeId>) {
        let replica = Replica::new(
            id,
            view,
            sm,
            self.replica_cfg.clone(),
            self.seed ^ id.0 as u64,
        );
        self.sim.restart(id, PaxosNode::Server(replica));
    }

    /// Launch a brand-new replica (a fresh spot instance) that expects to
    /// be added to the view via reconfiguration. Returns its node id.
    pub fn spawn_server(&mut self, sm: SM) -> NodeId {
        let id = NodeId(self.sim.node_count());
        let mut view = self.current_view().unwrap_or_else(|| self.servers.clone());
        if !view.contains(&id) {
            view.push(id);
        }
        let replica = Replica::new(
            id,
            view,
            sm,
            self.replica_cfg.clone(),
            self.seed ^ id.0 as u64,
        );
        let got = self.sim.add_node(PaxosNode::Server(replica));
        assert_eq!(got, id);
        self.servers.push(id);
        id
    }

    /// The membership view of the most advanced live replica.
    pub fn current_view(&self) -> Option<Vec<NodeId>> {
        self.servers
            .iter()
            .filter_map(|&id| self.sim.actor(id).and_then(PaxosNode::as_server))
            .filter(|r| !r.is_retired())
            .max_by_key(|r| (r.view_id(), r.commit_index()))
            .map(|r| r.view().to_vec())
    }

    /// Propagate the current view to every client (after membership
    /// changes, so clients stop poking removed servers).
    pub fn refresh_clients(&mut self) {
        let Some(view) = self.current_view() else {
            return;
        };
        for &c in &self.clients.clone() {
            if let Some(cl) = self.sim.actor_mut(c).and_then(PaxosNode::as_client_mut) {
                cl.set_servers(view.clone());
            }
        }
    }

    /// Execute one fault-schedule action against this cluster.
    ///
    /// Crash/restart are translated into the same operations the spot
    /// replay uses for out-of-bid terminations: a crashed replica stops
    /// dead mid-protocol; a restarted one reboots with its durable state
    /// intact (promises, accepted slots, applied log) and only volatile
    /// leadership state lost — the crash-recovery model Paxos safety
    /// requires. An instance whose disk is gone for good is modeled as a
    /// crash with no restart, or as a fresh node added via
    /// reconfiguration. Partition groups only list replicas, so every
    /// other node (clients, spawned servers) is appended to each side —
    /// chaos separates replicas from each other, not clients from the
    /// service. Idempotent where the schedule could race reality
    /// (crashing a dead node or restarting a live one is a no-op).
    pub fn apply_chaos(&mut self, action: &ChaosAction) {
        match action {
            ChaosAction::Crash(id) => {
                if self.sim.is_up(*id) {
                    self.crash(*id);
                }
            }
            ChaosAction::Restart(id) => {
                if !self.sim.is_up(*id) {
                    match self.sim.take_crashed(*id) {
                        Some(PaxosNode::Server(mut r)) => {
                            r.reboot();
                            self.sim.restart(*id, PaxosNode::Server(r));
                        }
                        _ => {
                            // No disk to recover (e.g. restarted before):
                            // rejoin pristine and catch up from peers.
                            let view =
                                self.current_view().unwrap_or_else(|| self.servers.clone());
                            self.restart(*id, self.initial_sm.clone(), view);
                        }
                    }
                }
            }
            ChaosAction::Partition(groups) => {
                let mut groups = groups.clone();
                let listed: Vec<NodeId> = groups.iter().flatten().copied().collect();
                for n in 0..self.sim.node_count() {
                    let id = NodeId(n);
                    if !listed.contains(&id) {
                        for g in &mut groups {
                            g.push(id);
                        }
                    }
                }
                self.sim.partition(groups);
            }
            ChaosAction::Heal => self.sim.heal(),
            ChaosAction::SetLinkChaos(chaos) => self.sim.set_link_chaos(chaos.clone()),
            ChaosAction::ClearLinkChaos => self.sim.clear_link_chaos(),
            ChaosAction::ClockSkew(id, ms) => self.sim.skew_clock(*id, *ms),
        }
    }

    /// Check that all live replicas agree on the chosen log prefix (the
    /// fundamental Paxos safety property). Returns the shortest common
    /// applied length, panicking on divergence.
    pub fn assert_log_agreement(&self) -> usize {
        let prefixes: Vec<_> = self
            .servers
            .iter()
            .filter_map(|&id| self.sim.actor(id).and_then(PaxosNode::as_server))
            .map(|r| r.applied_prefix())
            .collect();
        let min_len = prefixes.iter().map(Vec::len).min().unwrap_or(0);
        for i in 0..min_len {
            let (slot0, v0) = &prefixes[0][i];
            for p in &prefixes[1..] {
                let (slot, v) = &p[i];
                assert_eq!(slot0, slot, "slot order divergence at {i}");
                assert_eq!(
                    format!("{v0:?}"),
                    format!("{v:?}"),
                    "value divergence at slot {slot0}"
                );
            }
        }
        min_len
    }
}
