//! Unit tests for the obs crate: instrument semantics, bucket math,
//! clock behavior, concurrency, and JSON export.

use std::sync::Arc;
use std::thread;

use obs::{
    Clock, Counter, EventKind, FieldValue, Gauge, Histogram, ManualClock, Obs, Registry, Tracer,
    WallClock,
};

#[test]
fn histogram_bucket_boundaries() {
    // Bucket 0 holds only 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
    assert_eq!(obs::bucket_index(0), 0);
    assert_eq!(obs::bucket_index(1), 1);
    assert_eq!(obs::bucket_index(2), 2);
    assert_eq!(obs::bucket_index(3), 2);
    assert_eq!(obs::bucket_index(4), 3);
    assert_eq!(obs::bucket_index(7), 3);
    assert_eq!(obs::bucket_index(8), 4);
    assert_eq!(obs::bucket_index(1023), 10);
    assert_eq!(obs::bucket_index(1024), 11);
    assert_eq!(obs::bucket_index(u64::MAX), obs::HISTOGRAM_BUCKETS - 1);
    // Upper bounds invert the index mapping.
    assert_eq!(obs::bucket_upper_bound(0), 0);
    assert_eq!(obs::bucket_upper_bound(1), 1);
    assert_eq!(obs::bucket_upper_bound(2), 3);
    assert_eq!(obs::bucket_upper_bound(11), 2047);
    for v in [0u64, 1, 2, 3, 5, 100, 4096, 1 << 40] {
        assert!(obs::bucket_upper_bound(obs::bucket_index(v)) >= v);
    }
}

#[test]
fn histogram_quantiles_and_exact_stats() {
    let registry = Registry::new();
    let h = registry.histogram("latency");
    for v in 1..=100u64 {
        h.record(v);
    }
    let s = h.summary();
    assert_eq!(s.count, 100);
    assert_eq!(s.sum, 5050);
    assert!((s.mean - 50.5).abs() < 1e-9);
    assert_eq!(s.max, 100);
    // Quantiles are power-of-two upper bounds: p50 of 1..=100 is 50,
    // whose bucket [32, 64) reports 63.
    assert_eq!(s.p50, 63);
    assert_eq!(s.p95, 100); // bucket [64, 128) clamped to observed max
    assert_eq!(s.p99, 100);
}

#[test]
fn empty_histogram_is_all_zero() {
    let h = Registry::new().histogram("empty");
    let s = h.summary();
    assert_eq!(
        (s.count, s.sum, s.p50, s.p95, s.p99, s.max),
        (0, 0, 0, 0, 0, 0)
    );
    assert_eq!(s.mean, 0.0);
    // Interpolated estimates share the zero default — no NaN from the
    // 0/0 rank math.
    assert_eq!((s.p50_est, s.p90_est, s.p99_est), (0.0, 0.0, 0.0));
}

#[test]
fn interpolated_quantiles_within_a_single_bucket() {
    // Five identical samples of 7 all land in bucket [4, 7]. The
    // estimate interpolates by rank *within* the bucket: p50 (rank 3 of
    // 5) sits 3/5 of the way from 4 to the observed max 7.
    let h = Registry::new().histogram("h");
    for _ in 0..5 {
        h.record(7);
    }
    let s = h.summary();
    assert!((s.p50_est - 5.8).abs() < 1e-9, "p50_est = {}", s.p50_est);
    // Rank 5 of 5: the top of the bucket, clamped to the observed max.
    assert_eq!(s.p90_est, 7.0);
    assert_eq!(s.p99_est, 7.0);
}

#[test]
fn interpolated_quantiles_with_all_mass_in_the_overflow_bucket() {
    // u64::MAX lands in the final (overflow) bucket, whose range is
    // [2^63, u64::MAX]. Estimates must stay inside it — in particular
    // no overflow or NaN from the giant bucket width.
    let h = Registry::new().histogram("h");
    for _ in 0..3 {
        h.record(u64::MAX);
    }
    let s = h.summary();
    assert_eq!(s.max, u64::MAX);
    for est in [s.p50_est, s.p90_est, s.p99_est] {
        assert!(est.is_finite());
        assert!(est >= (1u64 << 63) as f64, "est {est} below bucket floor");
        assert!(est <= u64::MAX as f64, "est {est} above observed max");
    }
    // The top rank interpolates to the bucket ceiling = observed max.
    assert_eq!(s.p99_est, u64::MAX as f64);
}

#[test]
fn interpolated_quantiles_at_exact_boundary_ranks() {
    // 1..=10: buckets {1}, {2,3}, {4..7}, {8,9,10}. q·count is exactly
    // integral for p50 (rank 5) and p90 (rank 9), so the rank math must
    // not skip a bucket or double-count at the boundary.
    let h = Registry::new().histogram("h");
    for v in 1..=10u64 {
        h.record(v);
    }
    let s = h.summary();
    // Rank 5 falls 2 deep into the 4-sample bucket [4, 7]: 4 + 2/4 · 3.
    assert!((s.p50_est - 5.5).abs() < 1e-9, "p50_est = {}", s.p50_est);
    // Rank 9 falls 2 deep into the 3-sample bucket [8, 10]: 8 + 2/3 · 2.
    assert!(
        (s.p90_est - (8.0 + 2.0 / 3.0 * 2.0)).abs() < 1e-9,
        "p90_est = {}",
        s.p90_est
    );
    // Rank 10 is the bucket ceiling, clamped to the observed max.
    assert_eq!(s.p99_est, 10.0);

    // A rank landing exactly on a bucket's last sample interpolates to
    // that bucket's top, not into the next bucket: p50 of {1,1,8,8} is
    // rank 2 = the end of bucket [1, 1].
    let h2 = Registry::new().histogram("h2");
    for v in [1u64, 1, 8, 8] {
        h2.record(v);
    }
    assert_eq!(h2.summary().p50_est, 1.0);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let registry = Registry::new();
    let threads = 8;
    let per_thread = 10_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let counter = registry.counter("hits");
            thread::spawn(move || {
                for _ in 0..per_thread {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(registry.counter("hits").get(), threads * per_thread);
    assert_eq!(
        registry.snapshot().counter("hits"),
        Some(threads * per_thread)
    );
}

#[test]
fn concurrent_histogram_records_are_lossless() {
    let registry = Registry::new();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let h = registry.histogram("h");
            thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(t * 1000 + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = registry.histogram("h").summary();
    assert_eq!(s.count, 4000);
    assert_eq!(s.max, 3999);
}

#[test]
fn disabled_instruments_are_inert() {
    let registry = Registry::disabled();
    assert!(!registry.is_enabled());
    let c = registry.counter("c");
    let g = registry.gauge("g");
    let h = registry.histogram("h");
    c.add(5);
    g.set(1.5);
    h.record(9);
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0.0);
    assert_eq!(h.summary().count, 0);
    let snap = registry.snapshot();
    assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    // Default handles (struct-field defaults) are the disabled form.
    let d = Counter::default();
    d.inc();
    assert_eq!(d.get(), 0);
    Gauge::default().set(3.0);
    Histogram::default().record(1);
    let tracer = Tracer::disabled();
    tracer.event("x", &[]);
    tracer.span("y", &[]).end();
    assert!(tracer.events().is_empty());
}

#[test]
fn gauge_is_last_write_wins() {
    let g = Registry::new().gauge("availability");
    g.set(0.25);
    g.set(0.999);
    assert_eq!(g.get(), 0.999);
    g.set(-1.5);
    assert_eq!(g.get(), -1.5);
}

#[test]
fn manual_clock_span_durations_use_virtual_time() {
    let clock = Arc::new(ManualClock::new());
    let tracer = Tracer::new(clock.clone(), 64);
    clock.set_micros(1_000);
    let span = tracer.span("interval", &[("idx", FieldValue::U64(3))]);
    clock.set_micros(251_000);
    assert_eq!(span.elapsed_micros(), 250_000);
    span.end();
    let events = tracer.events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].kind, EventKind::SpanStart);
    assert_eq!(events[0].at_micros, 1_000);
    assert_eq!(events[1].kind, EventKind::SpanEnd);
    assert_eq!(events[1].at_micros, 251_000);
    assert_eq!(events[0].span_id, events[1].span_id);
    assert!(events[1]
        .fields
        .iter()
        .any(|(k, v)| k == "duration_micros" && *v == FieldValue::U64(250_000)));
}

#[test]
fn manual_clock_never_goes_backwards() {
    let clock = ManualClock::new();
    clock.set_micros(500);
    clock.set_micros(200); // stale setter loses
    assert_eq!(clock.now_micros(), 500);
    clock.advance_micros(10);
    assert_eq!(clock.now_micros(), 510);
}

#[test]
fn wall_clock_spans_measure_real_time() {
    let tracer = Tracer::new(Arc::new(WallClock::new()), 64);
    let span = tracer.span("sleep", &[]);
    thread::sleep(std::time::Duration::from_millis(5));
    span.end();
    let events = tracer.events();
    let dur = events[1]
        .fields
        .iter()
        .find_map(|(k, v)| match (k.as_str(), v) {
            ("duration_micros", FieldValue::U64(d)) => Some(*d),
            _ => None,
        })
        .unwrap();
    assert!(dur >= 5_000, "5ms sleep measured as {dur}us");
}

#[test]
fn ring_buffer_drops_oldest_and_counts() {
    let clock = Arc::new(ManualClock::new());
    let tracer = Tracer::new(clock, 4);
    for i in 0..10u64 {
        tracer.event("e", &[("i", FieldValue::U64(i))]);
    }
    assert_eq!(tracer.dropped(), 6);
    let events = tracer.events();
    assert_eq!(events.len(), 4);
    assert_eq!(events[0].fields[0].1, FieldValue::U64(6));
    assert_eq!(events[3].fields[0].1, FieldValue::U64(9));
}

#[test]
fn json_export_round_trips() {
    let (o, clock) = Obs::simulated();
    o.counter("replay.bids_placed").add(17);
    o.gauge("replay.availability").set(0.999925);
    o.histogram("paxos.phase2_micros").record(1500);
    clock.set_micros(42);
    o.trace.event(
        "replay.death",
        &[
            ("zone", FieldValue::Str("us-east-1a".into())),
            ("out_of_bid", FieldValue::Bool(true)),
            ("delta", FieldValue::I64(-3)),
            ("price \"quoted\"\n", FieldValue::F64(0.013)),
        ],
    );
    let doc = serde_json::parse_value(&o.to_json()).expect("export is valid JSON");
    let obj = doc.as_object().unwrap();

    let metrics = &obj.iter().find(|(k, _)| k == "metrics").unwrap().1;
    let counters = metrics
        .as_object()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "counters")
        .unwrap()
        .1
        .as_object()
        .unwrap();
    assert_eq!(counters[0].0, "replay.bids_placed");
    assert_eq!(counters[0].1.as_u64(), Some(17));

    let trace = &obj.iter().find(|(k, _)| k == "trace").unwrap().1;
    let events = trace
        .as_object()
        .unwrap()
        .iter()
        .find(|(k, _)| k == "events")
        .unwrap()
        .1
        .as_array()
        .unwrap();
    assert_eq!(events.len(), 1);
    let event = events[0].as_object().unwrap();
    let field = |name: &str| {
        event
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
            .unwrap()
    };
    assert_eq!(field("at_micros").as_u64(), Some(42));
    assert_eq!(field("name").as_str(), Some("replay.death"));
    let fields = field("fields");
    let fields = fields.as_object().unwrap();
    assert_eq!(fields[0].1.as_str(), Some("us-east-1a"));
    assert_eq!(fields[3].0, "price \"quoted\"\n"); // escaping survived
    assert_eq!(fields[3].1.as_f64(), Some(0.013));

    // JSON-lines export: one standalone parseable object per line.
    let lines = o.trace.to_json_lines();
    for line in lines.lines() {
        serde_json::parse_value(line).expect("each trace line is valid JSON");
    }
}

#[test]
fn snapshot_counter_family_rolls_up() {
    let registry = Registry::new();
    registry.counter("replay.granted.us-east-1a").add(3);
    registry.counter("replay.granted.us-west-2b").add(4);
    registry.counter("replay.term.user").add(9);
    let snap = registry.snapshot();
    assert_eq!(snap.counter_family("replay.granted."), 7);
    assert_eq!(snap.counter_family("replay."), 16);
    assert_eq!(snap.counter("replay.granted.us-west-2b"), Some(4));
    assert_eq!(snap.counter("missing"), None);
}

#[test]
fn handles_share_cells_across_clones() {
    let registry = Registry::new();
    let a = registry.counter("shared");
    let b = registry.counter("shared");
    let c = a.clone();
    a.inc();
    b.inc();
    c.inc();
    assert_eq!(registry.counter("shared").get(), 3);

    let cloned_registry = registry.clone();
    cloned_registry.counter("shared").inc();
    assert_eq!(a.get(), 4);
}

#[test]
fn obs_bundle_defaults_disabled_and_wall_enables() {
    let off = Obs::default();
    assert!(!off.is_enabled());
    off.counter("x").inc();
    assert_eq!(off.metrics.snapshot().counters.len(), 0);

    let on = Obs::wall();
    assert!(on.is_enabled());
    on.counter("x").inc();
    assert_eq!(on.metrics.snapshot().counter("x"), Some(1));
}
