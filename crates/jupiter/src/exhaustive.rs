//! Exact branch-and-bound solver of the cost-minimization NLP (Eq. 8–10)
//! for small instances.
//!
//! Solving the NLP exactly is NP-hard; the traverse space is `m^n` over
//! price candidates × zones (§4). At toy scale (≤ 8 zones, per-zone
//! candidate bids restricted to the failure model's price levels) exact
//! search is feasible and provides the yardstick for Jupiter's
//! near-optimality ablation.
//!
//! The availability constraint is evaluated exactly for heterogeneous
//! failure probabilities with the Poisson-binomial threshold DP, instead of
//! assuming equal per-node probabilities as the greedy algorithm does —
//! so the exhaustive optimum can be strictly cheaper than Jupiter's
//! solution.

use quorum::threshold_availability;
use spot_market::Price;

use crate::service::ServiceSpec;
use crate::strategy::{BidDecision, BiddingStrategy, PoolBid, ZoneState};

/// Exact solver (small instances only — cost grows exponentially with the
/// zone count).
#[derive(Clone, Copy, Debug)]
pub struct ExhaustiveSolver {
    /// Refuse instances with more zones than this (guards against
    /// accidental exponential blow-ups).
    pub max_zones: usize,
    /// Per-zone candidate bids are thinned to at most this many levels.
    pub max_levels_per_zone: usize,
}

impl Default for ExhaustiveSolver {
    fn default() -> Self {
        ExhaustiveSolver {
            max_zones: 8,
            max_levels_per_zone: 12,
        }
    }
}

struct ZoneCandidates {
    zone_idx: usize,
    /// (bid, fp) pairs sorted by ascending bid; fp strictly decreasing.
    options: Vec<(Price, f64)>,
}

struct Search<'a> {
    zones: &'a [ZoneCandidates],
    quorum: quorum::QuorumRule,
    target: f64,
    best_cost: Price,
    best: Option<Vec<(usize, Price)>>,
}

impl Search<'_> {
    /// Depth-first over zones; at each zone choose "skip" or one of the
    /// candidate bids. Prunes on cost ≥ incumbent.
    fn go(&mut self, depth: usize, cost: Price, picked: &mut Vec<(usize, Price, f64)>) {
        if cost >= self.best_cost {
            return;
        }
        if depth == self.zones.len() {
            let n = picked.len();
            if n < self.quorum.min_nodes() {
                return;
            }
            let k = self.quorum.quorum_size(n);
            if k > n {
                return;
            }
            let fps: Vec<f64> = picked.iter().map(|(_, _, fp)| *fp).collect();
            if threshold_availability(&fps, k) >= self.target {
                self.best_cost = cost;
                self.best = Some(picked.iter().map(|(z, b, _)| (*z, *b)).collect());
            }
            return;
        }
        let zone = &self.zones[depth];
        // Option: skip this zone entirely.
        self.go(depth + 1, cost, picked);
        // Option: each candidate bid.
        for &(bid, fp) in &zone.options {
            picked.push((zone.zone_idx, bid, fp));
            self.go(depth + 1, cost + bid, picked);
            picked.pop();
        }
    }
}

impl BiddingStrategy for ExhaustiveSolver {
    fn name(&self) -> String {
        "Exhaustive".into()
    }

    fn decide(
        &self,
        zones: &[ZoneState<'_>],
        spec: &ServiceSpec,
        horizon_minutes: u32,
    ) -> BidDecision {
        assert!(
            zones.len() <= self.max_zones,
            "exhaustive search limited to {} zones, got {}",
            self.max_zones,
            zones.len()
        );
        let mut candidates = Vec::new();
        for (zone_idx, z) in zones.iter().enumerate() {
            let Some(f) = z.forecast(horizon_minutes) else {
                continue;
            };
            // Candidate bids: the model's price levels within
            // [spot, on-demand), thinned; dominated bids (same fp, higher
            // price) dropped.
            let mut options: Vec<(Price, f64)> = std::iter::once(z.spot_price)
                .chain(f.levels().iter().copied())
                .filter(|&b| b >= z.spot_price && b < z.on_demand)
                .map(|b| (b, z.model.fp_from_forecast(&f, b, z.spot_price)))
                .collect();
            options.sort_by_key(|(b, _)| *b);
            options.dedup_by_key(|(b, _)| *b);
            // Remove fp-dominated entries (monotone hull).
            let mut hull: Vec<(Price, f64)> = Vec::new();
            for (b, fp) in options {
                if hull.last().map(|(_, lf)| fp < *lf).unwrap_or(true) {
                    hull.push((b, fp));
                }
            }
            // Thin evenly if too many.
            if hull.len() > self.max_levels_per_zone {
                let step = hull.len() as f64 / self.max_levels_per_zone as f64;
                let mut thinned = Vec::with_capacity(self.max_levels_per_zone);
                for i in 0..self.max_levels_per_zone {
                    thinned.push(hull[(i as f64 * step) as usize]);
                }
                if thinned.last() != hull.last() {
                    thinned.push(*hull.last().expect("non-empty"));
                }
                hull = thinned;
            }
            if !hull.is_empty() {
                candidates.push(ZoneCandidates {
                    zone_idx,
                    options: hull,
                });
            }
        }

        let mut search = Search {
            zones: &candidates,
            quorum: spec.quorum,
            target: spec.availability_target(),
            best_cost: Price::from_micros(u64::MAX / 2),
            best: None,
        };
        search.go(0, Price::ZERO, &mut Vec::new());
        match search.best {
            None => BidDecision::empty(),
            Some(picked) => BidDecision {
                bids: picked
                    .into_iter()
                    .map(|(zi, b)| PoolBid {
                        zone: zones[zi].zone,
                        instance_type: zones[zi].instance_type,
                        bid: b,
                    })
                    .collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::JupiterStrategy;
    use spot_market::{PricePoint, PriceTrace};
    use spot_model::{FailureModel, FailureModelConfig};

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    fn model(low: f64, high: f64, stay: u64) -> FailureModel {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..150 {
            points.push(PricePoint {
                minute: t,
                price: p(low),
            });
            t += stay;
            points.push(PricePoint {
                minute: t,
                price: p(high),
            });
            t += 3;
        }
        FailureModel::from_trace(&PriceTrace::new(points, t), FailureModelConfig::default())
    }

    fn states<'a>(models: &'a [FailureModel], spots: &[f64]) -> Vec<ZoneState<'a>> {
        let zones = spot_market::topology::all_zones();
        models
            .iter()
            .zip(spots)
            .enumerate()
            .map(|(i, (m, s))| ZoneState {
                zone: zones[i],
                instance_type: spot_market::InstanceType::M1Small,
                spot_price: p(*s),
                sojourn_age: 5,
                on_demand: p(0.044),
                model: m,
            })
            .collect()
    }

    #[test]
    fn exact_solution_is_feasible() {
        let models: Vec<FailureModel> = (0..6).map(|_| model(0.008, 0.012, 60)).collect();
        let st = states(&models, &[0.008; 6]);
        let spec = ServiceSpec::lock_service();
        let d = ExhaustiveSolver::default().decide(&st, &spec, 240);
        assert!(d.n() > 0, "feasible instance must be solved");
        // Verify the availability constraint of the returned assignment.
        let fps: Vec<f64> = d
            .bids
            .iter()
            .map(|pb| {
                let zs = st.iter().find(|s| s.zone == pb.zone).unwrap();
                zs.model.estimate_fp(pb.bid, zs.spot_price, zs.sojourn_age, 240)
            })
            .collect();
        let k = spec.quorum.quorum_size(d.n());
        assert!(threshold_availability(&fps, k) >= spec.availability_target());
    }

    #[test]
    fn exact_never_costs_more_than_greedy() {
        // The greedy solution is one point of the exact search space
        // (equal-FP targets are a subset of heterogeneous assignments), so
        // the exact optimum is ≤ greedy on the same instance.
        let models: Vec<FailureModel> = vec![
            model(0.006, 0.010, 40),
            model(0.008, 0.012, 60),
            model(0.007, 0.011, 50),
            model(0.009, 0.013, 70),
            model(0.008, 0.012, 55),
            model(0.010, 0.014, 45),
        ];
        let st = states(&models, &[0.006, 0.008, 0.007, 0.009, 0.008, 0.010]);
        let spec = ServiceSpec::lock_service();
        let greedy = JupiterStrategy::new().decide(&st, &spec, 240);
        let exact = ExhaustiveSolver::default().decide(&st, &spec, 240);
        assert!(greedy.n() > 0 && exact.n() > 0);
        assert!(
            exact.cost_upper_bound() <= greedy.cost_upper_bound(),
            "exact {} > greedy {}",
            exact.cost_upper_bound(),
            greedy.cost_upper_bound()
        );
        // …and greedy should be close (the paper's near-optimality claim):
        // within 2× on such benign instances.
        assert!(
            greedy.cost_upper_bound().as_micros() <= exact.cost_upper_bound().as_micros() * 2,
            "greedy is far from optimal: {} vs {}",
            greedy.cost_upper_bound(),
            exact.cost_upper_bound()
        );
    }

    #[test]
    #[should_panic(expected = "limited to")]
    fn refuses_large_instances() {
        let models: Vec<FailureModel> = (0..9).map(|_| model(0.008, 0.012, 60)).collect();
        let st = states(&models, &[0.008; 9]);
        ExhaustiveSolver::default().decide(&st, &ServiceSpec::lock_service(), 60);
    }

    #[test]
    fn infeasible_returns_empty() {
        let models: Vec<FailureModel> = (0..2).map(|_| model(0.008, 0.012, 60)).collect();
        let st = states(&models, &[0.008; 2]);
        // Two zones can never reach the 5-node baseline availability.
        let d = ExhaustiveSolver::default().decide(&st, &ServiceSpec::lock_service(), 60);
        assert_eq!(d, BidDecision::empty());
    }
}
