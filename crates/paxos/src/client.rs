//! A closed-loop client: submits one operation at a time, retransmits on
//! timeout, cycles through servers until it finds the leader, and records
//! a full request history (issue time, completion time, response) so the
//! harness can measure service-level availability and latency.

use std::collections::VecDeque;

use obs::{FieldValue, Obs, SpanHandle};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::{Context, NodeId, SimTime, TimerToken};

use crate::ballot::Slot;
use crate::msg::{ClientOp, Msg};
use crate::replica::StateMachine;

const TICK_TOKEN: TimerToken = TimerToken(1);

/// Sim-time milliseconds as trace microseconds.
fn sim_micros(t: SimTime) -> u64 {
    t.as_millis().saturating_mul(1_000)
}

/// One completed (or still outstanding) operation in the client history.
#[derive(Clone, Debug)]
pub struct CompletedOp<SM: StateMachine> {
    /// Request id.
    pub req_id: u64,
    /// The submitted operation.
    pub op: ClientOp<SM::Command>,
    /// When the client first issued it.
    pub issued_at: SimTime,
    /// Completion time and response (`None` while outstanding; the inner
    /// response is `None` for reconfigurations).
    pub completed: Option<(SimTime, Option<SM::Response>)>,
}

/// In-flight bookkeeping.
#[derive(Clone, Debug)]
struct InFlight {
    req_id: u64,
    last_sent: SimTime,
    target: usize,
    /// Route as a follower-local read. Cleared on the first timeout so
    /// the retransmit falls back to the fully serialized leader path
    /// (liveness does not depend on any one follower).
    read: bool,
    /// Root span of the operation's causal trace; every send (and
    /// retransmit) of the request carries `span.context()`, so the whole
    /// submit → propose → commit chain hangs under one trace id.
    span: SpanHandle,
}

/// Client actor state.
#[derive(Clone, Debug)]
pub struct ClientState<SM: StateMachine> {
    me: NodeId,
    servers: Vec<NodeId>,
    tick: SimTime,
    timeout: SimTime,
    next_req: u64,
    queue: VecDeque<ClientOp<SM::Command>>,
    inflight: Option<InFlight>,
    leader_hint: Option<NodeId>,
    history: Vec<CompletedOp<SM>>,
    /// Route read-only commands to followers as local reads.
    local_reads: bool,
    /// Session floor: the highest applied index any acknowledged
    /// operation of ours reached. Carried in read requests so a
    /// follower never answers from a state older than our last write.
    floor: Slot,
    rng: ChaCha8Rng,
    /// Observability sink (disabled by default; the harness wires the
    /// cluster's handle in so client spans land in the same trace ring
    /// as the replicas').
    obs: Obs,
}

impl<SM: StateMachine> ClientState<SM> {
    /// A client that talks to `servers`.
    pub fn new(me: NodeId, servers: Vec<NodeId>, seed: u64) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        ClientState {
            me,
            servers,
            tick: SimTime::from_millis(100),
            timeout: SimTime::from_millis(1_000),
            next_req: 1,
            queue: VecDeque::new(),
            inflight: None,
            leader_hint: None,
            history: Vec::new(),
            local_reads: false,
            floor: 0,
            rng: ChaCha8Rng::seed_from_u64(seed ^ (me.0 as u64).wrapping_mul(0x51_7C_C1_B7)),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle (builder-style); request spans are
    /// only recorded when its tracer is enabled.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Route read-only commands ([`StateMachine::is_read_only`]) to
    /// followers as local reads (builder-style). Requires the replicas
    /// to run with `local_reads` enabled too; a timed-out read falls
    /// back to the serialized leader path either way.
    pub fn with_local_reads(mut self, enabled: bool) -> Self {
        self.local_reads = enabled;
        self
    }

    /// The session floor (highest acknowledged applied index).
    pub fn floor(&self) -> Slot {
        self.floor
    }

    /// Queue an operation for submission (fired from the next tick).
    pub fn submit(&mut self, op: ClientOp<SM::Command>) -> u64 {
        let req_id = self.next_req;
        self.next_req += 1;
        self.queue.push_back(op);
        req_id
    }

    /// Update the server list (after a view change).
    pub fn set_servers(&mut self, servers: Vec<NodeId>) {
        assert!(!servers.is_empty());
        self.servers = servers;
        self.leader_hint = None;
        if let Some(f) = &mut self.inflight {
            f.target = 0;
        }
    }

    /// The full request history.
    pub fn history(&self) -> &[CompletedOp<SM>] {
        &self.history
    }

    /// Number of operations not yet completed (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + usize::from(self.inflight.is_some())
    }

    fn send_current(&mut self, ctx: &mut Context<Msg<SM>>) {
        let Some(f) = &mut self.inflight else { return };
        let entry = self
            .history
            .iter()
            .find(|h| h.req_id == f.req_id)
            .expect("in-flight op recorded");
        f.last_sent = ctx.now;
        let trace = f.span.context();
        if f.read {
            // Local read: spread across all replicas (not just the
            // leader), carrying the session floor.
            let target = self.servers[f.target % self.servers.len()];
            let ClientOp::App(cmd) = entry.op.clone() else {
                unreachable!("read flag only set for App ops");
            };
            ctx.send_traced(
                target,
                Msg::ReadRequest {
                    client: self.me,
                    req_id: f.req_id,
                    cmd,
                    floor: self.floor,
                },
                trace,
            );
            return;
        }
        let target = match self.leader_hint {
            Some(l) if self.servers.contains(&l) => l,
            _ => self.servers[f.target % self.servers.len()],
        };
        ctx.send_traced(
            target,
            Msg::Request {
                client: self.me,
                req_id: f.req_id,
                op: entry.op.clone(),
            },
            trace,
        );
    }

    /// Boot: arm the tick.
    pub fn on_start(&mut self, ctx: &mut Context<Msg<SM>>) {
        ctx.set_timer(self.tick, TICK_TOKEN);
    }

    /// Tick: launch queued work, retransmit timed-out requests.
    pub fn on_timer(&mut self, _t: TimerToken, ctx: &mut Context<Msg<SM>>) {
        ctx.set_timer(self.tick, TICK_TOKEN);
        if self.inflight.is_none() {
            if let Some(op) = self.queue.pop_front() {
                let req_id = self.next_issue_id();
                let read = self.local_reads
                    && match &op {
                        ClientOp::App(cmd) => SM::is_read_only(cmd),
                        ClientOp::Reconfig { .. } => false,
                    };
                self.history.push(CompletedOp {
                    req_id,
                    op,
                    issued_at: ctx.now,
                    completed: None,
                });
                // Root of the operation's causal trace: the span covers
                // submit → commit → response, so its duration *is* the
                // observed commit latency.
                self.obs.set_time_micros(sim_micros(ctx.now));
                let span = self.obs.trace.span_open_causal(
                    "client.request",
                    ctx.new_trace(),
                    &[
                        ("client", FieldValue::U64(self.me.0 as u64)),
                        ("req_id", FieldValue::U64(req_id)),
                    ],
                );
                self.inflight = Some(InFlight {
                    req_id,
                    last_sent: ctx.now,
                    target: self.rng.gen_range(0..self.servers.len()),
                    read,
                    span,
                });
                self.send_current(ctx);
            }
            return;
        }
        let timed_out = self
            .inflight
            .as_ref()
            .map(|f| ctx.now.saturating_sub(f.last_sent) >= self.timeout)
            .unwrap_or(false);
        if timed_out {
            if let Some(f) = &mut self.inflight {
                f.target += 1;
                // A read that found no willing (or caught-up) follower
                // falls back to the serialized leader path.
                f.read = false;
            }
            self.leader_hint = None;
            if let Some(f) = &self.inflight {
                // Mark the retry inside the trace: a retransmit usually
                // means the previous attempt's sub-tree was orphaned by
                // a drop or a dead leader.
                self.obs.set_time_micros(sim_micros(ctx.now));
                self.obs.trace.event_causal(
                    "client.retransmit",
                    f.span.context(),
                    &[("req_id", FieldValue::U64(f.req_id))],
                );
            }
            self.send_current(ctx);
        }
    }

    fn next_issue_id(&mut self) -> u64 {
        // History ids must match submission order: reuse the counter
        // sequence 1, 2, … in FIFO order.
        let issued = self.history.len() as u64;
        issued + 1
    }

    /// Message dispatch (responses only).
    pub fn on_message(&mut self, from: NodeId, msg: Msg<SM>, _ctx: &mut Context<Msg<SM>>) {
        let (req_id, resp, at, from_leader) = match msg {
            Msg::Response { req_id, resp, at } => (req_id, resp, at, true),
            Msg::ReadResponse { req_id, resp, at } => (req_id, Some(resp), at, false),
            _ => return,
        };
        let matches = self
            .inflight
            .as_ref()
            .map(|f| f.req_id == req_id)
            .unwrap_or(false);
        if matches {
            let f = self.inflight.take().expect("matched above");
            if from_leader {
                // Only log-serialized responses identify the leader; a
                // ReadResponse may come from any follower.
                self.leader_hint = Some(from);
            }
            self.floor = self.floor.max(at);
            let now = _ctx.now;
            self.obs.set_time_micros(sim_micros(now));
            self.obs.trace.span_close(
                f.span,
                "client.request",
                &[
                    ("req_id", FieldValue::U64(req_id)),
                    ("leader", FieldValue::U64(from.0 as u64)),
                ],
            );
            if let Some(h) = self.history.iter_mut().find(|h| h.req_id == req_id) {
                h.completed = Some((now, resp));
            }
        }
    }
}
