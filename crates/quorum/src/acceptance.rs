//! Acceptance sets (Definition 1): intersecting, monotone collections of
//! node subsets.
//!
//! Node subsets over a universe of `n ≤ 30` nodes are bitmasks (`u32`),
//! which keeps the exact availability computation (Eq. 1) a tight loop over
//! `2^n` masks and makes the Definition 1 properties directly checkable.

/// A node subset as a bitmask: bit `i` set ⇔ node `i` in the subset.
pub type Mask = u32;

/// An explicit acceptance set over `n` nodes: the collection of *accepted*
/// (live-enough) subsets, closed under supersets and pairwise intersecting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AcceptanceSet {
    n: usize,
    /// `accepted[mask]` ⇔ the subset `mask` is in the collection.
    accepted: Vec<bool>,
}

impl AcceptanceSet {
    /// Maximum universe size (enumeration is exponential in `n`).
    pub const MAX_NODES: usize = 30;

    /// Build from a predicate over live-node masks. The predicate must
    /// already be monotone; this is validated in debug builds and by
    /// [`AcceptanceSet::is_monotone`].
    pub fn from_predicate(n: usize, pred: impl Fn(Mask) -> bool) -> Self {
        assert!(n <= Self::MAX_NODES, "universe too large: {n}");
        let accepted = (0..1u64 << n).map(|m| pred(m as Mask)).collect();
        AcceptanceSet { n, accepted }
    }

    /// Build the up-closure of a set of generator subsets (e.g. minimal
    /// quorums): accepted ⇔ some generator is contained in the mask.
    pub fn from_quorums(n: usize, quorums: &[Mask]) -> Self {
        // Not a `contains`: `q & m == q` tests q ⊆ m for each generator q.
        #[allow(clippy::manual_contains)]
        Self::from_predicate(n, |m| quorums.iter().any(|&q| q & m == q))
    }

    /// Universe size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether `mask` is accepted.
    pub fn contains(&self, mask: Mask) -> bool {
        self.accepted[mask as usize]
    }

    /// Definition 1 (2): `S ∈ A ∧ T ⊇ S ⇒ T ∈ A`.
    pub fn is_monotone(&self) -> bool {
        // Check single-bit additions only: monotone under one-bit closure
        // implies monotone under superset.
        for mask in 0..(1u64 << self.n) as Mask {
            if !self.accepted[mask as usize] {
                continue;
            }
            for i in 0..self.n {
                let sup = mask | (1 << i);
                if !self.accepted[sup as usize] {
                    return false;
                }
            }
        }
        true
    }

    /// Definition 1 (1): every two accepted sets intersect. Equivalent to:
    /// no accepted set's complement is accepted (an accepted set disjoint
    /// from an accepted set would be contained in its complement, which by
    /// monotonicity would be accepted too).
    pub fn is_intersecting(&self) -> bool {
        let full: Mask = ((1u64 << self.n) - 1) as Mask;
        (0..=full).all(|m| !(self.accepted[m as usize] && self.accepted[(full ^ m) as usize]))
    }

    /// Whether this is a valid acceptance set (both Definition 1 clauses,
    /// and non-trivial: the full universe is accepted).
    pub fn is_valid(&self) -> bool {
        let full = ((1u64 << self.n) - 1) as usize;
        self.accepted[full] && self.is_monotone() && self.is_intersecting()
    }

    /// The minimal quorums `S(A)`: accepted sets none of whose one-element
    /// removals stays accepted.
    pub fn minimal_quorums(&self) -> Vec<Mask> {
        let mut out = Vec::new();
        for mask in 0..(1u64 << self.n) as Mask {
            if !self.accepted[mask as usize] {
                continue;
            }
            let minimal = (0..self.n)
                .filter(|&i| mask & (1 << i) != 0)
                .all(|i| !self.accepted[(mask & !(1 << i)) as usize]);
            if minimal {
                out.push(mask);
            }
        }
        out
    }

    /// Availability under independent per-node failure probabilities
    /// (Eq. 1): `Σ_{S ∈ A} Π_{i∈S}(1-p_i) Π_{j∉S} p_j`.
    pub fn availability(&self, fps: &[f64]) -> f64 {
        assert_eq!(fps.len(), self.n, "fps length mismatch");
        crate::availability::acceptance_availability(self.n, fps, |m| self.contains(m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn majority3() -> AcceptanceSet {
        AcceptanceSet::from_predicate(3, |m| m.count_ones() >= 2)
    }

    #[test]
    fn majority_is_valid_acceptance_set() {
        let a = majority3();
        assert!(a.is_valid());
        assert_eq!(a.minimal_quorums().len(), 3); // the three pairs
    }

    #[test]
    fn singleton_system_is_valid_monarchy() {
        // A monarchy: every accepted set contains node 0.
        let a = AcceptanceSet::from_predicate(4, |m| m & 1 != 0);
        assert!(a.is_valid());
        assert_eq!(a.minimal_quorums(), vec![1]);
    }

    #[test]
    fn non_intersecting_collection_detected() {
        // "Any single node" is monotone but not intersecting.
        let a = AcceptanceSet::from_predicate(3, |m| m.count_ones() >= 1);
        assert!(a.is_monotone());
        assert!(!a.is_intersecting());
        assert!(!a.is_valid());
    }

    #[test]
    fn non_monotone_collection_detected() {
        // "Exactly two nodes" is intersecting over 3 nodes but not monotone.
        let a = AcceptanceSet::from_predicate(3, |m| m.count_ones() == 2);
        assert!(!a.is_monotone());
        assert!(!a.is_valid());
    }

    #[test]
    fn from_quorums_builds_up_closure() {
        let a = AcceptanceSet::from_quorums(3, &[0b011, 0b101, 0b110]);
        assert_eq!(a, majority3());
    }

    #[test]
    fn paper_example_availability() {
        // §3: 5 nodes, p = 0.01 each, majority quorum ⇒ 0.9999901494.
        let a = AcceptanceSet::from_predicate(5, |m| m.count_ones() >= 3);
        let av = a.availability(&[0.01; 5]);
        assert!((av - 0.9999901494).abs() < 1e-10, "got {av}");
    }

    #[test]
    fn availability_of_monarchy_is_king_availability() {
        let a = AcceptanceSet::from_predicate(4, |m| m & 1 != 0);
        let av = a.availability(&[0.2, 0.5, 0.5, 0.5]);
        assert!((av - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rs_paxos_quorum_tolerates_one_failure_of_five() {
        // θ(3,5) ⇒ quorum 4; availability = P(≥4 alive).
        let a = AcceptanceSet::from_predicate(5, |m| m.count_ones() >= 4);
        assert!(a.is_valid());
        let p = 0.01;
        let av = a.availability(&[p; 5]);
        let q = 1.0 - p;
        let expect = q.powi(5) + 5.0 * q.powi(4) * p;
        assert!((av - expect).abs() < 1e-12);
    }
}
