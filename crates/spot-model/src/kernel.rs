//! The discrete semi-Markov chain over spot prices and its empirical
//! estimator (Eq. 6/7/12/13), split into an append-only [`KernelBuilder`]
//! and an immutable, query-optimized [`FrozenKernel`].
//!
//! The builder interns price states in O(1) per observation (no re-index
//! of existing statistics when a new price appears mid-ladder); freezing
//! sorts the ladder once and lays every state's transition counts out in
//! a sorted CSR-style table, so the hot queries (`q`, `hazard`,
//! `exact_next_state_dist`) are binary searches over dense vectors
//! instead of per-key `HashMap` walks. A frozen kernel is cheap to share
//! (`Arc<StateTable>` per state) and cheap to fork: [`FrozenKernel::extend`]
//! folds a new trace window in copy-on-write fashion, deep-cloning only
//! the states the window actually touched.

use std::collections::HashMap;
use std::sync::Arc;

use spot_market::{Price, PriceTrace};

/// Sojourn times are tracked exactly up to this many minutes; longer stays
/// are clamped into the final bucket (the paper's state space `T` is finite;
/// six hours comfortably covers the longest bidding interval evaluated).
pub const MAX_SOJOURN_MINUTES: usize = 360;

/// Per-price-state transition statistics in builder (insertion) order.
#[derive(Clone, Debug, Default)]
struct BuilderStats {
    /// `N_i`: number of completed sojourns observed at this price.
    n_out: u64,
    /// `Σ_j N_{i,j}^k` indexed by `k−1` (sojourn of exactly `k` minutes).
    sojourn_counts: Vec<u64>,
    /// `N_{i,j}^k` keyed by `(k−1, j)`; `j` is a builder index.
    trans: HashMap<(u32, u16), u64>,
    /// `N_{i,j}` marginal over sojourns, indexed by builder `j`.
    next_marginal: Vec<u64>,
    /// Total minutes spent at this price (including the censored final
    /// segment), for occupancy statistics.
    occupancy_minutes: u64,
}

/// Append-only accumulator for the kernel statistics of Eq. 13.
///
/// States are interned in *insertion* order via a hash index, so folding a
/// trace in is O(segments) regardless of how many new price levels it
/// introduces; the sorted state space is materialized once, by
/// [`KernelBuilder::freeze`].
#[derive(Clone, Debug, Default)]
pub struct KernelBuilder {
    /// Prices in insertion order (the builder's working index space).
    prices: Vec<Price>,
    index: HashMap<Price, u16>,
    stats: Vec<BuilderStats>,
    total_transitions: u64,
}

impl KernelBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The state index for `price`, inserting a new state if unseen.
    /// O(1): existing statistics are never re-indexed.
    fn intern(&mut self, price: Price) -> u16 {
        if let Some(&i) = self.index.get(&price) {
            return i;
        }
        let i = self.prices.len() as u16;
        self.prices.push(price);
        self.stats.push(BuilderStats::default());
        self.index.insert(price, i);
        i
    }

    /// Fold the transitions of `trace` into the builder (Eq. 13 counts).
    ///
    /// Every *completed* sojourn contributes one `(i → j, k)` observation;
    /// the final segment of the trace is right-censored (its true sojourn
    /// is unknown) and only contributes occupancy time.
    pub fn observe_trace(&mut self, trace: &PriceTrace) {
        let segments: Vec<_> = trace.segments().collect();
        for (idx, seg) in segments.iter().enumerate() {
            let i = self.intern(seg.price);
            self.stats[i as usize].occupancy_minutes += seg.duration;
            let Some(next) = segments.get(idx + 1) else {
                continue; // censored final segment
            };
            let j = self.intern(next.price);
            let k = (seg.duration as usize).clamp(1, MAX_SOJOURN_MINUTES) as u32;
            let n_states = self.prices.len();
            let st = &mut self.stats[i as usize];
            if st.sojourn_counts.len() < k as usize {
                st.sojourn_counts.resize(k as usize, 0);
            }
            st.sojourn_counts[(k - 1) as usize] += 1;
            *st.trans.entry((k - 1, j)).or_insert(0) += 1;
            if st.next_marginal.len() < n_states {
                st.next_marginal.resize(n_states, 0);
            }
            st.next_marginal[j as usize] += 1;
            st.n_out += 1;
            self.total_transitions += 1;
        }
    }

    /// Number of distinct price states seen so far.
    pub fn n_states(&self) -> usize {
        self.prices.len()
    }

    /// Total completed transitions observed so far.
    pub fn total_transitions(&self) -> u64 {
        self.total_transitions
    }

    /// Materialize the immutable, query-optimized kernel: sort the price
    /// ladder, remap every `j` reference, and lay transition counts out in
    /// sorted `(k−1, j)` order for binary-search lookup.
    pub fn freeze(&self) -> FrozenKernel {
        let n = self.prices.len();
        // order[s] = builder index of the s-th smallest price;
        // perm[builder index] = sorted index.
        let mut order: Vec<u16> = (0..n as u16).collect();
        order.sort_by_key(|&b| self.prices[b as usize]);
        let mut perm = vec![0u16; n];
        for (sorted, &builder) in order.iter().enumerate() {
            perm[builder as usize] = sorted as u16;
        }
        let prices: Vec<Price> = order.iter().map(|&b| self.prices[b as usize]).collect();
        let states: Vec<Arc<StateTable>> = order
            .iter()
            .map(|&b| {
                let st = &self.stats[b as usize];
                let mut trans: Vec<(u32, u16, u64)> = st
                    .trans
                    .iter()
                    .map(|(&(k, j), &c)| (k, perm[j as usize], c))
                    .collect();
                trans.sort_unstable_by_key(|&(k, j, _)| (k, j));
                let mut next_marginal = vec![0u64; n];
                for (j, &c) in st.next_marginal.iter().enumerate() {
                    next_marginal[perm[j] as usize] = c;
                }
                Arc::new(StateTable {
                    n_out: st.n_out,
                    occupancy_minutes: st.occupancy_minutes,
                    sojourn_counts: st.sojourn_counts.clone(),
                    trans,
                    next_marginal,
                })
            })
            .collect();
        FrozenKernel {
            prices,
            states,
            total_transitions: self.total_transitions,
        }
    }
}

/// One frozen state's statistics, shared via `Arc` across kernel forks.
#[derive(Clone, Debug, Default)]
struct StateTable {
    /// `N_i`: number of completed sojourns observed at this price.
    n_out: u64,
    /// Total minutes spent at this price (censored final segment included).
    occupancy_minutes: u64,
    /// `Σ_j N_{i,j}^k` indexed by `k−1`.
    sojourn_counts: Vec<u64>,
    /// `N_{i,j}^k` as `(k−1, j, count)` sorted by `(k−1, j)` — the
    /// CSR-style replacement for the builder's hash map; `j` is a sorted
    /// state index.
    trans: Vec<(u32, u16, u64)>,
    /// `N_{i,j}` marginal over sojourns, dense over all sorted states.
    next_marginal: Vec<u64>,
}

impl StateTable {
    /// Sum of `N_{i,j}^k` over `j` at exactly sojourn `k−1 = k0`.
    fn count_at(&self, k0: u32, j: u16) -> u64 {
        self.trans
            .binary_search_by_key(&(k0, j), |&(k, j, _)| (k, j))
            .map(|idx| self.trans[idx].2)
            .unwrap_or(0)
    }

    /// The contiguous run of transition entries with `k−1 = k0`.
    fn run_at(&self, k0: u32) -> &[(u32, u16, u64)] {
        let lo = self.trans.partition_point(|&(k, _, _)| k < k0);
        let hi = self.trans.partition_point(|&(k, _, _)| k <= k0);
        &self.trans[lo..hi]
    }

    /// Fold a builder state's counts in, with `map[j_builder]` giving the
    /// merged sorted index. `n` is the merged state-space size.
    fn absorb(&mut self, d: &BuilderStats, map: &[u16], n: usize) {
        self.n_out += d.n_out;
        self.occupancy_minutes += d.occupancy_minutes;
        if self.sojourn_counts.len() < d.sojourn_counts.len() {
            self.sojourn_counts.resize(d.sojourn_counts.len(), 0);
        }
        for (k, &c) in d.sojourn_counts.iter().enumerate() {
            self.sojourn_counts[k] += c;
        }
        if self.next_marginal.len() < n {
            self.next_marginal.resize(n, 0);
        }
        for (j, &c) in d.next_marginal.iter().enumerate() {
            if c > 0 {
                self.next_marginal[map[j] as usize] += c;
            }
        }
        if !d.trans.is_empty() {
            let mut merged: std::collections::BTreeMap<(u32, u16), u64> = self
                .trans
                .iter()
                .map(|&(k, j, c)| ((k, j), c))
                .collect();
            for (&(k, j), &c) in &d.trans {
                *merged.entry((k, map[j as usize])).or_insert(0) += c;
            }
            self.trans = merged.into_iter().map(|((k, j), c)| (k, j, c)).collect();
        }
    }
}

/// The estimated stochastic kernel `Q(i, j, k)` of the price process for
/// one (zone, instance-type) market — immutable, sorted, and cheap to
/// share or fork. Build one with [`FrozenKernel::from_trace`] /
/// [`KernelBuilder::freeze`]; grow one with [`FrozenKernel::extend`].
#[derive(Clone, Debug, Default)]
pub struct FrozenKernel {
    /// Sorted unique prices; the state space `S`.
    prices: Vec<Price>,
    states: Vec<Arc<StateTable>>,
    /// Total completed transitions across all states.
    total_transitions: u64,
}

impl FrozenKernel {
    /// An empty kernel (no states, no data).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a kernel from a single trace.
    pub fn from_trace(trace: &PriceTrace) -> Self {
        let mut b = KernelBuilder::new();
        b.observe_trace(trace);
        b.freeze()
    }

    /// Copy-on-write fork: a new kernel equal to `self` with `trace`'s
    /// transitions folded in. States the trace does not touch keep sharing
    /// their `Arc<StateTable>` with `self`; only touched states (and, when
    /// the trace introduces a new price level mid-ladder, the `j` index
    /// maps of every state) are re-materialized.
    ///
    /// Censoring semantics match feeding the same window into a builder:
    /// the window's final segment is right-censored, so transitions across
    /// window boundaries are not recorded.
    pub fn extend(&self, trace: &PriceTrace) -> FrozenKernel {
        let mut delta = KernelBuilder::new();
        delta.observe_trace(trace);
        self.merge(&delta)
    }

    /// Fold a builder's counts into a fork of `self`.
    fn merge(&self, delta: &KernelBuilder) -> FrozenKernel {
        if delta.prices.is_empty() {
            return self.clone();
        }
        // Merged sorted ladder.
        let mut prices = self.prices.clone();
        for &p in &delta.prices {
            if let Err(pos) = prices.binary_search(&p) {
                prices.insert(pos, p);
            }
        }
        let n = prices.len();
        let grew = n != self.prices.len();
        // Sorted index in the merged ladder for each of the old sorted
        // states, and for each delta builder state.
        let old_map: Vec<u16> = self
            .prices
            .iter()
            .map(|p| prices.binary_search(p).expect("old price kept") as u16)
            .collect();
        let delta_map: Vec<u16> = delta
            .prices
            .iter()
            .map(|p| prices.binary_search(p).expect("delta price inserted") as u16)
            .collect();

        // One shared empty table seeds every slot; slots the old kernel or
        // the delta touch are overwritten below, the rest stay genuinely
        // empty (the tables are immutable, so sharing is intentional).
        let empty = Arc::new(StateTable::default());
        let mut states: Vec<Arc<StateTable>> = (0..n).map(|_| Arc::clone(&empty)).collect();
        for (old_i, st) in self.states.iter().enumerate() {
            let slot = old_map[old_i] as usize;
            if grew {
                // The ladder shifted: every `j` reference must be remapped,
                // so the table is re-materialized.
                let mut next_marginal = vec![0u64; n];
                for (j, &c) in st.next_marginal.iter().enumerate() {
                    next_marginal[old_map[j] as usize] = c;
                }
                let trans = st
                    .trans
                    .iter()
                    .map(|&(k, j, c)| (k, old_map[j as usize], c))
                    .collect();
                states[slot] = Arc::new(StateTable {
                    n_out: st.n_out,
                    occupancy_minutes: st.occupancy_minutes,
                    sojourn_counts: st.sojourn_counts.clone(),
                    trans,
                    next_marginal,
                });
            } else {
                states[slot] = Arc::clone(st);
            }
        }
        for (bi, d) in delta.stats.iter().enumerate() {
            let slot = delta_map[bi] as usize;
            Arc::make_mut(&mut states[slot]).absorb(d, &delta_map, n);
        }
        FrozenKernel {
            prices,
            states,
            total_transitions: self.total_transitions + delta.total_transitions,
        }
    }

    /// The state space `S` (sorted unique prices).
    pub fn prices(&self) -> &[Price] {
        &self.prices
    }

    /// Number of price states.
    pub fn n_states(&self) -> usize {
        self.prices.len()
    }

    /// Total completed transitions observed (training-data volume).
    pub fn total_transitions(&self) -> u64 {
        self.total_transitions
    }

    /// A stable identifier for this kernel's training state — an FNV-1a
    /// hash of the price ladder and transition volume. Two kernels fit
    /// from the same data share a fingerprint; extending a kernel
    /// changes it. Audit records carry this as `kernel_id` so a bid can
    /// be traced back to the exact model view that produced it.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for &p in &self.prices {
            mix(p.0);
        }
        mix(self.prices.len() as u64);
        mix(self.total_transitions);
        h
    }

    /// The ladder position of an exact price level, if `price` is one.
    pub fn level_index(&self, price: Price) -> Option<usize> {
        self.prices.binary_search(&price).ok()
    }

    /// The state index whose price is nearest to `price` (`None` on an
    /// empty kernel). Used to map a live market price onto the trained
    /// state space.
    pub fn nearest_state(&self, price: Price) -> Option<u16> {
        if self.prices.is_empty() {
            return None;
        }
        let i = self.prices.partition_point(|&p| p < price);
        let candidates = [i.checked_sub(1), (i < self.prices.len()).then_some(i)];
        candidates
            .into_iter()
            .flatten()
            .min_by_key(|&c| {
                let d = self.prices[c].as_micros().abs_diff(price.as_micros());
                (d, c)
            })
            .map(|c| c as u16)
    }

    /// `q̂_{i,j,k} = N_{i,j}^k / N_i` (Eq. 13); zero when `N_i = 0`.
    pub fn q(&self, i: u16, j: u16, k_minutes: u32) -> f64 {
        let st = &self.states[i as usize];
        if st.n_out == 0 || k_minutes == 0 {
            return 0.0;
        }
        let k = (k_minutes as usize).min(MAX_SOJOURN_MINUTES) as u32;
        st.count_at(k - 1, j) as f64 / st.n_out as f64
    }

    /// Pseudo-count weight pulling sparse empirical hazards toward the
    /// state's geometric hazard. Pure MLE (the paper's Eq. 13) is
    /// overconfident in the tail: a single observed 300-minute sojourn
    /// would make the chain *certain* the price holds for 300 minutes,
    /// collapsing the forecast risk to zero exactly where it matters.
    const HAZARD_SMOOTHING: f64 = 3.0;

    /// The discrete hazard at age `a` minutes: `P(τ = a | τ ≥ a)` for
    /// state `i`, smoothed toward the geometric hazard `1/mean sojourn`
    /// with `HAZARD_SMOOTHING` pseudo-observations so sparse tails
    /// degrade gracefully instead of reading as certainties.
    pub fn hazard(&self, i: u16, age: u32) -> f64 {
        let st = &self.states[i as usize];
        if st.n_out == 0 {
            return self.global_fallback_hazard();
        }
        let age = age.max(1) as usize;
        let at: u64 = st.sojourn_counts.get(age - 1).copied().unwrap_or(0);
        let at_or_later: u64 = st.sojourn_counts.iter().skip(age - 1).sum();
        let p_geo = (1.0 / self.mean_sojourn(i).max(1.0)).clamp(0.0, 1.0);
        let alpha = Self::HAZARD_SMOOTHING;
        ((at as f64 + alpha * p_geo) / (at_or_later as f64 + alpha)).clamp(0.0, 1.0)
    }

    /// All hazards `P(τ = a | τ ≥ a)` for ages `1..=max_age` of state `i`
    /// in one pass (suffix sums computed once; the per-age [`Self::hazard`]
    /// recomputes them and is O(max sojourn) per call — this batch form is
    /// what forecast-table construction uses).
    pub fn hazards_up_to(&self, i: u16, max_age: usize) -> Vec<f64> {
        let st = &self.states[i as usize];
        if st.n_out == 0 {
            return vec![self.global_fallback_hazard(); max_age];
        }
        let p_geo = (1.0 / self.mean_sojourn(i).max(1.0)).clamp(0.0, 1.0);
        let alpha = Self::HAZARD_SMOOTHING;
        // suffix[a-1] = Σ_{k ≥ a} N(τ = k).
        let len = st.sojourn_counts.len();
        let mut suffix = vec![0u64; len + 1];
        for k in (0..len).rev() {
            suffix[k] = suffix[k + 1] + st.sojourn_counts[k];
        }
        (1..=max_age)
            .map(|age| {
                let at = st.sojourn_counts.get(age - 1).copied().unwrap_or(0);
                let at_or_later = suffix.get(age - 1).copied().unwrap_or(0);
                ((at as f64 + alpha * p_geo) / (at_or_later as f64 + alpha)).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Mean completed sojourn of state `i` in minutes (fallbacks to the
    /// global mean when unobserved).
    pub fn mean_sojourn(&self, i: u16) -> f64 {
        let st = &self.states[i as usize];
        if st.n_out == 0 {
            return 1.0 / self.global_fallback_hazard();
        }
        let total: u64 = st
            .sojourn_counts
            .iter()
            .enumerate()
            .map(|(k, &c)| (k as u64 + 1) * c)
            .sum();
        total as f64 / st.n_out as f64
    }

    fn global_fallback_hazard(&self) -> f64 {
        let (total_minutes, total_out) = self.states.iter().fold((0u64, 0u64), |(m, o), s| {
            let mins: u64 = s
                .sojourn_counts
                .iter()
                .enumerate()
                .map(|(k, &c)| (k as u64 + 1) * c)
                .sum();
            (m + mins, o + s.n_out)
        });
        if total_out == 0 {
            0.1 // no data at all: assume ~10-minute sojourns
        } else {
            (total_out as f64 / total_minutes as f64).clamp(1e-6, 1.0)
        }
    }

    /// Next-state distribution conditioned on leaving `i` after exactly
    /// `age` minutes: `P(j | i, τ = age)` — `Some` only when that exact
    /// sojourn has ≥ 3 observations (one data point says little about
    /// where the price goes after a particular dwell time).
    pub fn exact_next_state_dist(&self, i: u16, age: u32) -> Option<Vec<f64>> {
        let n = self.n_states();
        assert!(n > 0, "empty kernel");
        let st = &self.states[i as usize];
        let age = (age.max(1) as usize).min(MAX_SOJOURN_MINUTES) as u32;
        // The sorted layout keeps all of this exact sojourn's entries in
        // one contiguous run: most (state, age) cells have no support and
        // cost one binary search, no allocation.
        let run = st.run_at(age - 1);
        let total: u64 = run.iter().map(|&(_, _, c)| c).sum();
        (total >= 3).then(|| {
            let mut out = vec![0.0; n];
            for &(_, j, c) in run {
                out[j as usize] = c as f64 / total as f64;
            }
            out
        })
    }

    /// Marginal next-state distribution `P(j | i)`, falling back to
    /// "uniform over adjacent states" when `i` was never seen completing a
    /// sojourn. Always sums to 1 for a non-empty state space.
    pub fn marginal_next_state_dist(&self, i: u16) -> Vec<f64> {
        let n = self.n_states();
        assert!(n > 0, "empty kernel");
        let st = &self.states[i as usize];
        let total: u64 = st.next_marginal.iter().sum();
        if total > 0 {
            let mut out = vec![0.0; n];
            for (j, &c) in st.next_marginal.iter().enumerate() {
                out[j] = c as f64 / total as f64;
            }
            return out;
        }
        // No data: uniform over neighbours (or self if singleton).
        let mut out = vec![0.0; n];
        let i = i as usize;
        let mut neighbours = Vec::new();
        if i > 0 {
            neighbours.push(i - 1);
        }
        if i + 1 < n {
            neighbours.push(i + 1);
        }
        if neighbours.is_empty() {
            out[i] = 1.0;
        } else {
            for &j in &neighbours {
                out[j] = 1.0 / neighbours.len() as f64;
            }
        }
        out
    }

    /// Next-state distribution at `(i, age)`: the exact-sojourn
    /// conditional when well supported, otherwise the marginal.
    pub fn next_state_dist(&self, i: u16, age: u32) -> Vec<f64> {
        self.exact_next_state_dist(i, age)
            .unwrap_or_else(|| self.marginal_next_state_dist(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::PricePoint;

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    /// A trace alternating A(5 min) → B(3 min) → A(5) → B(3) …
    fn alternating(cycles: usize) -> PriceTrace {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..cycles {
            points.push(PricePoint {
                minute: t,
                price: p(0.01),
            });
            t += 5;
            points.push(PricePoint {
                minute: t,
                price: p(0.02),
            });
            t += 3;
        }
        PriceTrace::new(points, t)
    }

    #[test]
    fn estimates_simple_kernel() {
        let k = FrozenKernel::from_trace(&alternating(10));
        assert_eq!(k.n_states(), 2);
        let a = k.nearest_state(p(0.01)).unwrap();
        let b = k.nearest_state(p(0.02)).unwrap();
        // Every A sojourn lasts exactly 5 minutes and goes to B.
        assert!((k.q(a, b, 5) - 1.0).abs() < 1e-12);
        assert_eq!(k.q(a, b, 4), 0.0);
        assert_eq!(k.q(a, a, 5), 0.0);
        // B sojourns: 9 completed (the last is censored), all 3 min → A.
        assert!((k.q(b, a, 3) - 1.0).abs() < 1e-12);
        assert_eq!(k.total_transitions(), 19);
    }

    #[test]
    fn new_mid_ladder_state_does_not_misattribute_sojourns() {
        // Regression: the retired mutable kernel interned the successor
        // price *after* caching the current state's index; a brand-new
        // price level sorting at or below it shifted the ladder and the
        // sojourn landed in a neighbor's table (visible as impossible
        // self-transitions `q(i, i, k) > 0`). The append-only builder
        // never shifts indices mid-observation.
        let points = vec![
            PricePoint {
                minute: 0,
                price: p(0.010),
            },
            PricePoint {
                minute: 10,
                price: p(0.005), // new level below the current state
            },
            PricePoint {
                minute: 25,
                price: p(0.010),
            },
            PricePoint {
                minute: 40,
                price: p(0.002), // another new low, again as a successor
            },
        ];
        let k = FrozenKernel::from_trace(&PriceTrace::new(points, 60));
        let n = k.n_states() as u16;
        for i in 0..n {
            for kk in 1..=30 {
                assert_eq!(k.q(i, i, kk), 0.0, "self-transition at state {i}");
            }
        }
        let hi = k.nearest_state(p(0.010)).unwrap();
        let mid = k.nearest_state(p(0.005)).unwrap();
        let lo = k.nearest_state(p(0.002)).unwrap();
        // p=0.010 completes two sojourns (10 min → 0.005, 15 min → 0.002).
        assert!((k.mean_sojourn(hi) - 12.5).abs() < 1e-12);
        assert!((k.q(hi, mid, 10) - 0.5).abs() < 1e-12);
        assert!((k.q(hi, lo, 15) - 0.5).abs() < 1e-12);
        // p=0.005 completes one 15-minute sojourn back to 0.010.
        assert!((k.q(mid, hi, 15) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_rows_sum_to_at_most_one() {
        let k = FrozenKernel::from_trace(&alternating(7));
        for i in 0..k.n_states() as u16 {
            let mut row = 0.0;
            for j in 0..k.n_states() as u16 {
                for kk in 1..=10u32 {
                    row += k.q(i, j, kk);
                }
            }
            assert!(row <= 1.0 + 1e-9, "row {i} sums to {row}");
        }
    }

    #[test]
    fn deterministic_sojourn_hazard() {
        let k = FrozenKernel::from_trace(&alternating(10));
        let a = k.nearest_state(p(0.01)).unwrap();
        // All 10 completed sojourns at A last 5 minutes. With smoothing
        // (α = 3 pseudo-observations at the geometric hazard 1/5), the
        // hazard is small-but-positive before minute 5 and large at 5.
        let early = k.hazard(a, 1);
        let at_end = k.hazard(a, 5);
        assert!(early > 0.0 && early < 0.1, "early hazard {early}");
        assert!(at_end > 0.7, "end-of-sojourn hazard {at_end}");
        assert!(at_end > 5.0 * early);
        assert!((k.mean_sojourn(a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn batched_hazards_equal_per_age_hazards() {
        let k = FrozenKernel::from_trace(&alternating(10));
        for i in 0..k.n_states() as u16 {
            let batch = k.hazards_up_to(i, 20);
            for age in 1..=20u32 {
                let single = k.hazard(i, age);
                assert!(
                    (batch[(age - 1) as usize] - single).abs() < 1e-15,
                    "state {i} age {age}"
                );
            }
        }
    }

    #[test]
    fn hazard_beyond_support_falls_back_to_geometric() {
        let k = FrozenKernel::from_trace(&alternating(10));
        let a = k.nearest_state(p(0.01)).unwrap();
        let h = k.hazard(a, 50);
        assert!((h - 1.0 / 5.0).abs() < 1e-12, "got {h}");
    }

    #[test]
    fn next_state_dist_sums_to_one_and_backs_off() {
        let k = FrozenKernel::from_trace(&alternating(10));
        let a = k.nearest_state(p(0.01)).unwrap();
        // Exact support at τ=5.
        let d = k.next_state_dist(a, 5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d[1] - 1.0).abs() < 1e-12);
        // Unseen sojourn (τ=2) backs off to the marginal, still → B.
        let d = k.next_state_dist(a, 2);
        assert!((d[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_state_mapping() {
        let k = FrozenKernel::from_trace(&alternating(3));
        assert_eq!(k.prices(), &[p(0.01), p(0.02)]);
        assert_eq!(k.nearest_state(p(0.005)).unwrap(), 0);
        assert_eq!(k.nearest_state(p(0.014)).unwrap(), 0);
        assert_eq!(k.nearest_state(p(0.016)).unwrap(), 1);
        assert_eq!(k.nearest_state(p(0.5)).unwrap(), 1);
        assert_eq!(FrozenKernel::new().nearest_state(p(0.01)), None);
    }

    #[test]
    fn incremental_observation_equals_batch() {
        let t = alternating(10);
        let batch = FrozenKernel::from_trace(&t);
        let mut inc = KernelBuilder::new();
        // Observing windows [0,40) and [40,80) misses only the boundary
        // transition statistics; totals must line up within that.
        inc.observe_trace(&t.window(0, 40));
        inc.observe_trace(&t.window(40, 80));
        let inc = inc.freeze();
        assert_eq!(inc.n_states(), batch.n_states());
        // One cross-boundary transition is lost to censoring.
        assert_eq!(inc.total_transitions() + 1, batch.total_transitions());
    }

    #[test]
    fn extend_equals_builder_incremental() {
        // Forking with extend() must count exactly like feeding the same
        // windows into one builder.
        let t = alternating(10);
        let base = FrozenKernel::from_trace(&t.window(0, 40));
        let forked = base.extend(&t.window(40, 80));
        let mut b = KernelBuilder::new();
        b.observe_trace(&t.window(0, 40));
        b.observe_trace(&t.window(40, 80));
        let rebuilt = b.freeze();
        assert_eq!(forked.prices(), rebuilt.prices());
        assert_eq!(forked.total_transitions(), rebuilt.total_transitions());
        for i in 0..forked.n_states() as u16 {
            assert_eq!(forked.mean_sojourn(i), rebuilt.mean_sojourn(i));
            for j in 0..forked.n_states() as u16 {
                for k in 1..=10u32 {
                    assert_eq!(forked.q(i, j, k), rebuilt.q(i, j, k), "q({i},{j},{k})");
                }
            }
        }
        // The base is untouched by the fork.
        assert_eq!(base.n_states(), 2);
        assert_eq!(base.total_transitions(), FrozenKernel::from_trace(&t.window(0, 40)).total_transitions());
    }

    #[test]
    fn extend_with_new_mid_ladder_state_preserves_old_statistics() {
        // Insert a price *below* existing states and check old statistics
        // still point at the right prices (the old `intern` re-index
        // guarantee, now provided by the merge remap).
        let k = FrozenKernel::from_trace(&alternating(5));
        let t2 = PriceTrace::new(
            vec![
                PricePoint {
                    minute: 0,
                    price: p(0.005),
                },
                PricePoint {
                    minute: 4,
                    price: p(0.02),
                },
                PricePoint {
                    minute: 8,
                    price: p(0.005),
                },
            ],
            12,
        );
        let k = k.extend(&t2);
        assert_eq!(k.prices(), &[p(0.005), p(0.01), p(0.02)]);
        let a = 1u16; // 0.01 shifted up by the new state
        let b = 2u16;
        assert!((k.q(a, b, 5) - 1.0).abs() < 1e-12, "A→B stats survived");
        let low = 0u16;
        assert!(k.q(low, b, 4) > 0.0, "new state's transition recorded");
    }

    #[test]
    fn extend_shares_untouched_state_tables() {
        // A window that only revisits existing states must not clone the
        // tables of states it never leaves from or arrives at... and a
        // no-op extend shares everything.
        let base = FrozenKernel::from_trace(&alternating(10));
        let forked = base.extend(&alternating(2));
        assert_eq!(forked.n_states(), base.n_states());
        // Both states are touched here, so check sharing via the empty
        // delta path instead: merging nothing clones only Arcs.
        let same = base.merge(&KernelBuilder::new());
        for (a, b) in same.states.iter().zip(&base.states) {
            assert!(Arc::ptr_eq(a, b), "no-op merge must share tables");
        }
    }

    #[test]
    fn unknown_state_distributions_are_sane() {
        // A kernel with occupancy but no completed transitions.
        let t = PriceTrace::new(
            vec![PricePoint {
                minute: 0,
                price: p(0.01),
            }],
            100,
        );
        let k = FrozenKernel::from_trace(&t);
        assert_eq!(k.n_states(), 1);
        let d = k.next_state_dist(0, 5);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(k.hazard(0, 5) > 0.0, "fallback hazard must be positive");
    }
}
