//! The bidding algorithms end-to-end: Fig. 3 on the paper's 17 zones,
//! the heuristics, and the exact solver on small instances.

use bench::bench_market;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jupiter::framework::MarketSnapshot;
use jupiter::{
    BiddingFramework, BiddingStrategy, ExhaustiveSolver, ExtraStrategy, JupiterStrategy,
    ServiceSpec,
};
use spot_market::{InstanceType, Market};
use std::hint::black_box;

fn framework_for<S: BiddingStrategy>(
    market: &Market,
    strategy: S,
) -> (BiddingFramework<S>, Vec<MarketSnapshot>) {
    let ty = InstanceType::M1Small;
    let mut fw = BiddingFramework::new(ServiceSpec::lock_service(), strategy);
    let now = market.horizon() - 1;
    let mut snapshots = Vec::new();
    for &zone in market.zones() {
        let t = market.trace(zone, ty);
        fw.observe(zone, ty, t);
        snapshots.push(MarketSnapshot {
            zone,
            instance_type: ty,
            spot_price: t.price_at(now),
            sojourn_age: t.sojourn_age_at(now) as u32,
        });
    }
    (fw, snapshots)
}

fn jupiter_decide(c: &mut Criterion) {
    let mut g = c.benchmark_group("jupiter_decide_17_zones");
    g.sample_size(10);
    let market = bench_market(8, 17);
    let (fw, snapshots) = framework_for(&market, JupiterStrategy::new());
    for hours in [1u32, 6, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(hours), &hours, |b, &h| {
            b.iter(|| fw.decide(black_box(&snapshots), h * 60))
        });
    }
    g.finish();
}

fn extra_decide(c: &mut Criterion) {
    let market = bench_market(8, 17);
    let (fw, snapshots) = framework_for(&market, ExtraStrategy::new(2, 0.2));
    c.bench_function("extra_decide_17_zones", |b| {
        b.iter(|| fw.decide(black_box(&snapshots), 360))
    });
}

fn exhaustive_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("exhaustive_nlp");
    g.sample_size(10);
    for zones in [4usize, 5, 6] {
        let market = bench_market(8, zones);
        let (fw, snapshots) = framework_for(&market, ExhaustiveSolver::default());
        g.bench_with_input(BenchmarkId::from_parameter(zones), &zones, |b, _| {
            b.iter(|| fw.decide(black_box(&snapshots), 360))
        });
    }
    g.finish();
}

criterion_group!(benches, jupiter_decide, extra_decide, exhaustive_small);
criterion_main!(benches);
