//! # bench — shared fixtures for the Criterion benchmark suite
//!
//! The benches live in `benches/`; one target per paper artifact:
//!
//! | Bench target | Covers |
//! |---|---|
//! | `price_model` | kernel estimation, interval forecasts, min-bid search (the per-interval cost of the framework, Fig. 2) |
//! | `quorum_availability` | Eq. 1 evaluation: threshold DP vs enumeration, weighted voting, the Fig. 3 line-4 solver |
//! | `erasure_codec` | θ(m,n) encode/decode throughput (the RS-Paxos substrate) |
//! | `bidding` | the Fig. 3 algorithm end-to-end on 17 zones; the exact NLP solver on small instances |
//! | `consensus` | Paxos lock-service commit throughput and failover on simnet |
//! | `figures` | the experiment drivers behind Figs. 4–9 at smoke scale |

use spot_market::{InstanceType, Market, MarketConfig, PriceTrace, Zone};

/// A standard benchmark market: `weeks` of history, `zones` zones,
/// `m1.small`, fixed seed.
pub fn bench_market(weeks: u64, zones: usize) -> Market {
    let mut cfg = MarketConfig::paper(4242, weeks * 7 * 24 * 60);
    cfg.zones.truncate(zones);
    cfg.types = vec![InstanceType::M1Small];
    Market::generate(cfg)
}

/// The first zone's trace from [`bench_market`].
pub fn bench_trace(weeks: u64) -> (Zone, PriceTrace) {
    let market = bench_market(weeks, 1);
    let zone = market.zones()[0];
    (zone, market.trace(zone, InstanceType::M1Small).clone())
}
