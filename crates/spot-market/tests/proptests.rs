//! Property-based tests of traces, billing and the trace generator.

use proptest::prelude::*;
use spot_market::{
    on_demand_charge, spot_charge, GenParams, InstanceType, Price, PricePoint, PriceTrace,
    Termination, TraceGenerator,
};

/// Strategy: a well-formed random trace.
fn trace_strategy() -> impl Strategy<Value = PriceTrace> {
    (
        proptest::collection::vec((1u64..60, 100u64..50_000), 1..40),
        100u64..50_000,
    )
        .prop_map(|(steps, first_price)| {
            let mut points = vec![PricePoint {
                minute: 0,
                price: Price::from_micros(first_price * 100),
            }];
            let mut t = 0;
            for (dt, price) in steps {
                t += dt;
                let price = Price::from_micros(price * 100);
                if points.last().expect("non-empty").price != price {
                    points.push(PricePoint { minute: t, price });
                }
            }
            let horizon = t + 60;
            PriceTrace::new(points, horizon)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Segments partition the horizon exactly, and price_at agrees with
    /// the segment map at every minute.
    #[test]
    fn segments_partition_and_agree(trace in trace_strategy()) {
        let total: u64 = trace.segments().map(|s| s.duration).sum();
        prop_assert_eq!(total, trace.horizon());
        for s in trace.segments() {
            prop_assert_eq!(trace.price_at(s.start), s.price);
            prop_assert_eq!(trace.price_at(s.start + s.duration - 1), s.price);
        }
    }

    /// Windowing then querying equals querying with an offset.
    #[test]
    fn window_is_a_view(trace in trace_strategy(), a in 0u64..100, len in 1u64..200) {
        let from = a.min(trace.horizon() - 1);
        let to = (from + len).min(trace.horizon());
        prop_assume!(from < to);
        let w = trace.window(from, to);
        for m in (0..w.horizon()).step_by(7) {
            prop_assert_eq!(w.price_at(m), trace.price_at(from + m));
        }
    }

    /// fraction_above is a CDF complement in the bid: monotone
    /// non-increasing, and pinned at the extremes.
    #[test]
    fn fraction_above_is_monotone(trace in trace_strategy()) {
        let h = trace.horizon();
        let max = trace.max_price_in(0, h);
        prop_assert_eq!(trace.fraction_above(max, 0, h), 0.0);
        prop_assert_eq!(trace.fraction_above(Price::ZERO, 0, h), 1.0);
        let mut last = 1.0f64;
        for micros in (0..=max.as_micros()).step_by((max.as_micros() as usize / 10).max(1)) {
            let f = trace.fraction_above(Price::from_micros(micros), 0, h);
            prop_assert!(f <= last + 1e-12);
            last = f;
        }
    }

    /// Billing: provider kills never cost more than user terminations of
    /// the same lifetime. (Note that charges are NOT monotone in lifetime:
    /// under the last-price-in-hour rule a partial hour billed at a spike
    /// price can legitimately cost more than the same hour completed at a
    /// low closing price — a quirk of EC2's 2014 billing this suite once
    /// "discovered" by asserting the opposite.)
    #[test]
    fn billing_orderings(trace in trace_strategy(), start in 0u64..50, len in 0u64..300) {
        let start = start.min(trace.horizon() - 1);
        let end = (start + len).min(trace.horizon());
        let provider = spot_charge(&trace, start, end, Termination::Provider);
        let user = spot_charge(&trace, start, end, Termination::User);
        prop_assert!(provider <= user);
        // Provider-kill charges ARE monotone in whole-hour counts: adding
        // a full billed hour can only add a non-negative charge.
        if end + 60 <= trace.horizon() {
            let longer = spot_charge(&trace, start, end + 60, Termination::Provider);
            prop_assert!(longer >= provider);
        }
    }

    /// Spot billing never exceeds max-price × started hours, and a
    /// full-lifetime charge is bounded below by min-price × full hours.
    #[test]
    fn billing_bounds(trace in trace_strategy(), start in 0u64..50, len in 1u64..300) {
        let start = start.min(trace.horizon() - 1);
        let end = (start + len).min(trace.horizon());
        prop_assume!(start < end);
        let cost = spot_charge(&trace, start, end, Termination::User);
        let max = trace.max_price_in(start, end);
        let hours_up = (end - start).div_ceil(60);
        prop_assert!(cost <= max * hours_up);
        let min = trace
            .segments()
            .filter(|s| s.start < end && s.start + s.duration > start)
            .map(|s| s.price)
            .min()
            .expect("overlap");
        let hours_down = (end - start) / 60;
        prop_assert!(cost >= min * hours_down);
    }

    /// On-demand billing: per started hour, monotone, zero for zero time.
    #[test]
    fn on_demand_billing(hourly_micros in 1_000u64..1_000_000, minutes in 0u64..10_000) {
        let hourly = Price::from_micros(hourly_micros);
        let c = on_demand_charge(hourly, 0, minutes);
        prop_assert_eq!(c, hourly * minutes.div_ceil(60));
    }

    /// Generator output is a valid trace with positive prices and is
    /// deterministic in the seed.
    #[test]
    fn generator_invariants(seed in any::<u64>(), minutes in 60u64..5_000) {
        let zones = spot_market::topology::all_zones();
        let gen = TraceGenerator::with_params(seed, GenParams::default());
        let t = gen.generate(zones[0], InstanceType::M1Small, minutes);
        prop_assert_eq!(t.horizon(), minutes);
        for s in t.segments() {
            prop_assert!(s.price > Price::ZERO);
            prop_assert!(s.duration >= 1);
        }
        let t2 = gen.generate(zones[0], InstanceType::M1Small, minutes);
        prop_assert_eq!(t, t2);
    }
}
