//! Minimal JSON emission helpers (this crate has no dependencies).

/// Append `s` as a JSON string literal.
pub(crate) fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` as a JSON number (`null` for non-finite values).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}
