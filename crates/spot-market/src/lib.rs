//! # spot-market — Amazon EC2 spot-market substrate (2014-era semantics)
//!
//! The paper evaluates its bidding framework against the live Amazon EC2
//! spot market of 2014, which no longer exists (AWS removed user bidding in
//! 2017). This crate rebuilds that market as a deterministic substrate:
//!
//! * [`topology`] — the region / availability-zone catalogue of Table 1 and
//!   the per-region instance startup-delay model (200–700 s, Mao & Humphrey).
//! * [`instance`] — instance types used in the evaluation (`m1.small`,
//!   `m3.large`, …) with per-region on-demand prices matching the ranges the
//!   paper quotes ($0.044–0.061 and $0.14–0.201 per hour).
//! * [`trace`] — step-function spot-price traces at one-minute resolution
//!   (the paper discretizes sojourn times to minutes, Eq. 12).
//! * [`gen`] — a semi-Markov synthetic trace generator calibrated to the
//!   2014 statistics the paper reports: price levels around 15–20 % of the
//!   on-demand price, minute-scale price changes, occasional spikes above
//!   the on-demand price, and non-memoryless sojourn times.
//! * [`billing`] — EC2's 2014 charging rules: hourly billing at the last
//!   in-hour spot price, free partial hour on provider (out-of-bid)
//!   termination, charged partial hour on user termination; on-demand
//!   instances billed per started hour.
//! * [`market`] — a facade bundling traces for every (zone, type) pair and
//!   answering the queries the bidding framework and replay harness need
//!   (current price, first out-of-bid minute under a bid, billing).
//!
//! ## Out-of-bid semantics
//!
//! Following EC2's documented behaviour: a spot request is granted when the
//! bid is at least the current spot price, the instance keeps running while
//! `bid >= price`, and is terminated by the provider as soon as
//! `price > bid`. The paper's failure model (Eq. 14) is slightly more
//! conservative at the boundary (it counts `bid == price` as failed); we
//! keep the market faithful to EC2 and let the model be conservative, which
//! only ever overestimates failure probability.

pub mod ar;
pub mod billing;
pub mod capacity;
pub mod gen;
pub mod instance;
pub mod market;
pub mod money;
pub mod stats;
pub mod topology;
pub mod trace;

pub use ar::{ArParams, ArTraceGenerator};
pub use billing::{on_demand_charge, spot_charge, Termination};
pub use capacity::{BidEra, CapacityParams, CapacityProcess, InterruptionNotice, RebalanceSignal};
pub use gen::{GenParams, TraceGenerator};
pub use instance::InstanceType;
pub use market::{Market, MarketConfig};
pub use money::Price;
pub use stats::TraceStats;
pub use topology::{Region, Zone};
pub use trace::{PricePoint, PriceTrace, Segment};
