//! Integration coverage for the online monitors (DESIGN.md "Online
//! monitors & SLOs"): a razor-thin-bid replay over a paper-parameterized
//! market takes **correlated out-of-bid kills** at price spikes, which
//! must deterministically fire the fast-window burn-rate alert at a
//! seed-pinned sim time — and the alert must cross-reference the audit
//! records of the bid decisions that preceded it.

use spot_jupiter::jupiter::{ExtraStrategy, ServiceSpec};
use spot_jupiter::obs::{AuditKind, Obs, Severity};
use spot_jupiter::replay::{replay_strategy_observed, ReplayConfig, ReplayResult};
use spot_jupiter::spot_market::Termination;
use test_util::market_days;

/// The scenario: Extra(0, 0.02) bids a hair above the spot price, so any
/// price spike kills every instance holding the thin bid at once —
/// exactly the correlated out-of-bid failure mode the burn-rate alert
/// exists to page on. 3-hour intervals leave long exposure windows.
const SEED: u64 = 2014;

fn monitored_replay(seed: u64) -> ReplayResult {
    let market = market_days(seed, 8, 7);
    let spec = ServiceSpec::lock_service();
    let config = ReplayConfig::new(2 * 24 * 60, 7 * 24 * 60, 3);
    let (obs, _clock) = Obs::simulated();
    replay_strategy_observed(&market, &spec, ExtraStrategy::new(0, 0.02), config, &obs)
}

#[test]
fn correlated_kills_fire_the_fast_burn_alert_at_a_pinned_time() {
    let result = monitored_replay(SEED);

    // The scenario must actually contain correlated provider kills —
    // otherwise the alert below would be testing nothing.
    let out_of_bid = result
        .instances
        .iter()
        .filter(|i| i.termination == Termination::Provider)
        .count();
    assert!(
        out_of_bid >= 2,
        "scenario lost its correlated kills (got {out_of_bid} out-of-bid terminations); \
         re-pin the seed"
    );

    let fast = result
        .alerts
        .iter()
        .find(|a| a.monitor == "slo.availability.fast_burn")
        .expect("thin-bid replay must burn the fast window");
    assert_eq!(fast.severity, Severity::Critical);

    // Seed-pinned firing time: sim microseconds are deterministic for a
    // given (seed, config), so this is byte-stable across runs and
    // platforms. Minute 3007 is the first accounted minute at which the
    // trailing 60-minute window crossed burn 14.4 for seed 2014.
    assert_eq!(
        fast.at_micros,
        3007 * 60_000_000,
        "fast-burn alert moved (fired at minute {}); \
         the replay or SLO engine changed behavior",
        fast.at_micros / 60_000_000
    );

    // The alert names the decisions that preceded it, and every ref
    // resolves to a real audit record.
    assert!(
        !fast.audit_refs.is_empty(),
        "fast-burn alert carries no decision cross-references"
    );
    for &seq in &fast.audit_refs {
        let rec = result
            .audit
            .iter()
            .find(|r| r.seq == seq)
            .unwrap_or_else(|| panic!("alert references audit seq {seq} which does not exist"));
        // The decisions in effect when the budget burned are bid
        // selections (no repair controller in this replay), and they
        // were made no later than the alert fired.
        assert!(
            matches!(rec.kind, AuditKind::BidSelection { .. }),
            "audit ref {seq} is not a bid selection"
        );
        assert!(
            rec.at_minute * 60_000_000 <= fast.at_micros,
            "audit ref {seq} (minute {}) post-dates the alert",
            rec.at_minute
        );
    }

    // At least one referenced bid was actually granted — the burn was
    // caused by instances the bidder chose, not by an empty fleet.
    assert!(
        fast.audit_refs.iter().any(|&seq| {
            result.audit.iter().any(|r| {
                r.seq == seq && matches!(r.kind, AuditKind::BidSelection { granted: true, .. })
            })
        }),
        "no referenced decision was a granted bid"
    );
}

#[test]
fn monitored_replays_are_deterministic() {
    let a = monitored_replay(SEED);
    let b = monitored_replay(SEED);
    assert_eq!(a.alerts, b.alerts);
    assert_eq!(a.audit, b.audit);
}
