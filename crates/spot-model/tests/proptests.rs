//! Property-based tests of the semi-Markov failure model.

use proptest::prelude::*;
use spot_market::{Price, PricePoint, PriceTrace};
use spot_model::{FailureModel, FailureModelConfig, SemiMarkovKernel};

/// Strategy: a random multi-level trace with enough transitions to train.
fn training_trace() -> impl Strategy<Value = PriceTrace> {
    (
        proptest::collection::vec((1u64..30, 0usize..5), 20..120),
        proptest::collection::vec(50u64..5_000, 5..=5),
    )
        .prop_map(|(steps, levels)| {
            let mut levels: Vec<Price> = levels
                .into_iter()
                .map(|m| Price::from_micros(m * 100))
                .collect();
            levels.sort_unstable();
            levels.dedup();
            let mut points = vec![PricePoint {
                minute: 0,
                price: levels[0],
            }];
            let mut t = 0;
            for (dt, idx) in steps {
                t += dt;
                let price = levels[idx % levels.len()];
                if points.last().expect("non-empty").price != price {
                    points.push(PricePoint { minute: t, price });
                }
            }
            PriceTrace::new(points, t + 30)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hazards are probabilities; next-state distributions sum to one.
    #[test]
    fn kernel_outputs_are_probabilities(trace in training_trace(), age in 1u32..50) {
        let k = SemiMarkovKernel::from_trace(&trace);
        for i in 0..k.n_states() as u16 {
            let h = k.hazard(i, age);
            prop_assert!((0.0..=1.0).contains(&h), "hazard {h}");
            let d = k.next_state_dist(i, age);
            let sum: f64 = d.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "dist sums to {sum}");
            prop_assert!(d.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }
    }

    /// The kernel rows `Σ_{j,k} q̂` never exceed 1 (Eq. 13 normalization).
    #[test]
    fn kernel_rows_are_subnormalized(trace in training_trace()) {
        let k = SemiMarkovKernel::from_trace(&trace);
        for i in 0..k.n_states() as u16 {
            let mut row = 0.0;
            for j in 0..k.n_states() as u16 {
                for kk in 1..=40u32 {
                    row += k.q(i, j, kk);
                }
            }
            prop_assert!(row <= 1.0 + 1e-9, "row {i} = {row}");
        }
    }

    /// Estimated failure probabilities are probabilities, are 1 below the
    /// market price, never fall below FP⁰, and decrease as the bid rises.
    #[test]
    fn fp_estimates_behave(trace in training_trace(), horizon in 10u32..300) {
        let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
        let now = trace.horizon() - 1;
        let spot = trace.price_at(now);
        let age = trace.sojourn_age_at(now) as u32;

        let below = Price::from_micros(spot.as_micros().saturating_sub(100));
        if below < spot {
            prop_assert_eq!(model.estimate_fp(below, spot, age, horizon), 1.0);
        }
        let mut last = 1.0 + 1e-12;
        for mult in [10u64, 12, 15, 20, 30] {
            let bid = Price::from_micros(spot.as_micros() * mult / 10);
            let fp = model.estimate_fp(bid, spot, age, horizon);
            prop_assert!((0.0..=1.0).contains(&fp));
            prop_assert!(fp >= 0.01 - 1e-9, "fp {fp} below FP⁰");
            prop_assert!(fp <= last + 1e-9, "fp not monotone in bid");
            last = fp;
        }
    }

    /// Absorbing estimates dominate expectation estimates (an instance
    /// that is out-of-bid for any minute has certainly been killed).
    #[test]
    fn absorbing_dominates_expectation(trace in training_trace(), horizon in 10u32..200) {
        let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
        let now = trace.horizon() - 1;
        let spot = trace.price_at(now);
        let age = trace.sojourn_age_at(now) as u32;
        for mult in [10u64, 15, 25] {
            let bid = Price::from_micros(spot.as_micros() * mult / 10);
            let e = model.estimate_fp(bid, spot, age, horizon);
            let a = model.estimate_fp_absorbing(bid, spot, age, horizon);
            prop_assert!(a >= e - 1e-9, "absorbing {a} < expectation {e}");
        }
    }

    /// The minimum-bid search returns a feasible bid below the cap that
    /// indeed meets the target, and no cheaper price level does.
    #[test]
    fn min_bid_is_minimal_and_feasible(trace in training_trace(), target in 0.02f64..0.5) {
        let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
        let now = trace.horizon() - 1;
        let spot = trace.price_at(now);
        let age = trace.sojourn_age_at(now) as u32;
        let cap = Price::from_micros(spot.as_micros() * 100);
        if let Some(bid) = model.min_bid_for_fp(target, spot, age, 120, cap) {
            prop_assert!(bid >= spot && bid < cap);
            let fp = model.estimate_fp(bid, spot, age, 120);
            prop_assert!(fp <= target + 1e-9, "chosen bid misses target");
            // No strictly cheaper kernel level within [spot, bid) works.
            for &level in model.kernel().prices() {
                if level >= spot && level < bid {
                    let f = model.estimate_fp(level, spot, age, 120);
                    prop_assert!(f > target, "cheaper level {level} also feasible");
                }
            }
        }
    }
}
