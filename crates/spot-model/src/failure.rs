//! The spot-instance failure model (Eq. 4/14 plus the interval expectation
//! of Eq. 5), the object the bidding framework consults.

use std::sync::Arc;

use spot_market::{Price, PriceTrace};

use crate::forecast::{forecast, survival_probability, Forecast, ForecastConfig};
use crate::kernel::FrozenKernel;
use crate::ON_DEMAND_FP;

/// Configuration of a [`FailureModel`].
#[derive(Clone, Copy, Debug)]
pub struct FailureModelConfig {
    /// Failure probability of an equivalent on-demand instance (`FP⁰`);
    /// the paper fixes 0.01 from the EC2 SLA.
    pub fp0: f64,
    /// Forward-evolution configuration.
    pub forecast: ForecastConfig,
}

impl Default for FailureModelConfig {
    fn default() -> Self {
        FailureModelConfig {
            fp0: ON_DEMAND_FP,
            forecast: ForecastConfig::default(),
        }
    }
}

/// The failure model for one (zone, instance-type) market: a semi-Markov
/// price kernel plus the composition with the baseline failure probability
/// `FP⁰` (Eq. 4): `FP = 1 − (1 − FP⁰)(1 − P(out-of-bid))`.
///
/// ```
/// use spot_market::{InstanceType, Price, TraceGenerator};
/// use spot_model::{FailureModel, FailureModelConfig};
///
/// // Train on two weeks of history for one zone.
/// let zone = spot_market::topology::all_zones()[0];
/// let trace = TraceGenerator::new(7).generate(zone, InstanceType::M1Small, 14 * 24 * 60);
/// let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
///
/// // Estimate the failure probability of a bid over the next 6 hours.
/// let now = trace.horizon() - 1;
/// let spot = trace.price_at(now);
/// let age = trace.sojourn_age_at(now) as u32;
/// let fp = model.estimate_fp(spot.scale(1.5), spot, age, 360);
/// assert!((0.01..=1.0).contains(&fp), "never below the on-demand floor");
/// ```
#[derive(Clone, Debug)]
pub struct FailureModel {
    kernel: Arc<FrozenKernel>,
    config: FailureModelConfig,
}

impl FailureModel {
    /// An untrained model (every estimate is the conservative 1.0).
    pub fn new(config: FailureModelConfig) -> Self {
        FailureModel {
            kernel: Arc::new(FrozenKernel::new()),
            config,
        }
    }

    /// Train a fresh model from a price history.
    pub fn from_trace(trace: &PriceTrace, config: FailureModelConfig) -> Self {
        FailureModel {
            kernel: Arc::new(FrozenKernel::from_trace(trace)),
            config,
        }
    }

    /// A model over a pre-trained shared kernel (the [`FailureModel`] adds
    /// only the per-service `FP⁰` composition, so one kernel can back many
    /// models).
    pub fn from_kernel(kernel: Arc<FrozenKernel>, config: FailureModelConfig) -> Self {
        FailureModel { kernel, config }
    }

    /// Fold more price history into the model (incremental re-estimation).
    /// Copy-on-write: other models sharing this kernel are unaffected.
    pub fn observe(&mut self, trace: &PriceTrace) {
        self.kernel = Arc::new(self.kernel.extend(trace));
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &FrozenKernel {
        &self.kernel
    }

    /// The underlying kernel, shareable.
    pub fn shared_kernel(&self) -> Arc<FrozenKernel> {
        Arc::clone(&self.kernel)
    }

    /// Whether the model has seen enough data to estimate anything.
    pub fn is_trained(&self) -> bool {
        self.kernel.n_states() > 0 && self.kernel.total_transitions() > 0
    }

    /// Compose an out-of-bid probability with the baseline `FP⁰` (Eq. 4).
    fn compose(&self, oob: f64) -> f64 {
        1.0 - (1.0 - self.config.fp0) * (1.0 - oob.clamp(0.0, 1.0))
    }

    /// Forecast the next `horizon_minutes` given the current market state
    /// (`current_price`, held for `current_age_minutes` so far). The
    /// forecast answers out-of-bid fractions for *any* bid, which makes
    /// minimum-bid searches cheap.
    pub fn forecast(
        &self,
        current_price: Price,
        current_age_minutes: u32,
        horizon_minutes: u32,
    ) -> Option<Forecast> {
        if !self.is_trained() {
            return None;
        }
        let state = self.kernel.nearest_state(current_price)?;
        Some(forecast(
            &self.kernel,
            state,
            current_age_minutes,
            horizon_minutes,
            self.config.forecast,
        ))
    }

    /// The failure probability of a spot instance under `bid` for the next
    /// interval (Eq. 14 composed over the interval, Eq. 5 discretized):
    ///
    /// * `bid < current_price` → 1.0 (the request isn't even granted);
    /// * untrained model → 1.0 (be conservative without data);
    /// * otherwise `1 − (1 − FP⁰)(1 − E[fraction of minutes out-of-bid])`.
    pub fn estimate_fp(
        &self,
        bid: Price,
        current_price: Price,
        current_age_minutes: u32,
        horizon_minutes: u32,
    ) -> f64 {
        if bid < current_price {
            return 1.0;
        }
        match self.forecast(current_price, current_age_minutes, horizon_minutes) {
            None => 1.0,
            Some(f) => self.compose(f.out_of_bid_fraction(bid)),
        }
    }

    /// Same composition but from a pre-computed forecast (hot path of the
    /// bidding algorithm: one forecast, many candidate bids).
    pub fn fp_from_forecast(&self, f: &Forecast, bid: Price, current_price: Price) -> f64 {
        if bid < current_price {
            return 1.0;
        }
        self.compose(f.out_of_bid_fraction(bid))
    }

    /// Absorbing-failure variant for the ablation: probability that the
    /// instance does **not** survive the whole interval (out-of-bid at any
    /// point, or baseline failure).
    pub fn estimate_fp_absorbing(
        &self,
        bid: Price,
        current_price: Price,
        current_age_minutes: u32,
        horizon_minutes: u32,
    ) -> f64 {
        if bid < current_price || !self.is_trained() {
            return 1.0;
        }
        let Some(state) = self.kernel.nearest_state(current_price) else {
            return 1.0;
        };
        let survive = survival_probability(
            &self.kernel,
            bid,
            state,
            current_age_minutes,
            horizon_minutes,
            self.config.forecast,
        );
        self.compose(1.0 - survive)
    }

    /// The minimal bid whose estimated failure probability over the next
    /// interval is ≤ `target_fp`, restricted to bids strictly below `cap`
    /// (the bidding framework caps at the on-demand price, §4.2). Returns
    /// `None` when no such bid exists — the zone cannot meet the target
    /// this interval.
    ///
    /// Only the kernel's price levels need to be examined: between levels
    /// the out-of-bid fraction is constant, so any feasible bid can be
    /// lowered to a level price (or to the current price) without changing
    /// its failure estimate.
    pub fn min_bid_for_fp(
        &self,
        target_fp: f64,
        current_price: Price,
        current_age_minutes: u32,
        horizon_minutes: u32,
        cap: Price,
    ) -> Option<Price> {
        let f = self.forecast(current_price, current_age_minutes, horizon_minutes)?;
        let candidates = std::iter::once(current_price)
            .chain(f.levels().iter().copied())
            .filter(|&b| b >= current_price && b < cap);
        let mut best: Option<Price> = None;
        for b in candidates {
            if self.fp_from_forecast(&f, b, current_price) <= target_fp {
                best = Some(match best {
                    Some(prev) => prev.min(b),
                    None => b,
                });
            }
        }
        best
    }

    /// The minimal bid whose **absorbing** failure probability (the
    /// chance of being killed at all during the interval) is ≤
    /// `target_fp`, capped strictly below `cap`.
    ///
    /// The absorbing estimate needs one forward evolution per candidate
    /// bid, so this binary-searches the (monotone) price-level ladder
    /// instead of scanning it — ⌈log₂ levels⌉ evolutions per call.
    pub fn min_bid_for_fp_absorbing(
        &self,
        target_fp: f64,
        current_price: Price,
        current_age_minutes: u32,
        horizon_minutes: u32,
        cap: Price,
    ) -> Option<Price> {
        if !self.is_trained() {
            return None;
        }
        let candidates: Vec<Price> = std::iter::once(current_price)
            .chain(self.kernel.prices().iter().copied())
            .filter(|&b| b >= current_price && b < cap)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let feasible = |b: Price| {
            self.estimate_fp_absorbing(b, current_price, current_age_minutes, horizon_minutes)
                <= target_fp
        };
        // FP is non-increasing in the bid: find the first feasible index.
        let (mut lo, mut hi) = (0usize, candidates.len());
        while lo < hi {
            let mid = (lo + hi) / 2;
            if feasible(candidates[mid]) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        candidates.get(lo).copied().filter(|&b| feasible(b))
    }

    /// The model configuration.
    pub fn config(&self) -> &FailureModelConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_market::PricePoint;

    fn p(d: f64) -> Price {
        Price::from_dollars(d)
    }

    /// Deterministic alternation A=0.01 (5 min) → B=0.02 (3 min).
    fn model() -> FailureModel {
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..60 {
            points.push(PricePoint {
                minute: t,
                price: p(0.01),
            });
            t += 5;
            points.push(PricePoint {
                minute: t,
                price: p(0.02),
            });
            t += 3;
        }
        FailureModel::from_trace(&PriceTrace::new(points, t), FailureModelConfig::default())
    }

    #[test]
    fn untrained_model_is_conservative() {
        let m = FailureModel::new(FailureModelConfig::default());
        assert!(!m.is_trained());
        assert_eq!(m.estimate_fp(p(1.0), p(0.01), 0, 60), 1.0);
        assert!(m.min_bid_for_fp(0.5, p(0.01), 0, 60, p(1.0)).is_none());
    }

    #[test]
    fn below_market_bid_always_fails() {
        let m = model();
        assert_eq!(m.estimate_fp(p(0.005), p(0.01), 0, 60), 1.0);
        assert_eq!(m.estimate_fp_absorbing(p(0.005), p(0.01), 0, 60), 1.0);
    }

    #[test]
    fn safe_bid_fp_floors_at_fp0() {
        // A bid at the top level never goes out-of-bid; FP = FP⁰ = 0.01.
        let m = model();
        let fp = m.estimate_fp(p(0.02), p(0.01), 0, 480);
        assert!((fp - 0.01).abs() < 1e-9, "got {fp}");
    }

    #[test]
    fn duty_cycle_bid_fp_matches_expectation() {
        // Bidding 0.01 is out of bid 3/8 of the time; composed with FP⁰:
        // 1 − 0.99 · (1 − 0.375) ≈ 0.3806.
        let m = model();
        let fp = m.estimate_fp(p(0.01), p(0.01), 0, 480);
        assert!((fp - 0.3806).abs() < 0.05, "got {fp}");
    }

    #[test]
    fn min_bid_search_picks_cheapest_safe_level() {
        let m = model();
        // Target 0.02: only the 0.02 level satisfies it (FP there = 0.01).
        let bid = m.min_bid_for_fp(0.02, p(0.01), 0, 480, p(0.044)).unwrap();
        assert_eq!(bid, p(0.02));
        // Target 0.5: even the risky 0.01 bid is fine — the cheapest wins.
        let bid = m.min_bid_for_fp(0.5, p(0.01), 0, 480, p(0.044)).unwrap();
        assert_eq!(bid, p(0.01));
        // Cap below every feasible level ⇒ no bid.
        assert!(m.min_bid_for_fp(0.02, p(0.01), 0, 480, p(0.015)).is_none());
    }

    #[test]
    fn min_bid_respects_strictly_below_cap() {
        let m = model();
        // Cap exactly at the safe level must exclude it.
        assert!(m.min_bid_for_fp(0.02, p(0.01), 0, 480, p(0.02)).is_none());
    }

    #[test]
    fn absorbing_fp_at_least_expectation_fp() {
        let m = model();
        for horizon in [10u32, 60, 240] {
            let e = m.estimate_fp(p(0.01), p(0.01), 2, horizon);
            let a = m.estimate_fp_absorbing(p(0.01), p(0.01), 2, horizon);
            assert!(a >= e - 1e-9, "h={horizon}: absorbing {a} < expect {e}");
        }
    }

    #[test]
    fn fp_decreases_with_bid() {
        let m = model();
        let f = m.forecast(p(0.01), 0, 120).unwrap();
        let lo = m.fp_from_forecast(&f, p(0.01), p(0.01));
        let hi = m.fp_from_forecast(&f, p(0.02), p(0.01));
        assert!(hi < lo);
    }

    #[test]
    fn absorbing_min_bid_never_below_expectation_min_bid() {
        // Killing risk dominates time-fraction risk, so the absorbing
        // search can only demand an equal or higher bid.
        let m = model();
        for target in [0.05, 0.2, 0.5] {
            let e = m.min_bid_for_fp(target, p(0.01), 0, 240, p(0.044));
            let a = m.min_bid_for_fp_absorbing(target, p(0.01), 0, 240, p(0.044));
            match (e, a) {
                (Some(e), Some(a)) => assert!(a >= e, "target {target}: {a:?} < {e:?}"),
                (None, Some(_)) => panic!("absorbing feasible where expectation is not"),
                _ => {}
            }
        }
        // The fully safe level is feasible for both at a loose target.
        let a = m
            .min_bid_for_fp_absorbing(0.02, p(0.01), 0, 240, p(0.044))
            .unwrap();
        assert_eq!(a, p(0.02));
    }

    #[test]
    fn incremental_training_improves_from_empty() {
        let mut m = FailureModel::new(FailureModelConfig::default());
        assert_eq!(m.estimate_fp(p(0.02), p(0.01), 0, 60), 1.0);
        let mut points = Vec::new();
        let mut t = 0;
        for _ in 0..20 {
            points.push(PricePoint {
                minute: t,
                price: p(0.01),
            });
            t += 5;
            points.push(PricePoint {
                minute: t,
                price: p(0.02),
            });
            t += 3;
        }
        m.observe(&PriceTrace::new(points, t));
        let fp = m.estimate_fp(p(0.02), p(0.01), 0, 60);
        assert!(fp < 0.02, "trained model should trust the top bid: {fp}");
    }
}
