//! # spot-jupiter — bidding for highly available services on spot markets
//!
//! A full reproduction of *"Bidding for Highly Available Services with Low
//! Price in Spot Instance Market"* (HPDC 2015): the **Jupiter** bidding
//! framework plus every substrate it runs on, built from scratch in Rust.
//!
//! This facade crate re-exports the workspace members:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`simnet`] | deterministic discrete-event network simulation |
//! | [`spot_market`] | 2014-era EC2 spot market: zones, prices, billing, synthetic traces |
//! | [`spot_model`] | the semi-Markov spot-instance failure model |
//! | [`quorum`] | acceptance sets, quorum systems, availability math |
//! | [`erasure`] | GF(2⁸) Reed–Solomon θ(m, n) |
//! | [`paxos`] | Multi-Paxos SMR with view change + the lock service |
//! | [`storage`] | the RS-Paxos erasure-coded storage service |
//! | [`jupiter`] | the bidding framework: Fig. 3 algorithm, Extra(m,p), exact solver |
//! | [`replay`] | the trace-replay experiment harness (Figs. 4–9) |
//! | [`workload`] | request-level open-loop load generation + SLO availability |
//! | [`obs`] | observability: metric registry, sim-time tracing, JSON export |
//!
//! ## Quickstart
//!
//! ```
//! use spot_jupiter::jupiter::{BiddingFramework, JupiterStrategy, ServiceSpec};
//! use spot_jupiter::jupiter::framework::MarketSnapshot;
//! use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};
//!
//! // Ten days of synthetic market history across the paper's 17 zones.
//! let market = Market::generate(MarketConfig::paper(42, 10 * 24 * 60));
//! let ty = InstanceType::M1Small;
//!
//! // Train one failure model per zone, then bid for a 6-hour interval.
//! let mut fw = BiddingFramework::new(ServiceSpec::lock_service(), JupiterStrategy::new());
//! let now = market.horizon() - 1;
//! let snapshots: Vec<MarketSnapshot> = market
//!     .zones()
//!     .iter()
//!     .map(|&z| {
//!         let t = market.trace(z, ty);
//!         fw.observe(z, ty, t);
//!         MarketSnapshot {
//!             zone: z,
//!             instance_type: ty,
//!             spot_price: t.price_at(now),
//!             sojourn_age: t.sojourn_age_at(now) as u32,
//!         }
//!     })
//!     .collect();
//! let decision = fw.decide(&snapshots, 360);
//! assert!(decision.n() >= 5, "a lock service needs at least five replicas");
//! ```

pub use erasure;
pub use jupiter;
pub use obs;
pub use paxos;
pub use quorum;
pub use replay;
pub use simnet;
pub use spot_market;
pub use spot_model;
pub use storage;
pub use workload;
