//! Fixed-capacity time series: named streams of `(t, f64)` samples with
//! automatic downsampling.
//!
//! A [`TimeSeries`] keeps at most `capacity` points. When a new sample
//! would exceed the capacity, adjacent points are merged pairwise —
//! halving the point count and doubling the time resolution — so a
//! series never reallocates beyond its capacity and never silently
//! drops its history. Each point keeps the **min/max envelope**, the
//! first/last values, and the sample count of everything merged into
//! it, so downsampling preserves extremes exactly (the property charts
//! and regression checks care about) while the mean stays recoverable
//! from `sum / count`.
//!
//! The time axis is caller-defined: the replay crates record market
//! *minutes*, wall-clock users may record microseconds. A series only
//! assumes time is non-decreasing per stream (out-of-order samples are
//! accepted but land in the tail point).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::json;

/// Default maximum number of retained points per series.
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

/// One retained point: a single sample, or the aggregate of several
/// merged samples covering `[t_first, t_last]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Time of the earliest sample merged into this point.
    pub t_first: u64,
    /// Time of the latest sample merged into this point.
    pub t_last: u64,
    /// Smallest merged sample.
    pub min: f64,
    /// Largest merged sample.
    pub max: f64,
    /// Earliest merged sample value.
    pub first: f64,
    /// Latest merged sample value.
    pub last: f64,
    /// Sum of merged samples (mean = `sum / count`).
    pub sum: f64,
    /// Number of raw samples merged into this point.
    pub count: u64,
}

impl SeriesPoint {
    fn single(t: u64, value: f64) -> SeriesPoint {
        SeriesPoint {
            t_first: t,
            t_last: t,
            min: value,
            max: value,
            first: value,
            last: value,
            sum: value,
            count: 1,
        }
    }

    /// Merge `next` (the later point) into `self`.
    fn absorb(&mut self, next: &SeriesPoint) {
        self.t_last = next.t_last;
        self.min = self.min.min(next.min);
        self.max = self.max.max(next.max);
        self.last = next.last;
        self.sum += next.sum;
        self.count += next.count;
    }
}

struct SeriesCells {
    points: Vec<SeriesPoint>,
    capacity: usize,
    total_count: u64,
}

impl SeriesCells {
    fn record(&mut self, t: u64, value: f64) {
        self.total_count += 1;
        if self.points.len() >= self.capacity {
            // Halve the resolution: merge adjacent pairs in place. With
            // capacity >= 2 this always frees at least one slot.
            let mut write = 0usize;
            let mut read = 0usize;
            while read < self.points.len() {
                let mut merged = self.points[read];
                if read + 1 < self.points.len() {
                    let next = self.points[read + 1];
                    merged.absorb(&next);
                }
                self.points[write] = merged;
                write += 1;
                read += 2;
            }
            self.points.truncate(write);
        }
        self.points.push(SeriesPoint::single(t, value));
    }

    fn snapshot(&self, name: &str) -> SeriesSnapshot {
        SeriesSnapshot {
            name: name.to_owned(),
            points: self.points.clone(),
            total_count: self.total_count,
        }
    }
}

struct StoreInner {
    series: Mutex<BTreeMap<String, Arc<Mutex<SeriesCells>>>>,
    default_capacity: usize,
}

/// A named collection of [`TimeSeries`]. Shares the enabled/disabled
/// design of [`crate::Registry`]: a disabled store hands out no-op
/// handles whose `record` is a `None` check.
#[derive(Clone)]
pub struct SeriesStore {
    inner: Option<Arc<StoreInner>>,
}

impl SeriesStore {
    /// An enabled, empty store with the default per-series capacity.
    pub fn new() -> SeriesStore {
        SeriesStore::with_capacity(DEFAULT_SERIES_CAPACITY)
    }

    /// An enabled store whose series keep at most `capacity` points
    /// each (clamped to at least 2 so pair-merging always frees space).
    pub fn with_capacity(capacity: usize) -> SeriesStore {
        SeriesStore {
            inner: Some(Arc::new(StoreInner {
                series: Mutex::new(BTreeMap::new()),
                default_capacity: capacity.max(2),
            })),
        }
    }

    /// A store whose series all discard their samples.
    pub fn disabled() -> SeriesStore {
        SeriesStore { inner: None }
    }

    /// Whether series from this store record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The series named `name`, created on first use.
    pub fn series(&self, name: &str) -> TimeSeries {
        TimeSeries {
            cells: self.inner.as_ref().map(|inner| {
                let mut map = inner.series.lock().unwrap();
                map.entry(name.to_owned())
                    .or_insert_with(|| {
                        Arc::new(Mutex::new(SeriesCells {
                            points: Vec::new(),
                            capacity: inner.default_capacity,
                            total_count: 0,
                        }))
                    })
                    .clone()
            }),
        }
    }

    /// Record one sample into the series named `name` (shorthand for
    /// `self.series(name).record(t, value)`).
    pub fn record(&self, name: &str, t: u64, value: f64) {
        self.series(name).record(t, value);
    }

    /// Point-in-time copies of every series, sorted by name.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        inner
            .series
            .lock()
            .unwrap()
            .iter()
            .map(|(name, cells)| cells.lock().unwrap().snapshot(name))
            .collect()
    }
}

impl Default for SeriesStore {
    fn default() -> SeriesStore {
        SeriesStore::disabled()
    }
}

impl std::fmt::Debug for SeriesStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("SeriesStore")
                .field("series", &inner.series.lock().unwrap().len())
                .finish(),
            None => f.write_str("SeriesStore(disabled)"),
        }
    }
}

/// A handle to one named series. Cloning shares the underlying ring.
#[derive(Clone, Default)]
pub struct TimeSeries {
    cells: Option<Arc<Mutex<SeriesCells>>>,
}

impl TimeSeries {
    /// Record one `(t, value)` sample.
    pub fn record(&self, t: u64, value: f64) {
        if let Some(cells) = &self.cells {
            cells.lock().unwrap().record(t, value);
        }
    }

    /// Total samples ever recorded (including ones merged away).
    pub fn count(&self) -> u64 {
        self.cells
            .as_ref()
            .map_or(0, |c| c.lock().unwrap().total_count)
    }

    /// This series' current points and aggregates.
    pub fn snapshot(&self) -> SeriesSnapshot {
        self.cells.as_ref().map_or_else(SeriesSnapshot::default, |c| {
            c.lock().unwrap().snapshot("")
        })
    }
}

impl std::fmt::Debug for TimeSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.cells {
            Some(cells) => {
                let c = cells.lock().unwrap();
                write!(
                    f,
                    "TimeSeries(points={}, samples={})",
                    c.points.len(),
                    c.total_count
                )
            }
            None => f.write_str("TimeSeries(disabled)"),
        }
    }
}

/// Detached copy of one series, safe to store in results.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name (empty for snapshots taken from a bare handle).
    pub name: String,
    /// Retained points, oldest first.
    pub points: Vec<SeriesPoint>,
    /// Total samples ever recorded into the series.
    pub total_count: u64,
}

impl SeriesSnapshot {
    /// Smallest sample ever retained (None when empty).
    pub fn min(&self) -> Option<f64> {
        self.points.iter().map(|p| p.min).reduce(f64::min)
    }

    /// Largest sample ever retained (None when empty).
    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|p| p.max).reduce(f64::max)
    }

    /// The most recent sample value (None when empty).
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.last)
    }

    /// Mean over all retained samples (None when empty).
    pub fn mean(&self) -> Option<f64> {
        let count: u64 = self.points.iter().map(|p| p.count).sum();
        if count == 0 {
            return None;
        }
        Some(self.points.iter().map(|p| p.sum).sum::<f64>() / count as f64)
    }

    /// This snapshot as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        json::push_str_lit(&mut out, &self.name);
        out.push_str(&format!(",\"total_count\":{},\"points\":[", self.total_count));
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_point_json(&mut out, p);
        }
        out.push_str("]}");
        out
    }
}

pub(crate) fn push_point_json(out: &mut String, p: &SeriesPoint) {
    out.push_str(&format!("{{\"t_first\":{},\"t_last\":{}", p.t_first, p.t_last));
    for (key, v) in [
        ("min", p.min),
        ("max", p.max),
        ("first", p.first),
        ("last", p.last),
        ("sum", p.sum),
    ] {
        out.push_str(&format!(",\"{key}\":"));
        json::push_f64(out, v);
    }
    out.push_str(&format!(",\"count\":{}}}", p.count));
}
