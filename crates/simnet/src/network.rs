//! Network behaviour: latency model, message loss and partitions.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::sim::NodeId;
use crate::time::SimTime;

/// Configuration of the simulated network connecting the nodes.
///
/// The services in this workspace are geo-replicated across EC2 availability
/// zones, so the defaults model cross-zone WAN links: tens of milliseconds of
/// one-way latency with jitter and a small loss rate. Loopback delivery
/// (node to itself) is near-instant.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Minimum one-way latency between distinct nodes, inclusive.
    pub min_latency: SimTime,
    /// Maximum one-way latency between distinct nodes, inclusive.
    pub max_latency: SimTime,
    /// Probability that a message between distinct nodes is silently lost.
    pub drop_probability: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            min_latency: SimTime::from_millis(20),
            max_latency: SimTime::from_millis(80),
            drop_probability: 0.001,
        }
    }
}

impl NetworkConfig {
    /// A perfect network: zero loss, fixed 1 ms latency. Useful in tests
    /// that want to isolate protocol logic from network nondeterminism.
    pub fn ideal() -> Self {
        NetworkConfig {
            min_latency: SimTime::from_millis(1),
            max_latency: SimTime::from_millis(1),
            drop_probability: 0.0,
        }
    }

    /// A lossy, high-jitter network for stress tests.
    pub fn harsh() -> Self {
        NetworkConfig {
            min_latency: SimTime::from_millis(10),
            max_latency: SimTime::from_millis(400),
            drop_probability: 0.05,
        }
    }
}

/// Link-level fault injection applied *on top of* the base
/// [`NetworkConfig`], toggled at runtime by a chaos schedule.
///
/// Kept separate from `NetworkConfig` so existing struct-literal
/// constructions stay valid and so chaos can be switched on and off
/// mid-run without touching the base latency model. All probabilities are
/// only sampled when strictly positive, so a run with chaos disabled
/// consumes exactly the same RNG stream as before this layer existed.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkChaos {
    /// Extra per-message drop probability (on top of the base loss rate).
    pub drop_pr: f64,
    /// Probability a delivered message is duplicated; the copy arrives up
    /// to `extra_delay_max` later, which also reorders it past later sends.
    pub dup_pr: f64,
    /// Probability a delivered message suffers an extra delay spike.
    pub delay_pr: f64,
    /// Upper bound of the extra delay (spikes and duplicate lag).
    pub extra_delay_max: SimTime,
}

impl Default for LinkChaos {
    /// No chaos: all probabilities zero.
    fn default() -> Self {
        LinkChaos {
            drop_pr: 0.0,
            dup_pr: 0.0,
            delay_pr: 0.0,
            extra_delay_max: SimTime::ZERO,
        }
    }
}

/// Outcome of sampling one send: up to two deliveries (original plus a
/// possible chaos duplicate), allocation-free. The disposition flags
/// record *why* the sample came out the way it did, so the simulation
/// can emit chaos-visibility trace events without re-deriving (or
/// re-sampling) the cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Deliveries {
    /// Delay of the original copy; `None` means dropped.
    pub first: Option<SimTime>,
    /// Delay of a duplicated copy, if any.
    pub second: Option<SimTime>,
    /// The drop (if any) came from injected link chaos, not the base
    /// loss model or a partition.
    pub chaos_dropped: bool,
    /// A chaos delay spike was added to the original copy.
    pub delayed: bool,
}

impl Deliveries {
    fn plain(first: Option<SimTime>) -> Deliveries {
        Deliveries {
            first,
            second: None,
            chaos_dropped: false,
            delayed: false,
        }
    }
}

/// Mutable network state: the active partition and the RNG-driven sampling
/// of latencies and drops.
#[derive(Debug)]
pub(crate) struct Network {
    pub config: NetworkConfig,
    /// Partition groups: nodes may only talk to nodes in the same group.
    /// Empty means fully connected.
    groups: Vec<Vec<NodeId>>,
    /// Active link-level chaos, if any.
    chaos: Option<LinkChaos>,
}

impl Network {
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            config,
            groups: Vec::new(),
            chaos: None,
        }
    }

    /// Enable link-level chaos for subsequent sends.
    pub fn set_chaos(&mut self, chaos: LinkChaos) {
        self.chaos = Some(chaos);
    }

    /// Disable link-level chaos.
    pub fn clear_chaos(&mut self) {
        self.chaos = None;
    }

    /// Install a partition: each inner vector is one side. Nodes not listed
    /// in any group are isolated from everyone.
    pub fn partition(&mut self, groups: Vec<Vec<NodeId>>) {
        self.groups = groups;
    }

    /// Remove any partition, restoring full connectivity.
    pub fn heal(&mut self) {
        self.groups.clear();
    }

    /// Whether a message from `a` may currently reach `b`.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || self.groups.is_empty() {
            return true;
        }
        self.groups.iter().any(|g| g.contains(&a) && g.contains(&b))
    }

    /// Sample the delivery delay for a message from `a` to `b`, or `None`
    /// if the message is dropped (loss or partition).
    pub fn sample_delivery(&self, a: NodeId, b: NodeId, rng: &mut ChaCha8Rng) -> Option<SimTime> {
        if !self.connected(a, b) {
            return None;
        }
        if a == b {
            return Some(SimTime::from_millis(1));
        }
        if self.config.drop_probability > 0.0 && rng.gen::<f64>() < self.config.drop_probability {
            return None;
        }
        let lo = self.config.min_latency.as_millis();
        let hi = self.config.max_latency.as_millis().max(lo);
        let ms = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        Some(SimTime::from_millis(ms))
    }

    /// Sample one send under the base model *and* any active link chaos:
    /// the original delivery may be dropped, delayed by a spike, and/or
    /// duplicated (the copy arriving later, i.e. reordered).
    ///
    /// With no chaos installed this consumes exactly the same RNG draws as
    /// [`Network::sample_delivery`], so chaos-free runs are byte-identical
    /// to runs before this layer existed.
    pub fn sample_deliveries(&self, a: NodeId, b: NodeId, rng: &mut ChaCha8Rng) -> Deliveries {
        let base = self.sample_delivery(a, b, rng);
        let (Some(base), Some(chaos)) = (base, self.chaos.as_ref()) else {
            return Deliveries::plain(base);
        };
        if a == b {
            // Loopback (client libraries talking to their own node slot)
            // is exempt: chaos models the WAN, not the local bus.
            return Deliveries::plain(Some(base));
        }
        if chaos.drop_pr > 0.0 && rng.gen::<f64>() < chaos.drop_pr {
            return Deliveries {
                first: None,
                second: None,
                chaos_dropped: true,
                delayed: false,
            };
        }
        let mut first = base;
        let mut delayed = false;
        if chaos.delay_pr > 0.0 && rng.gen::<f64>() < chaos.delay_pr {
            let spike = rng.gen_range(0..=chaos.extra_delay_max.as_millis());
            first += SimTime::from_millis(spike);
            delayed = spike > 0;
        }
        let mut second = None;
        if chaos.dup_pr > 0.0 && rng.gen::<f64>() < chaos.dup_pr {
            let lag = rng.gen_range(1..=chaos.extra_delay_max.as_millis().max(1));
            second = Some(base + SimTime::from_millis(lag));
        }
        Deliveries {
            first: Some(first),
            second,
            chaos_dropped: false,
            delayed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_network_never_drops() {
        let net = Network::new(NetworkConfig::ideal());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let d = net.sample_delivery(NodeId(0), NodeId(1), &mut rng);
            assert_eq!(d, Some(SimTime::from_millis(1)));
        }
    }

    #[test]
    fn latency_within_bounds() {
        let net = Network::new(NetworkConfig {
            min_latency: SimTime::from_millis(5),
            max_latency: SimTime::from_millis(9),
            drop_probability: 0.0,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..500 {
            let d = net
                .sample_delivery(NodeId(0), NodeId(1), &mut rng)
                .unwrap()
                .as_millis();
            assert!((5..=9).contains(&d), "latency {d} out of bounds");
        }
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut net = Network::new(NetworkConfig::ideal());
        net.partition(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        assert!(net.connected(NodeId(0), NodeId(1)));
        assert!(!net.connected(NodeId(0), NodeId(2)));
        // Unlisted nodes are isolated.
        assert!(!net.connected(NodeId(3), NodeId(0)));
        // Loopback always works.
        assert!(net.connected(NodeId(3), NodeId(3)));
        net.heal();
        assert!(net.connected(NodeId(0), NodeId(2)));
    }

    #[test]
    fn drop_probability_observed() {
        let net = Network::new(NetworkConfig {
            min_latency: SimTime::from_millis(1),
            max_latency: SimTime::from_millis(1),
            drop_probability: 0.5,
        });
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let delivered = (0..10_000)
            .filter(|_| {
                net.sample_delivery(NodeId(0), NodeId(1), &mut rng)
                    .is_some()
            })
            .count();
        assert!((4_000..6_000).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn no_chaos_matches_sample_delivery_stream() {
        // With chaos uninstalled, sample_deliveries must consume exactly
        // the same RNG draws as sample_delivery — seeded tests elsewhere
        // depend on the stream not shifting.
        let net = Network::new(NetworkConfig::default());
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let single = net.sample_delivery(NodeId(0), NodeId(1), &mut r1);
            let multi = net.sample_deliveries(NodeId(0), NodeId(1), &mut r2);
            assert_eq!(multi.first, single);
            assert_eq!(multi.second, None);
        }
    }

    #[test]
    fn chaos_duplicates_and_delays() {
        let mut net = Network::new(NetworkConfig::ideal());
        net.set_chaos(LinkChaos {
            drop_pr: 0.0,
            dup_pr: 1.0,
            delay_pr: 1.0,
            extra_delay_max: SimTime::from_millis(100),
        });
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut dup_later = 0;
        for _ in 0..200 {
            let d = net.sample_deliveries(NodeId(0), NodeId(1), &mut rng);
            let first = d.first.expect("dup_pr=1 never drops");
            let second = d.second.expect("dup_pr=1 always duplicates");
            assert!(first <= SimTime::from_millis(101), "spike bounded");
            assert!(second >= SimTime::from_millis(2), "copy lags the base");
            if second > first {
                dup_later += 1;
            }
        }
        assert!(dup_later > 0, "duplicates sometimes arrive after spikes");
        // Loopback is exempt from chaos.
        let d = net.sample_deliveries(NodeId(2), NodeId(2), &mut rng);
        assert_eq!(d.first, Some(SimTime::from_millis(1)));
        assert_eq!(d.second, None);
        net.clear_chaos();
        let d = net.sample_deliveries(NodeId(0), NodeId(1), &mut rng);
        assert_eq!(d.second, None);
    }

    #[test]
    fn chaos_extra_drops_observed() {
        let mut net = Network::new(NetworkConfig::ideal());
        net.set_chaos(LinkChaos {
            drop_pr: 0.5,
            ..LinkChaos::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let delivered = (0..10_000)
            .filter(|_| {
                net.sample_deliveries(NodeId(0), NodeId(1), &mut rng)
                    .first
                    .is_some()
            })
            .count();
        assert!((4_000..6_000).contains(&delivered), "delivered={delivered}");
    }
}
