//! Seeded-RNG builders: one way to spell randomness across the suites.

use rand_chacha::ChaCha8Rng;

use rand::SeedableRng;

/// The workspace-standard seeded RNG (ChaCha8, the same generator the
/// simulator itself uses).
pub fn rng_from(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Derive an independent sub-seed from `(base, stream)`.
///
/// SplitMix64 over the pair, so workload, cluster, and schedule seeds
/// drawn from one printed base seed don't share RNG streams. Stable
/// across platforms and releases — reproduction commands depend on it.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut x = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic_and_stream_separated() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn rng_from_same_seed_same_stream() {
        let mut a = rng_from(7);
        let mut b = rng_from(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
