//! Ballots and log slots.

use simnet::NodeId;
use std::fmt;

/// A log position (consensus instance number).
pub type Slot = u64;

/// A Paxos ballot: a round number paired with the proposing node, ordered
/// lexicographically so ballots are totally ordered and every node can
/// mint ballots nobody else can.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Monotone round counter.
    pub round: u64,
    /// Proposer that owns this ballot.
    pub node: NodeId,
}

impl Ballot {
    /// The ballot smaller than every real ballot (initial promise).
    pub const BOTTOM: Ballot = Ballot {
        round: 0,
        node: NodeId(0),
    };

    /// A first-round ballot for `node`.
    pub fn initial(node: NodeId) -> Ballot {
        Ballot { round: 1, node }
    }

    /// The smallest ballot owned by `node` strictly above `self`.
    pub fn next_for(&self, node: NodeId) -> Ballot {
        Ballot {
            round: self.round + 1,
            node,
        }
    }
}

impl fmt::Debug for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_round_then_node() {
        let a = Ballot {
            round: 1,
            node: NodeId(5),
        };
        let b = Ballot {
            round: 2,
            node: NodeId(0),
        };
        let c = Ballot {
            round: 2,
            node: NodeId(3),
        };
        assert!(a < b && b < c);
        assert!(Ballot::BOTTOM < a);
    }

    #[test]
    fn next_for_always_exceeds() {
        let cur = Ballot {
            round: 7,
            node: NodeId(9),
        };
        for node in 0..10 {
            assert!(cur.next_for(NodeId(node)) > cur);
        }
    }
}
