//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented directly on `proc_macro`
//! token streams (the build environment has no syn/quote).
//!
//! Supported shapes — everything the workspace derives:
//! * structs with named fields,
//! * tuple structs (arity 1 serializes transparently, like serde
//!   newtypes; higher arities as arrays),
//! * enums whose variants are all unit variants (serialized as the
//!   variant name string).
//!
//! Generics, `#[serde(...)]` attributes, and data-carrying enum variants
//! are rejected with a compile error naming this shim, so accidental use
//! fails loudly instead of silently misbehaving.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the item being derived looks like.
enum Shape {
    /// `struct Name { a: T, b: U }` — field names in order.
    NamedStruct(Vec<String>),
    /// `struct Name(T, ...)` — field count.
    TupleStruct(usize),
    /// `enum Name { A, B, C }` — variant names in order.
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error tokens"),
    }
}

// ---- parsing ------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match ident_at(&tokens, i).as_deref() {
        Some(k @ ("struct" | "enum")) => k.to_owned(),
        _ => return Err("serde shim: expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = ident_at(&tokens, i).ok_or("serde shim: expected item name")?;
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim: generic type `{name}` is not supported; derive by hand"
        ));
    }

    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let body: Vec<TokenTree> = g.stream().into_iter().collect();
            if kind == "struct" {
                Shape::NamedStruct(parse_named_fields(&body)?)
            } else {
                Shape::UnitEnum(parse_unit_variants(&name, &body)?)
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("serde shim: unexpected parenthesized enum body".into());
            }
            Shape::TupleStruct(count_tuple_fields(&g.stream().into_iter().collect::<Vec<_>>()))
        }
        _ => {
            return Err(format!(
                "serde shim: unsupported item body for `{name}` (unit structs not needed here)"
            ))
        }
    };
    Ok(Item { name, shape })
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    // Idents render exactly as their text via to_string.
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advance past `#[...]` attributes (incl. doc comments) and a
/// `pub`/`pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // (crate) / (super) / ...
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = ident_at(body, i).ok_or("serde shim: expected field name")?;
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde shim: expected `:` after field `{name}`")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

fn parse_unit_variants(enum_name: &str, body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs_and_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = ident_at(body, i)
            .ok_or_else(|| format!("serde shim: expected variant name in `{enum_name}`"))?;
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            _ => {
                return Err(format!(
                    "serde shim: enum `{enum_name}` has a non-unit variant `{name}`; derive by hand"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}

fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in body {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// ---- code generation ----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => serde::Value::Str(::std::string::String::from({v:?}))"))
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: serde::Deserialize::from_value(serde::obj_field(obj, {f:?})?)?")
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| serde::Error::msg(\
                 concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| serde::Error::msg(\
                 concat!(\"expected array for \", {name:?})))?;\n\
                 if items.len() != {n} {{\n\
                 \treturn Err(serde::Error::msg(concat!(\"wrong arity for \", {name:?})));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "let s = v.as_str().ok_or_else(|| serde::Error::msg(\
                 concat!(\"expected variant string for \", {name:?})))?;\n\
                 match s {{ {}, other => Err(serde::Error::msg(format!(\
                 \"unknown {name} variant `{{other}}`\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         \tfn from_value(v: &serde::Value) -> ::std::result::Result<Self, serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
