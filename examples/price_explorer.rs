//! Explore the synthetic spot market: per-zone price statistics, a
//! Fig. 1-style price history, and the semi-Markov kernel the failure
//! model learns from it.
//!
//! ```text
//! cargo run --release --example price_explorer [seed]
//! ```

use spot_jupiter::obs::Registry;
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};
use spot_jupiter::spot_model::FrozenKernel;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2014);
    let weeks = 8;
    let market = Market::generate(MarketConfig::paper(seed, weeks * 7 * 24 * 60));
    let ty = InstanceType::M1Small;

    // Per-zone event counts go through the obs registry: the same
    // instruments the replay layer uses, queried here from a snapshot.
    let registry = Registry::new();
    println!(
        "== per-zone price statistics ({weeks} weeks, {}) ==",
        ty.api_name()
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>9} {:>8}",
        "zone", "mean", "min", "max", "on-demand", "chg/hour", "spikes"
    );
    for &zone in market.zones() {
        let t = market.trace(zone, ty);
        let od = ty.on_demand_price(zone.region);
        let min = t.segments().map(|s| s.price).min().expect("segments");
        let max = t.segments().map(|s| s.price).max().expect("segments");
        let spikes = t.segments().filter(|s| s.price > od).count();
        let segments = t.segments().count() as u64;
        // A trace with k segments has k-1 completed price transitions,
        // each of which is one observed sojourn sample for the kernel.
        registry
            .counter(&format!("market.price_transitions.{zone}"))
            .add(segments.saturating_sub(1));
        registry
            .counter(&format!("market.sojourn_samples.{zone}"))
            .add(FrozenKernel::from_trace(t).total_transitions());
        registry
            .counter(&format!("market.od_spikes.{zone}"))
            .add(spikes as u64);
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>10} {:>9.2} {:>8}",
            zone.name(),
            t.mean_price(),
            min,
            max,
            od,
            t.changes_per_hour(),
            spikes
        );
    }

    let snap = registry.snapshot();
    println!("\n== per-zone event counts (from the obs registry) ==");
    println!(
        "{:<18} {:>12} {:>15} {:>10}",
        "zone", "transitions", "sojourn samples", "od-spikes"
    );
    for &zone in market.zones() {
        println!(
            "{:<18} {:>12} {:>15} {:>10}",
            zone.name(),
            snap.counter(&format!("market.price_transitions.{zone}"))
                .unwrap_or(0),
            snap.counter(&format!("market.sojourn_samples.{zone}"))
                .unwrap_or(0),
            snap.counter(&format!("market.od_spikes.{zone}")).unwrap_or(0),
        );
    }
    println!(
        "totals: {} transitions, {} sojourn samples across {} zones",
        snap.counter_family("market.price_transitions."),
        snap.counter_family("market.sojourn_samples."),
        market.zones().len()
    );

    // A two-hour window, Fig. 1 style.
    let zone = market.zones()[0];
    let t = market.trace(zone, ty);
    println!("\n== two hours of {} (Fig. 1 style) ==", zone.name());
    let mut last = None;
    for minute in 0..120 {
        let p = t.price_at(minute);
        if last != Some(p) {
            println!("  minute {minute:>3}: {p}");
            last = Some(p);
        }
    }

    // The estimated semi-Markov kernel for that zone.
    let kernel = FrozenKernel::from_trace(t);
    println!("\n== estimated semi-Markov kernel for {} ==", zone.name());
    println!(
        "states: {}   completed transitions: {}",
        kernel.n_states(),
        kernel.total_transitions()
    );
    println!(
        "{:>10} {:>14} {:>12}",
        "price", "mean sojourn", "hazard@1min"
    );
    for (i, price) in kernel.prices().iter().enumerate() {
        println!(
            "{:>10} {:>14.1} {:>12.4}",
            price,
            kernel.mean_sojourn(i as u16),
            kernel.hazard(i as u16, 1)
        );
    }
}
