//! Failure-model benches: what one bidding decision costs the framework.

use bench::bench_trace;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spot_model::{FailureModel, FailureModelConfig, FrozenKernel};
use std::hint::black_box;

fn kernel_estimation(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_estimation");
    for weeks in [1u64, 4, 13] {
        let (_, trace) = bench_trace(weeks);
        g.bench_with_input(BenchmarkId::from_parameter(weeks), &trace, |b, t| {
            b.iter(|| FrozenKernel::from_trace(black_box(t)))
        });
    }
    g.finish();
}

fn interval_forecast(c: &mut Criterion) {
    let (_, trace) = bench_trace(13);
    let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
    let now = trace.horizon() - 1;
    let spot = trace.price_at(now);
    let age = trace.sojourn_age_at(now) as u32;
    let mut g = c.benchmark_group("interval_forecast");
    for hours in [1u32, 6, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(hours), &hours, |b, &h| {
            b.iter(|| model.forecast(black_box(spot), black_box(age), h * 60))
        });
    }
    g.finish();
}

fn min_bid_search(c: &mut Criterion) {
    let (zone, trace) = bench_trace(13);
    let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
    let now = trace.horizon() - 1;
    let spot = trace.price_at(now);
    let age = trace.sojourn_age_at(now) as u32;
    let cap = spot_market::InstanceType::M1Small.on_demand_price(zone.region);
    c.bench_function("min_bid_for_fp_6h", |b| {
        b.iter(|| model.min_bid_for_fp(black_box(0.0103), spot, age, 360, cap))
    });
}

fn absorbing_survival(c: &mut Criterion) {
    let (_, trace) = bench_trace(13);
    let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
    let now = trace.horizon() - 1;
    let spot = trace.price_at(now);
    let age = trace.sojourn_age_at(now) as u32;
    let bid = spot.scale(1.5);
    c.bench_function("absorbing_fp_6h", |b| {
        b.iter(|| model.estimate_fp_absorbing(black_box(bid), spot, age, 360))
    });
}

criterion_group!(
    benches,
    kernel_estimation,
    interval_forecast,
    min_bid_search,
    absorbing_survival
);
criterion_main!(benches);
