//! The load-driven auto-scaler: re-target the fleet's capacity-weighted
//! serving strength at every bidding boundary from a deterministic demand
//! forecast and the availability observed over the interval that just
//! ended.
//!
//! The controller is deliberately asymmetric, the classic production
//! shape: **scale-out is immediate** (forecast demand above the standing
//! target, or an interval that burned through the availability floor,
//! re-targets at once), while **scale-in waits out a hysteresis window**
//! (the demand forecast must sit below the target with full headroom for
//! several consecutive intervals before the target shrinks). That keeps a
//! diurnal trough from oscillating the fleet and keeps an SLO burn from
//! ever waiting on a timer.
//!
//! The target strength feeds
//! [`jupiter::BiddingFramework::set_min_strength`]: the optimizer then
//! picks whichever (zone, type) mix reaches the strength floor cheapest,
//! so scaling decisions and bidding decisions stay in their own layers.
//! Every re-targeting is audited as an
//! [`obs::AuditKind::ScaleDecision`] record and mirrored in the
//! `autoscale.*` counters and series.

use obs::{AuditKind, Obs};

/// Auto-scaler parameters.
#[derive(Clone, Copy, Debug)]
pub struct AutoscaleConfig {
    /// Headroom kept over forecast demand (0.25 ⇒ target strength =
    /// demand × 1.25, rounded up).
    pub headroom: f64,
    /// Availability floor for the interval just ended; an interval below
    /// it triggers an immediate scale-out even when the forecast says the
    /// standing target suffices (the load model underestimated).
    pub availability_floor: f64,
    /// Consecutive intervals the demand forecast must sit below the
    /// standing target (with full headroom) before the target shrinks.
    pub hysteresis_intervals: u32,
    /// The target never drops below this strength floor.
    pub min_strength: u32,
    /// The target never exceeds this strength cap.
    pub max_strength: u32,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            headroom: 0.25,
            availability_floor: 0.99,
            hysteresis_intervals: 3,
            min_strength: 5,
            max_strength: 64,
        }
    }
}

/// What the replay loop observed over the interval that just ended — the
/// controller's feedback signal.
#[derive(Clone, Copy, Debug)]
pub struct ObservedInterval {
    /// Fraction of the interval's minutes a quorum was up.
    pub availability: f64,
    /// Mean capacity-weighted live strength over the interval.
    pub mean_strength: f64,
}

/// One applied re-targeting, kept for the replay's summary accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleAction {
    /// The target grew.
    Out,
    /// The target shrank.
    In,
    /// The target held.
    Hold,
}

/// The auto-scaling controller. Owns a step-function demand series in
/// strength units on the market-minute axis (precomputed by the caller —
/// deterministic by construction) and the standing strength target.
#[derive(Clone, Debug)]
pub struct AutoScaler {
    config: AutoscaleConfig,
    /// `(minute, demand_strength)` steps, sorted by minute; the demand at
    /// minute `m` is the value of the last step at or before `m`.
    demand: Vec<(u64, f64)>,
    target: u32,
    headroom_streak: u32,
    scale_outs: u64,
    scale_ins: u64,
}

impl AutoScaler {
    /// A controller over `demand` steps, starting at the config's
    /// strength floor.
    pub fn new(config: AutoscaleConfig, mut demand: Vec<(u64, f64)>) -> Self {
        demand.sort_by_key(|&(m, _)| m);
        AutoScaler {
            target: config.min_strength,
            config,
            demand,
            headroom_streak: 0,
            scale_outs: 0,
            scale_ins: 0,
        }
    }

    /// The standing strength target.
    pub fn target(&self) -> u32 {
        self.target
    }

    /// Applied scale-out and scale-in counts so far.
    pub fn scale_events(&self) -> (u64, u64) {
        (self.scale_outs, self.scale_ins)
    }

    /// The demand step active at `minute`.
    pub fn demand_at(&self, minute: u64) -> f64 {
        match self.demand.partition_point(|&(m, _)| m <= minute) {
            0 => 0.0,
            i => self.demand[i - 1].1,
        }
    }

    /// Peak demand over `[start, end)` — the step at `start` plus every
    /// step that begins inside the window.
    pub fn peak_demand(&self, start: u64, end: u64) -> f64 {
        let mut peak = self.demand_at(start);
        for &(m, d) in &self.demand {
            if m >= start && m < end && d > peak {
                peak = d;
            }
        }
        peak
    }

    /// Re-target for the interval `[boundary, interval_end)`. `observed`
    /// is the previous interval's feedback (`None` before the first
    /// interval completes). Returns the new target strength and records
    /// the decision into `obs` (audit + `autoscale.*` instruments).
    pub fn plan(
        &mut self,
        boundary: u64,
        interval_end: u64,
        observed: Option<ObservedInterval>,
        obs: &Obs,
    ) -> u32 {
        let cfg = self.config;
        let demand = self.peak_demand(boundary, interval_end);
        let desired = ((demand * (1.0 + cfg.headroom)).ceil() as u32)
            .clamp(cfg.min_strength, cfg.max_strength);
        let availability = observed.map_or(1.0, |o| o.availability);
        let slo_burn = availability < cfg.availability_floor;
        let from = self.target;

        let (action, reason) = if desired > self.target {
            self.target = desired;
            self.headroom_streak = 0;
            (ScaleAction::Out, "demand_exceeds_target")
        } else if slo_burn {
            // The forecast says we have enough, but the interval burned
            // the floor anyway: grow by one headroom notch immediately.
            self.target = ((self.target as f64 * (1.0 + cfg.headroom)).ceil() as u32)
                .max(self.target + 1)
                .min(cfg.max_strength);
            self.headroom_streak = 0;
            (ScaleAction::Out, "slo_burn")
        } else if desired < self.target {
            self.headroom_streak += 1;
            if self.headroom_streak >= cfg.hysteresis_intervals {
                self.target = desired;
                self.headroom_streak = 0;
                (ScaleAction::In, "sustained_headroom")
            } else {
                (ScaleAction::Hold, "within_band")
            }
        } else {
            self.headroom_streak = 0;
            (ScaleAction::Hold, "within_band")
        };
        match action {
            ScaleAction::Out => {
                self.scale_outs += 1;
                obs.counter("autoscale.scale_out").inc();
            }
            ScaleAction::In => {
                self.scale_ins += 1;
                obs.counter("autoscale.scale_in").inc();
            }
            ScaleAction::Hold => obs.counter("autoscale.hold").inc(),
        }
        obs.audit.record(
            boundary,
            AuditKind::ScaleDecision {
                action: match action {
                    ScaleAction::Out => "scale_out",
                    ScaleAction::In => "scale_in",
                    ScaleAction::Hold => "hold",
                }
                .to_owned(),
                reason: reason.to_owned(),
                from_strength: from as u64,
                to_strength: self.target as u64,
                demand_strength: demand,
                observed_availability: availability,
            },
        );
        obs.series
            .record("autoscale.target_strength", boundary, self.target as f64);
        obs.series.record("autoscale.demand", boundary, demand);
        self.target
    }
}

/// Sample a deterministic arrival-rate function into the step demand
/// series an [`AutoScaler`] consumes: one step every `step_minutes` over
/// `[start, end)`, with the rate converted to strength units by
/// `per_strength_throughput` (requests/s one strength unit serves).
pub fn demand_series(
    rate_at_secs: impl Fn(f64) -> f64,
    start: u64,
    end: u64,
    step_minutes: u64,
    per_strength_throughput: f64,
) -> Vec<(u64, f64)> {
    assert!(step_minutes >= 1, "zero-width demand steps");
    assert!(per_strength_throughput > 0.0, "non-positive unit throughput");
    let mut steps = Vec::new();
    let mut minute = start;
    while minute < end {
        let rate = rate_at_secs(minute as f64 * 60.0);
        steps.push((minute, (rate / per_strength_throughput).max(0.0)));
        minute += step_minutes;
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal(minute: u64) -> f64 {
        // Period 1 day, trough 2.0, peak 10.0 strength units.
        let phase = (minute % 1_440) as f64 / 1_440.0 * std::f64::consts::TAU;
        6.0 - 4.0 * phase.cos()
    }

    fn scaler(hysteresis: u32) -> AutoScaler {
        let demand: Vec<(u64, f64)> = (0..2_880).step_by(60).map(|m| (m, diurnal(m))).collect();
        AutoScaler::new(
            AutoscaleConfig {
                hysteresis_intervals: hysteresis,
                min_strength: 3,
                max_strength: 32,
                ..AutoscaleConfig::default()
            },
            demand,
        )
    }

    #[test]
    fn demand_lookup_is_a_step_function() {
        let s = AutoScaler::new(AutoscaleConfig::default(), vec![(10, 2.0), (20, 5.0)]);
        assert_eq!(s.demand_at(0), 0.0);
        assert_eq!(s.demand_at(10), 2.0);
        assert_eq!(s.demand_at(19), 2.0);
        assert_eq!(s.demand_at(25), 5.0);
        assert_eq!(s.peak_demand(0, 30), 5.0);
        assert_eq!(s.peak_demand(10, 20), 2.0);
    }

    #[test]
    fn scales_out_into_the_diurnal_peak() {
        let mut s = scaler(3);
        let obs = Obs::disabled();
        let mut targets = Vec::new();
        for b in (0..1_440).step_by(360) {
            targets.push(s.plan(b, b + 360, None, &obs));
        }
        // The peak sits mid-day: the target must grow strictly into it
        // and cover peak demand with headroom.
        assert!(targets.windows(2).take(2).all(|w| w[1] >= w[0]));
        let peak = s.peak_demand(0, 1_440);
        assert!(
            f64::from(*targets.iter().max().unwrap()) >= peak,
            "peak target {targets:?} below demand {peak}"
        );
    }

    #[test]
    fn scale_in_waits_out_hysteresis() {
        let mut s = scaler(3);
        let obs = Obs::disabled();
        // Spike then flat trough: the spike scales out immediately...
        s.plan(720, 1_080, None, &obs);
        let high = s.target();
        // ...then three low-demand intervals must pass before scale-in.
        let calm = Some(ObservedInterval {
            availability: 1.0,
            mean_strength: high as f64,
        });
        let t1 = s.plan(1_440, 1_500, calm, &obs);
        let t2 = s.plan(1_500, 1_560, calm, &obs);
        assert_eq!(t1, high, "first low interval must hold");
        assert_eq!(t2, high, "second low interval must hold");
        let t3 = s.plan(1_560, 1_620, calm, &obs);
        assert!(t3 < high, "third low interval scales in: {t3} vs {high}");
        assert_eq!(s.scale_events().1, 1);
    }

    #[test]
    fn slo_burn_scales_out_without_demand_growth() {
        let mut s = scaler(3);
        let obs = Obs::disabled();
        let before = s.plan(0, 60, None, &obs);
        let burned = s.plan(
            60,
            120,
            Some(ObservedInterval {
                availability: 0.9,
                mean_strength: before as f64,
            }),
            &obs,
        );
        assert!(burned > before, "{burned} !> {before}");
    }

    #[test]
    fn demand_series_is_deterministic_and_positive() {
        let a = demand_series(|t| 100.0 + (t / 3600.0).sin() * 50.0, 0, 1_440, 30, 25.0);
        let b = demand_series(|t| 100.0 + (t / 3600.0).sin() * 50.0, 0, 1_440, 30, 25.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 48);
        assert!(a.iter().all(|&(_, d)| d > 0.0));
    }
}
