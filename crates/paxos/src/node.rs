//! The actor glue: a simulation node is either a replica or a client.

use simnet::{Actor, Context, NodeId, TimerToken};

use crate::client::ClientState;
use crate::msg::Msg;
use crate::open_loop::OpenLoopClient;
use crate::replica::{Replica, StateMachine};

/// A node in a Paxos simulation: server replica or client.
// Replica state dwarfs client state by design; one enum per simulation
// node is the simnet contract, and nodes are few.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum PaxosNode<SM: StateMachine> {
    /// A replica participating in consensus.
    Server(Replica<SM>),
    /// A closed-loop client.
    Client(ClientState<SM>),
    /// An open-loop workload session.
    OpenLoop(OpenLoopClient<SM>),
}

impl<SM: StateMachine> PaxosNode<SM> {
    /// The replica state, if this is a server.
    pub fn as_server(&self) -> Option<&Replica<SM>> {
        match self {
            PaxosNode::Server(r) => Some(r),
            _ => None,
        }
    }

    /// Mutable replica state, if this is a server.
    pub fn as_server_mut(&mut self) -> Option<&mut Replica<SM>> {
        match self {
            PaxosNode::Server(r) => Some(r),
            _ => None,
        }
    }

    /// The client state, if this is a client.
    pub fn as_client(&self) -> Option<&ClientState<SM>> {
        match self {
            PaxosNode::Client(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable client state, if this is a client.
    pub fn as_client_mut(&mut self) -> Option<&mut ClientState<SM>> {
        match self {
            PaxosNode::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The open-loop session state, if this is one.
    pub fn as_open_loop(&self) -> Option<&OpenLoopClient<SM>> {
        match self {
            PaxosNode::OpenLoop(c) => Some(c),
            _ => None,
        }
    }

    /// Mutable open-loop session state, if this is one.
    pub fn as_open_loop_mut(&mut self) -> Option<&mut OpenLoopClient<SM>> {
        match self {
            PaxosNode::OpenLoop(c) => Some(c),
            _ => None,
        }
    }
}

impl<SM: StateMachine> Actor for PaxosNode<SM> {
    type Msg = Msg<SM>;

    fn on_start(&mut self, ctx: &mut Context<Msg<SM>>) {
        match self {
            PaxosNode::Server(r) => r.on_start(ctx),
            PaxosNode::Client(c) => c.on_start(ctx),
            PaxosNode::OpenLoop(c) => c.on_start(ctx),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Msg<SM>, ctx: &mut Context<Msg<SM>>) {
        match self {
            PaxosNode::Server(r) => r.on_message(from, msg, ctx),
            PaxosNode::Client(c) => c.on_message(from, msg, ctx),
            PaxosNode::OpenLoop(c) => c.on_message(from, msg, ctx),
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<Msg<SM>>) {
        match self {
            PaxosNode::Server(r) => r.on_timer(token, ctx),
            PaxosNode::Client(c) => c.on_timer(token, ctx),
            PaxosNode::OpenLoop(c) => c.on_timer(token, ctx),
        }
    }
}
