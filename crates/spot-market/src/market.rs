//! The market facade: a bundle of price traces plus query and billing
//! helpers, the single object the bidding framework and replay harness talk
//! to.

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::billing::{spot_charge, Termination};
use crate::capacity::{CapacityParams, CapacityProcess, InterruptionNotice, RebalanceSignal};
use crate::gen::{GenParams, TraceGenerator};
use crate::instance::InstanceType;
use crate::money::Price;
use crate::topology::Zone;
use crate::trace::PriceTrace;

/// Configuration of a simulated market.
#[derive(Clone, Debug)]
pub struct MarketConfig {
    /// Seed driving trace generation and startup-delay sampling.
    pub seed: u64,
    /// The zones trading in this market.
    pub zones: Vec<Zone>,
    /// The instance types traded.
    pub types: Vec<InstanceType>,
    /// Trace length in minutes.
    pub horizon_minutes: u64,
    /// Generator parameters (see [`GenParams`]).
    pub gen_params: GenParams,
    /// Per-type overrides of `gen_params` — the heterogeneous-pool axis.
    /// A type listed here gets its own price process (distinct AR
    /// personality); types not listed fall back to `gen_params`. Empty
    /// (the default) reproduces the legacy single-process market
    /// byte-for-byte.
    pub type_params: Vec<(InstanceType, GenParams)>,
    /// Extra startup delay in whole minutes added per type on top of the
    /// zone's sampled delay (bigger images provision slower). Types not
    /// listed get no surcharge; empty preserves legacy delays exactly.
    pub type_startup_extra: Vec<(InstanceType, u64)>,
    /// Parameters of the hidden per-pool capacity processes (the
    /// post-2017 interruption regime, see [`crate::capacity`]). The
    /// processes are drawn from seed streams disjoint from the price
    /// streams, so their presence never perturbs a trace; they only
    /// matter to replays running under `BidEra::CapacityReclaim`.
    pub capacity: CapacityParams,
}

impl MarketConfig {
    /// The paper's experimental setup: 17 availability zones, `m1.small`
    /// and `m3.large`, for the given horizon.
    pub fn paper(seed: u64, horizon_minutes: u64) -> Self {
        MarketConfig {
            seed,
            zones: crate::topology::experiment_zones(),
            types: vec![InstanceType::M1Small, InstanceType::M3Large],
            horizon_minutes,
            gen_params: GenParams::default(),
            type_params: Vec::new(),
            type_startup_extra: Vec::new(),
            capacity: CapacityParams::default(),
        }
    }

    /// A heterogeneous-pool market: the paper's setup plus distinct price
    /// processes per type (larger types are calmer but pricier, with rarer
    /// spikes and longer sojourns) and per-type startup surcharges. This is
    /// the market the `hetero` sweeps and the auto-scaler race on.
    pub fn hetero_paper(seed: u64, horizon_minutes: u64) -> Self {
        let mut cfg = Self::paper(seed, horizon_minutes);
        // m3.large pools: deeper discount at the base, lower spike ceiling
        // and stickier sojourns — the "reliable but expensive per node"
        // regime Qu et al. describe for bigger types.
        let large = GenParams {
            base_fraction: 0.095,
            top_fraction: 0.8,
            spike_prob: 0.000_25,
            mean_sojourn_short: 9.0,
            long_sojourn_prob: 0.2,
            ..GenParams::default()
        };
        // m1.medium pools sit between: slightly jumpier than small.
        let medium = GenParams {
            base_fraction: 0.105,
            spike_prob: 0.000_5,
            step_scale: 1.6,
            ..GenParams::default()
        };
        cfg.type_params = vec![
            (InstanceType::M1Medium, medium),
            (InstanceType::M3Large, large),
        ];
        cfg.type_startup_extra = vec![
            (InstanceType::M1Medium, 1),
            (InstanceType::C3Large, 1),
            (InstanceType::M3Large, 2),
        ];
        cfg
    }

    /// Generator parameters for `ty`: the per-type override if present,
    /// else the shared `gen_params`.
    pub fn params_for(&self, ty: InstanceType) -> &GenParams {
        self.type_params
            .iter()
            .find(|(t, _)| *t == ty)
            .map(|(_, p)| p)
            .unwrap_or(&self.gen_params)
    }

    /// The per-type startup surcharge in minutes (0 if unlisted).
    pub fn startup_extra(&self, ty: InstanceType) -> u64 {
        self.type_startup_extra
            .iter()
            .find(|(t, _)| *t == ty)
            .map_or(0, |(_, m)| *m)
    }
}

/// A complete spot market over a fixed horizon: per-(zone, type) price
/// traces, out-of-bid resolution, billing and startup delays.
#[derive(Clone, Debug)]
pub struct Market {
    config: MarketConfig,
    traces: HashMap<(Zone, InstanceType), PriceTrace>,
    capacity: HashMap<(Zone, InstanceType), CapacityProcess>,
}

/// Materialize every pool's capacity timeline from the config. Seed
/// streams are disjoint from the price streams, so this never changes a
/// trace byte.
fn build_capacity(config: &MarketConfig) -> HashMap<(Zone, InstanceType), CapacityProcess> {
    let mut map = HashMap::new();
    for &ty in &config.types {
        for &zone in &config.zones {
            map.insert(
                (zone, ty),
                CapacityProcess::generate(
                    config.seed,
                    zone,
                    ty,
                    &config.capacity,
                    config.horizon_minutes,
                ),
            );
        }
    }
    map
}

impl Market {
    /// Generate a market from its configuration (deterministic).
    pub fn generate(config: MarketConfig) -> Self {
        let mut traces = HashMap::new();
        for &ty in &config.types {
            let gen = TraceGenerator::with_params(config.seed, config.params_for(ty).clone());
            for &zone in &config.zones {
                traces.insert((zone, ty), gen.generate(zone, ty, config.horizon_minutes));
            }
        }
        let capacity = build_capacity(&config);
        Market {
            config,
            traces,
            capacity,
        }
    }

    /// Build a market from externally supplied traces (e.g. real archived
    /// data); all traces must share the horizon.
    pub fn from_traces(
        config: MarketConfig,
        traces: HashMap<(Zone, InstanceType), PriceTrace>,
    ) -> Self {
        for t in traces.values() {
            assert_eq!(
                t.horizon(),
                config.horizon_minutes,
                "trace horizon mismatch"
            );
        }
        let capacity = build_capacity(&config);
        Market {
            config,
            traces,
            capacity,
        }
    }

    /// The market configuration.
    pub fn config(&self) -> &MarketConfig {
        &self.config
    }

    /// The zones trading in this market.
    pub fn zones(&self) -> &[Zone] {
        &self.config.zones
    }

    /// Trace horizon in minutes.
    pub fn horizon(&self) -> u64 {
        self.config.horizon_minutes
    }

    /// The full trace for `(zone, ty)`.
    pub fn trace(&self, zone: Zone, ty: InstanceType) -> &PriceTrace {
        self.traces
            .get(&(zone, ty))
            .unwrap_or_else(|| panic!("no trace for {} {}", zone.name(), ty))
    }

    /// The spot price of `(zone, ty)` at `minute`.
    pub fn price(&self, zone: Zone, ty: InstanceType, minute: u64) -> Price {
        self.trace(zone, ty).price_at(minute)
    }

    /// Whether a spot request with `bid` would be granted at `minute`
    /// (bid at or above the current price).
    pub fn grants(&self, zone: Zone, ty: InstanceType, bid: Price, minute: u64) -> bool {
        bid >= self.price(zone, ty, minute)
    }

    /// The minute at which an instance launched at `from` with `bid` is
    /// out-of-bid terminated (first minute with `price > bid`), or `None`
    /// if it survives to `until`.
    pub fn out_of_bid_at(
        &self,
        zone: Zone,
        ty: InstanceType,
        bid: Price,
        from: u64,
        until: u64,
    ) -> Option<u64> {
        self.trace(zone, ty)
            .first_minute_above(bid, from)
            .filter(|&m| m < until)
    }

    /// The hidden capacity process of `(zone, ty)` — the post-2017
    /// interruption timeline a `CapacityReclaim`-era replay kills by.
    pub fn capacity(&self, zone: Zone, ty: InstanceType) -> &CapacityProcess {
        self.capacity
            .get(&(zone, ty))
            .unwrap_or_else(|| panic!("no capacity process for {} {}", zone.name(), ty))
    }

    /// The first capacity reclamation of `(zone, ty)` at or after `from`,
    /// strictly before `until` — the capacity-era analogue of
    /// [`Market::out_of_bid_at`] (the bid plays no part).
    pub fn next_reclaim_at(
        &self,
        zone: Zone,
        ty: InstanceType,
        from: u64,
        until: u64,
    ) -> Option<u64> {
        self.capacity(zone, ty).next_reclaim_at(from, until)
    }

    /// Every pool's interruption notices emitted in `[from, until)`,
    /// sorted by emission minute then pool ordinal (deterministic across
    /// platforms and thread counts).
    pub fn notices_in(&self, from: u64, until: u64) -> Vec<InterruptionNotice> {
        let mut out: Vec<InterruptionNotice> = self
            .capacity
            .values()
            .flat_map(|p| p.notices_in(from, until))
            .collect();
        out.sort_by_key(|n| (n.at_minute, n.zone.ordinal(), n.instance_type as u64));
        out
    }

    /// Every pool's rebalance recommendations emitted in `[from, until)`,
    /// sorted like [`Market::notices_in`].
    pub fn rebalances_in(&self, from: u64, until: u64) -> Vec<RebalanceSignal> {
        let mut out: Vec<RebalanceSignal> = self
            .capacity
            .values()
            .flat_map(|p| p.rebalances_in(from, until))
            .collect();
        out.sort_by_key(|s| (s.at_minute, s.zone.ordinal(), s.instance_type as u64));
        out
    }

    /// Billing for a spot instance lifetime (see [`spot_charge`]).
    pub fn charge(
        &self,
        zone: Zone,
        ty: InstanceType,
        launch: u64,
        end: u64,
        termination: Termination,
    ) -> Price {
        spot_charge(self.trace(zone, ty), launch, end, termination)
    }

    /// Sample a startup delay in minutes for launching in `zone`.
    ///
    /// Deterministic in `(market seed, zone, minute)`; ranges follow
    /// [`crate::topology::Region::startup_range_secs`]. Delays are rounded
    /// up to whole minutes (4–12 typically).
    pub fn startup_delay_minutes(&self, zone: Zone, minute: u64) -> u64 {
        let (lo, hi) = zone.region.startup_range_secs();
        let mut seed = self
            .config
            .seed
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(zone.ordinal() as u64)
            .wrapping_mul(0xE703_7ED1_A0B4_28DB)
            .wrapping_add(minute);
        seed ^= seed >> 32;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let secs = rng.gen_range(lo..=hi);
        secs.div_ceil(60)
    }

    /// [`Market::startup_delay_minutes`] plus the per-type surcharge from
    /// [`MarketConfig::startup_extra`]. With no surcharges configured this
    /// is byte-identical to the untyped delay — the legacy single-type
    /// replay fingerprints depend on that.
    pub fn startup_delay_minutes_typed(&self, zone: Zone, ty: InstanceType, minute: u64) -> u64 {
        self.startup_delay_minutes(zone, minute) + self.config.startup_extra(ty)
    }

    /// A new market restricted to `[from, to)` minutes (re-based to 0).
    /// Used to split a long history into training and evaluation spans.
    pub fn window(&self, from: u64, to: u64) -> Market {
        let mut config = self.config.clone();
        config.horizon_minutes = to - from;
        let traces = self
            .traces
            .iter()
            .map(|(k, t)| (*k, t.window(from, to)))
            .collect();
        // Capacity timelines re-derive from minute 0 of the window
        // (windows exist to split histories for model *training*; kills
        // are always resolved against the full market).
        let capacity = build_capacity(&config);
        Market {
            config,
            traces,
            capacity,
        }
    }

    /// Serialize every trace as JSON — the interchange format for feeding
    /// *real* archived spot-price data into the harness (and for saving a
    /// generated market for external analysis).
    pub fn export_traces(&self) -> String {
        let dump: Vec<(Zone, InstanceType, &PriceTrace)> = {
            let mut v: Vec<_> = self
                .traces
                .iter()
                .map(|((z, t), trace)| (*z, *t, trace))
                .collect();
            v.sort_by_key(|(z, t, _)| (z.ordinal(), *t));
            v
        };
        serde_json::to_string(&dump).expect("traces serialize")
    }

    /// Rebuild a market from [`Market::export_traces`] output. The zone
    /// and type lists of `config` are replaced by what the dump contains;
    /// the horizon must match every trace.
    pub fn import_traces(mut config: MarketConfig, json: &str) -> Result<Market, String> {
        let dump: Vec<(Zone, InstanceType, PriceTrace)> =
            serde_json::from_str(json).map_err(|e| e.to_string())?;
        if dump.is_empty() {
            return Err("empty trace dump".into());
        }
        let horizon = dump[0].2.horizon();
        let mut traces = HashMap::new();
        let mut zones = Vec::new();
        let mut types = Vec::new();
        for (zone, ty, trace) in dump {
            if trace.horizon() != horizon {
                return Err(format!(
                    "horizon mismatch: {} vs {horizon}",
                    trace.horizon()
                ));
            }
            if !zones.contains(&zone) {
                zones.push(zone);
            }
            if !types.contains(&ty) {
                types.push(ty);
            }
            traces.insert((zone, ty), trace);
        }
        config.zones = zones;
        config.types = types;
        config.horizon_minutes = horizon;
        let capacity = build_capacity(&config);
        Ok(Market {
            config,
            traces,
            capacity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Region;

    fn small_market() -> Market {
        let mut cfg = MarketConfig::paper(11, 7 * 24 * 60);
        cfg.zones.truncate(4);
        cfg.types = vec![InstanceType::M1Small];
        Market::generate(cfg)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_market();
        let b = small_market();
        for &z in a.zones() {
            assert_eq!(
                a.trace(z, InstanceType::M1Small),
                b.trace(z, InstanceType::M1Small)
            );
        }
    }

    #[test]
    fn grant_semantics() {
        let m = small_market();
        let z = m.zones()[0];
        let p = m.price(z, InstanceType::M1Small, 0);
        assert!(m.grants(z, InstanceType::M1Small, p, 0));
        assert!(!m.grants(z, InstanceType::M1Small, p - Price::TICK, 0));
    }

    #[test]
    fn out_of_bid_is_first_minute_strictly_above() {
        let m = small_market();
        let z = m.zones()[0];
        let t = m.trace(z, InstanceType::M1Small);
        let max = t.max_price_in(0, t.horizon());
        // Bidding the trace max never fails.
        assert_eq!(
            m.out_of_bid_at(z, InstanceType::M1Small, max, 0, t.horizon()),
            None
        );
        // Bidding below the max fails at some minute, and at that minute
        // the price strictly exceeds the bid.
        let bid = max - Price::TICK;
        if let Some(k) = m.out_of_bid_at(z, InstanceType::M1Small, bid, 0, t.horizon()) {
            assert!(t.price_at(k) > bid);
            if k > 0 {
                assert!(t.price_at(k - 1) <= bid || k == 0);
            }
        }
    }

    #[test]
    fn startup_delays_in_range() {
        let m = small_market();
        for &z in m.zones() {
            let (lo, hi) = z.region.startup_range_secs();
            for minute in [0u64, 100, 5_000] {
                let d = m.startup_delay_minutes(z, minute);
                assert!(d >= lo / 60 && d <= hi.div_ceil(60), "{}: {d}", z.name());
            }
        }
    }

    #[test]
    fn windowing_preserves_prices() {
        let m = small_market();
        let w = m.window(1_000, 3_000);
        let z = m.zones()[0];
        for minute in (0..2_000).step_by(97) {
            assert_eq!(
                w.price(z, InstanceType::M1Small, minute),
                m.price(z, InstanceType::M1Small, minute + 1_000)
            );
        }
    }

    #[test]
    fn export_import_round_trip() {
        let m = small_market();
        let json = m.export_traces();
        let cfg = MarketConfig::paper(0, 1); // replaced by the dump
        let re = Market::import_traces(cfg, &json).expect("import");
        assert_eq!(re.horizon(), m.horizon());
        assert_eq!(re.zones(), m.zones());
        for &z in m.zones() {
            assert_eq!(
                re.trace(z, InstanceType::M1Small),
                m.trace(z, InstanceType::M1Small)
            );
        }
        assert!(Market::import_traces(MarketConfig::paper(0, 1), "[]").is_err());
        assert!(Market::import_traces(MarketConfig::paper(0, 1), "nonsense").is_err());
    }

    #[test]
    fn hetero_config_overrides_only_listed_types() {
        let horizon = 7 * 24 * 60;
        let mut hetero = MarketConfig::hetero_paper(11, horizon);
        hetero.zones.truncate(3);
        let mut legacy = MarketConfig::paper(11, horizon);
        legacy.zones.truncate(3);
        let h = Market::generate(hetero);
        let l = Market::generate(legacy);
        for &z in l.zones() {
            // m1.small keeps the shared process: identical traces.
            assert_eq!(
                h.trace(z, InstanceType::M1Small),
                l.trace(z, InstanceType::M1Small)
            );
            // m3.large gets its own personality: the traces diverge.
            assert_ne!(
                h.trace(z, InstanceType::M3Large),
                l.trace(z, InstanceType::M3Large)
            );
            // Startup surcharge applies per type, on top of the zone delay.
            let base = h.startup_delay_minutes(z, 100);
            assert_eq!(
                h.startup_delay_minutes_typed(z, InstanceType::M1Small, 100),
                base
            );
            assert_eq!(
                h.startup_delay_minutes_typed(z, InstanceType::M3Large, 100),
                base + 2
            );
            assert_eq!(
                l.startup_delay_minutes_typed(z, InstanceType::M3Large, 100),
                l.startup_delay_minutes(z, 100),
                "legacy config has no surcharge"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no trace")]
    fn missing_pair_panics() {
        let m = small_market();
        m.price(Zone::new(Region::SaEast1, 1), InstanceType::M1Small, 0);
    }

    #[test]
    fn capacity_processes_never_perturb_prices() {
        // The capacity streams are seeded off disjoint mixers, so a
        // market that carries them prices identically to one whose
        // processes were never queried — and the timelines themselves
        // are seed-deterministic and consistent across market queries.
        let a = small_market();
        let b = small_market();
        let z = a.zones()[0];
        let ty = InstanceType::M1Small;
        let _ = a.notices_in(0, a.horizon());
        let _ = a.next_reclaim_at(z, ty, 0, a.horizon());
        for minute in (0..a.horizon()).step_by(977) {
            assert_eq!(a.price(z, ty, minute), b.price(z, ty, minute));
        }
        assert_eq!(a.capacity(z, ty), b.capacity(z, ty));
    }

    #[test]
    fn market_notices_cover_every_pool_reclaim() {
        let m = small_market();
        let horizon = m.horizon();
        let per_pool: usize = m
            .zones()
            .iter()
            .map(|&z| m.capacity(z, InstanceType::M1Small).reclaims().len())
            .sum();
        assert_eq!(m.notices_in(0, horizon).len(), per_pool);
        // Market-wide notices come out time-ordered.
        let notices = m.notices_in(0, horizon);
        for w in notices.windows(2) {
            assert!(w[0].at_minute <= w[1].at_minute);
        }
    }
}
