//! A miniature of Figures 6/7: replay the lock service over the market
//! under Jupiter and the Extra heuristics, and print the cost/availability
//! trade-off that is the paper's core result.
//!
//! ```text
//! cargo run --release --example strategy_comparison
//! ```

use spot_jupiter::jupiter::{BiddingStrategy, ExtraStrategy, JupiterStrategy, ServiceSpec};
use spot_jupiter::replay::lifecycle::{on_demand_baseline_cost, replay_strategy};
use spot_jupiter::replay::ReplayConfig;
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};

fn main() {
    // 4 training weeks + 2 evaluation weeks, 12 zones.
    let train = 4 * 7 * 24 * 60;
    let eval = 2 * 7 * 24 * 60;
    let mut cfg = MarketConfig::paper(2015, train + eval);
    cfg.zones.truncate(12);
    cfg.types = vec![InstanceType::M1Small];
    let market = Market::generate(cfg);
    let spec = ServiceSpec::lock_service();
    let config = ReplayConfig::new(train, train + eval, 6);

    let strategies: Vec<Box<dyn BiddingStrategy>> = vec![
        Box::new(JupiterStrategy::new()),
        Box::new(ExtraStrategy::new(0, 0.2)),
        Box::new(ExtraStrategy::new(2, 0.2)),
    ];

    println!(
        "lock service, 2 evaluated weeks, 6 h bidding interval, {} zones\n",
        market.zones().len()
    );
    println!(
        "{:<14} {:>10} {:>13} {:>16} {:>7}",
        "strategy", "cost ($)", "availability", "downtime (min)", "kills"
    );
    for strategy in strategies {
        let r = replay_strategy(&market, &spec, strategy, config);
        println!(
            "{:<14} {:>10.2} {:>13.6} {:>16} {:>7}",
            r.strategy,
            r.total_cost.as_dollars(),
            r.availability(),
            r.downtime_minutes(),
            r.total_kills()
        );
    }
    let baseline = on_demand_baseline_cost(&market, &spec, config);
    println!(
        "{:<14} {:>10.2} {:>13.6} {:>16} {:>7}",
        "Baseline",
        baseline.as_dollars(),
        spec.baseline_availability(),
        "-",
        0
    );
    println!(
        "\nThe paper's claim, in miniature: only the failure-model-driven\n\
         bids hold the availability level, and they do so at a fraction of\n\
         the on-demand cost. Extra(0,p) is cheap but fails; Extra(2,p)\n\
         buys availability with two more instances and still falls short."
    );
}
