//! Causal trace assembly and analysis.
//!
//! The tracer records flat [`Event`]s; this module reassembles the ones
//! stamped with a nonzero `trace_id` into per-operation [`CausalTrace`]s
//! (cross-node span trees plus attributed instants), extracts the
//! **critical path** of each committed operation, and exports traces in
//! the Chrome trace event format (loadable in `chrome://tracing` and
//! Perfetto).
//!
//! The critical path of a trace is computed by partitioning the root
//! span's interval by the *deepest active descendant* at every moment:
//! the segments tile `[root.start, root.end]` exactly, so their
//! durations always sum to the observed end-to-end latency — per-hop
//! attribution is exhaustive by construction, never "97% explained".

use std::collections::HashMap;

use crate::json;
use crate::trace::{field_value_to_json, Event, EventKind, FieldValue};

/// One reassembled span of a causal trace (possibly from a remote node).
#[derive(Clone, Debug)]
pub struct CausalSpan {
    /// Span id (unique within one tracer, shared cluster-wide here).
    pub span_id: u64,
    /// Causal parent span; 0 marks the trace root.
    pub parent_span: u64,
    /// Span name from its start edge.
    pub name: String,
    /// Start-edge timestamp.
    pub start_micros: u64,
    /// End-edge timestamp; `None` when the span never closed (the
    /// operation was aborted, or the edge was evicted from the ring).
    pub end_micros: Option<u64>,
    /// Fields from the start edge.
    pub fields: Vec<(String, FieldValue)>,
}

/// A point event attributed to a trace (e.g. a chaos drop annotation).
#[derive(Clone, Debug)]
pub struct CausalInstant {
    /// Event name.
    pub name: String,
    /// Timestamp.
    pub at_micros: u64,
    /// The span this instant blames (0 when unattributed).
    pub parent_span: u64,
    /// Attached fields.
    pub fields: Vec<(String, FieldValue)>,
}

/// All events of one causal trace, reassembled from the flat ring.
#[derive(Clone, Debug)]
pub struct CausalTrace {
    /// The trace id shared by every member event.
    pub trace_id: u64,
    /// Member spans, ordered by start time (ties by span id).
    pub spans: Vec<CausalSpan>,
    /// Member instants, ordered by time.
    pub instants: Vec<CausalInstant>,
}

impl CausalTrace {
    /// The root span: the earliest span with no parent. `None` when the
    /// root was evicted from the ring (every span has a parent).
    pub fn root(&self) -> Option<&CausalSpan> {
        self.spans.iter().find(|s| s.parent_span == 0)
    }

    /// Look up a member span by id.
    pub fn span(&self, id: u64) -> Option<&CausalSpan> {
        self.spans.iter().find(|s| s.span_id == id)
    }

    /// Spans whose declared parent is missing from this trace — the
    /// signature of a dropped message or an evicted edge. Chaos
    /// annotations ([`CausalInstant`]s like `simnet.drop`) explain which.
    pub fn orphans(&self) -> Vec<&CausalSpan> {
        self.spans
            .iter()
            .filter(|s| s.parent_span != 0 && self.span(s.parent_span).is_none())
            .collect()
    }

    /// Whether the trace is complete: a closed root exists and no span
    /// is orphaned or unclosed.
    pub fn is_complete(&self) -> bool {
        self.root().is_some_and(|r| r.end_micros.is_some())
            && self.orphans().is_empty()
            && self.spans.iter().all(|s| s.end_micros.is_some())
    }

    /// End-to-end latency: the root span's duration, when closed.
    pub fn latency_micros(&self) -> Option<u64> {
        let root = self.root()?;
        Some(root.end_micros?.saturating_sub(root.start_micros))
    }
}

/// Group the causally-stamped events (nonzero `trace_id`) into traces,
/// ordered by trace id. Untraced events are ignored.
pub fn assemble_traces(events: &[Event]) -> Vec<CausalTrace> {
    // span_id → index into the trace's spans, per trace.
    let mut traces: HashMap<u64, CausalTrace> = HashMap::new();
    for ev in events {
        if ev.trace_id == 0 {
            continue;
        }
        let trace = traces.entry(ev.trace_id).or_insert_with(|| CausalTrace {
            trace_id: ev.trace_id,
            spans: Vec::new(),
            instants: Vec::new(),
        });
        match (ev.kind, ev.span_id) {
            (EventKind::SpanStart, Some(id)) => trace.spans.push(CausalSpan {
                span_id: id,
                parent_span: ev.parent_span,
                name: ev.name.clone(),
                start_micros: ev.at_micros,
                end_micros: None,
                fields: ev.fields.clone(),
            }),
            (EventKind::SpanEnd, Some(id)) => {
                match trace.spans.iter_mut().find(|s| s.span_id == id) {
                    Some(span) => span.end_micros = Some(ev.at_micros),
                    // Start edge evicted: keep the end as a zero-length
                    // record so the span is not silently lost.
                    None => trace.spans.push(CausalSpan {
                        span_id: id,
                        parent_span: ev.parent_span,
                        name: ev.name.clone(),
                        start_micros: ev.at_micros,
                        end_micros: Some(ev.at_micros),
                        fields: ev.fields.clone(),
                    }),
                }
            }
            _ => trace.instants.push(CausalInstant {
                name: ev.name.clone(),
                at_micros: ev.at_micros,
                parent_span: ev.parent_span,
                fields: ev.fields.clone(),
            }),
        }
    }
    let mut out: Vec<CausalTrace> = traces.into_values().collect();
    for t in &mut out {
        t.spans
            .sort_by_key(|s| (s.start_micros, s.span_id));
        t.instants.sort_by_key(|i| i.at_micros);
    }
    out.sort_by_key(|t| t.trace_id);
    out
}

/// One segment of a trace's critical path: `span_id`/`name` were the
/// deepest active work during `[from_micros, to_micros)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSegment {
    /// The span charged for this segment.
    pub span_id: u64,
    /// Its name (the "hop" label for attribution histograms).
    pub name: String,
    /// Segment start.
    pub from_micros: u64,
    /// Segment end (exclusive).
    pub to_micros: u64,
}

impl PathSegment {
    /// Segment duration.
    pub fn micros(&self) -> u64 {
        self.to_micros.saturating_sub(self.from_micros)
    }
}

/// Extract the critical path of a trace: the root interval partitioned
/// by the deepest span active at each moment (ties broken by later
/// start, then higher span id — the most recently dispatched work).
///
/// Only spans reachable from the root through parent links participate;
/// orphans are excluded so a duplicated message cannot double-charge
/// the path. Segment durations sum exactly to
/// [`CausalTrace::latency_micros`]. Returns an empty path when the
/// trace has no closed root.
pub fn critical_path(trace: &CausalTrace) -> Vec<PathSegment> {
    let Some(root) = trace.root() else {
        return Vec::new();
    };
    let Some(root_end) = root.end_micros else {
        return Vec::new();
    };
    let root_start = root.start_micros;
    if root_end <= root_start {
        return Vec::new();
    }
    // Depth by walking parent links; unreachable spans get None.
    let by_id: HashMap<u64, &CausalSpan> =
        trace.spans.iter().map(|s| (s.span_id, s)).collect();
    let depth_of = |mut id: u64| -> Option<u64> {
        // Bounded walk: a cycle (corrupted trace) terminates as orphan.
        for depth in 0..=trace.spans.len() as u64 {
            let span = by_id.get(&id)?;
            if span.parent_span == 0 {
                return Some(depth);
            }
            id = span.parent_span;
        }
        None
    };
    // Closed, reachable spans clamped into the root window.
    struct Active<'a> {
        span: &'a CausalSpan,
        depth: u64,
        from: u64,
        to: u64,
    }
    let mut active: Vec<Active<'_>> = Vec::new();
    for s in &trace.spans {
        let Some(end) = s.end_micros else { continue };
        let Some(depth) = depth_of(s.span_id) else {
            continue;
        };
        let from = s.start_micros.max(root_start);
        let to = end.min(root_end);
        if to > from || s.span_id == root.span_id {
            active.push(Active {
                span: s,
                depth,
                from,
                to,
            });
        }
    }
    // Elementary intervals from every clamped boundary.
    let mut cuts: Vec<u64> = active
        .iter()
        .flat_map(|a| [a.from, a.to])
        .chain([root_start, root_end])
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut path: Vec<PathSegment> = Vec::new();
    for w in cuts.windows(2) {
        let (from, to) = (w[0], w[1]);
        if to <= from || to <= root_start || from >= root_end {
            continue;
        }
        // Deepest active span over [from, to); the root always covers
        // it, so a winner always exists.
        let winner = active
            .iter()
            .filter(|a| a.from <= from && a.to >= to)
            .max_by_key(|a| (a.depth, a.span.start_micros, a.span.span_id))
            .expect("root span covers its whole interval");
        match path.last_mut() {
            Some(last) if last.span_id == winner.span.span_id && last.to_micros == from => {
                last.to_micros = to;
            }
            _ => path.push(PathSegment {
                span_id: winner.span.span_id,
                name: winner.span.name.clone(),
                from_micros: from,
                to_micros: to,
            }),
        }
    }
    path
}

/// Total critical-path time per span name ("hop"), sorted by name — the
/// input to per-hop latency attribution histograms.
pub fn hop_self_times(path: &[PathSegment]) -> Vec<(String, u64)> {
    let mut sums: Vec<(String, u64)> = Vec::new();
    for seg in path {
        match sums.iter_mut().find(|(n, _)| *n == seg.name) {
            Some((_, t)) => *t += seg.micros(),
            None => sums.push((seg.name.clone(), seg.micros())),
        }
    }
    sums.sort_by(|a, b| a.0.cmp(&b.0));
    sums
}

/// Export events in the Chrome trace event format
/// (`chrome://tracing` / Perfetto): one JSON object with a
/// `traceEvents` array. Causal traces become one "process" each
/// (`pid` = trace id) with every span on its own row (`tid` = span id);
/// closed spans are complete (`ph:"X"`) events, unclosed spans emit a
/// lone begin (`ph:"B"`), and instants map to `ph:"i"`. Untraced span
/// events land under `pid` 0. Timestamps are the tracer clock's
/// microseconds, which Perfetto renders natively.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |entry: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&entry);
    };
    // Pair up span edges (per span id) to emit complete events.
    let mut open: HashMap<u64, &Event> = HashMap::new();
    for ev in events {
        match (ev.kind, ev.span_id) {
            (EventKind::SpanStart, Some(id)) => {
                open.insert(id, ev);
            }
            (EventKind::SpanEnd, Some(id)) => {
                let entry = match open.remove(&id) {
                    Some(start) => chrome_event(
                        &start.name,
                        "X",
                        start.at_micros,
                        Some(ev.at_micros.saturating_sub(start.at_micros)),
                        start.trace_id,
                        id,
                        start.parent_span,
                        &start.fields,
                    ),
                    None => chrome_event(
                        &ev.name,
                        "E",
                        ev.at_micros,
                        None,
                        ev.trace_id,
                        id,
                        ev.parent_span,
                        &[],
                    ),
                };
                push(entry, &mut out);
            }
            _ => {
                let entry = chrome_event(
                    &ev.name,
                    "i",
                    ev.at_micros,
                    None,
                    ev.trace_id,
                    0,
                    ev.parent_span,
                    &ev.fields,
                );
                push(entry, &mut out);
            }
        }
    }
    // Unclosed spans: begin-only edges.
    let mut stragglers: Vec<(&u64, &&Event)> = open.iter().collect();
    stragglers.sort_by_key(|(id, _)| **id);
    for (id, start) in stragglers {
        let entry = chrome_event(
            &start.name,
            "B",
            start.at_micros,
            None,
            start.trace_id,
            *id,
            start.parent_span,
            &start.fields,
        );
        push(entry, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

#[allow(clippy::too_many_arguments)]
fn chrome_event(
    name: &str,
    ph: &str,
    ts: u64,
    dur: Option<u64>,
    trace_id: u64,
    tid: u64,
    parent_span: u64,
    fields: &[(String, FieldValue)],
) -> String {
    let mut e = String::from("{\"name\":");
    json::push_str_lit(&mut e, name);
    e.push_str(&format!(",\"ph\":\"{ph}\",\"ts\":{ts}"));
    if let Some(d) = dur {
        e.push_str(&format!(",\"dur\":{d}"));
    }
    e.push_str(&format!(",\"pid\":{trace_id},\"tid\":{tid}"));
    if ph == "i" {
        // Thread-scoped instant marks render as small arrows.
        e.push_str(",\"s\":\"t\"");
    }
    if parent_span != 0 || !fields.is_empty() {
        e.push_str(",\"args\":{");
        let mut first = true;
        if parent_span != 0 {
            e.push_str(&format!("\"parent_span\":{parent_span}"));
            first = false;
        }
        for (k, v) in fields {
            if !std::mem::take(&mut first) {
                e.push(',');
            }
            json::push_str_lit(&mut e, k);
            e.push(':');
            field_value_to_json(&mut e, v);
        }
        e.push('}');
    }
    e.push('}');
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceContext;
    use crate::{Clock, ManualClock, Tracer};
    use std::sync::Arc;

    fn tracer() -> (Tracer, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        (Tracer::new(clock.clone(), 1024), clock)
    }

    /// Client → propose → quorum_wait shaped trace; critical-path
    /// segments must tile the root exactly.
    #[test]
    fn critical_path_tiles_the_root_interval() {
        let (t, clock) = tracer();
        let trace = TraceContext {
            trace_id: 7,
            span_id: 0,
        };
        clock.set_micros(100);
        let root = t.span_open_causal("client.request", trace, &[]);
        clock.set_micros(150);
        let propose = t.span_open_causal("paxos.propose", root.context(), &[]);
        clock.set_micros(180);
        let wait = t.span_open_causal("paxos.quorum_wait", propose.context(), &[]);
        clock.set_micros(400);
        t.span_close(wait, "paxos.quorum_wait", &[]);
        clock.set_micros(420);
        t.span_close(propose, "paxos.propose", &[]);
        clock.set_micros(500);
        t.span_close(root, "client.request", &[]);

        let traces = assemble_traces(&t.events());
        assert_eq!(traces.len(), 1);
        let ct = &traces[0];
        assert!(ct.is_complete());
        assert_eq!(ct.latency_micros(), Some(400));

        let path = critical_path(ct);
        let total: u64 = path.iter().map(|s| s.micros()).sum();
        assert_eq!(total, 400, "critical path must sum to root latency");
        let names: Vec<&str> = path.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "client.request",
                "paxos.propose",
                "paxos.quorum_wait",
                "paxos.propose",
                "client.request",
            ]
        );
        let hops = hop_self_times(&path);
        assert_eq!(
            hops,
            vec![
                ("client.request".into(), 130),
                ("paxos.propose".into(), 50),
                ("paxos.quorum_wait".into(), 220),
            ]
        );
    }

    #[test]
    fn orphans_are_detected_and_excluded_from_the_path() {
        let (t, clock) = tracer();
        let trace = TraceContext {
            trace_id: 9,
            span_id: 0,
        };
        clock.set_micros(0);
        let root = t.span_open_causal("client.request", trace, &[]);
        // A span claiming a parent that never recorded (dropped msg).
        let ghost_parent = TraceContext {
            trace_id: 9,
            span_id: 999,
        };
        clock.set_micros(10);
        let orphan = t.span_open_causal("paxos.quorum_wait", ghost_parent, &[]);
        clock.set_micros(90);
        t.span_close(orphan, "paxos.quorum_wait", &[]);
        clock.set_micros(100);
        t.span_close(root, "client.request", &[]);

        let traces = assemble_traces(&t.events());
        let ct = &traces[0];
        assert!(!ct.is_complete());
        let orphans = ct.orphans();
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].name, "paxos.quorum_wait");
        // The orphan cannot claim critical-path time.
        let path = critical_path(ct);
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].name, "client.request");
        assert_eq!(path[0].micros(), 100);
    }

    #[test]
    fn unclosed_root_yields_empty_path() {
        let (t, clock) = tracer();
        clock.set_micros(5);
        let _root = t.span_open_causal(
            "client.request",
            TraceContext {
                trace_id: 3,
                span_id: 0,
            },
            &[],
        );
        let traces = assemble_traces(&t.events());
        assert_eq!(traces[0].latency_micros(), None);
        assert!(critical_path(&traces[0]).is_empty());
    }

    #[test]
    fn chrome_export_is_valid_json_with_complete_events() {
        let (t, clock) = tracer();
        let trace = TraceContext {
            trace_id: 4,
            span_id: 0,
        };
        clock.set_micros(0);
        let root = t.span_open_causal("client.request", trace, &[]);
        t.event_causal("simnet.drop", root.context(), &[("to", 2u64.into())]);
        clock.set_micros(50);
        t.span_close(root, "client.request", &[]);
        let json = chrome_trace_json(&t.events());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":50"));
        assert!(json.contains("\"pid\":4"));
        assert!(json.contains("\"ph\":\"i\""));
    }
}
