//! Regions and availability zones (paper Table 1) plus the startup-delay
//! model.
//!
//! The paper's experiments span 17 of the 24 availability zones of early
//! 2015; out-of-bid failures are isolated per availability zone because each
//! zone runs its own spot market, so a geo-replicated service places at most
//! one instance per zone (failure independence).

use std::fmt;

use serde::{Deserialize, Serialize};

/// An Amazon EC2 region (Table 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Region {
    /// US East (Virginia), 4 availability zones.
    UsEast1,
    /// US West (Oregon), 3 availability zones.
    UsWest2,
    /// US West (California), 3 availability zones.
    UsWest1,
    /// EU (Ireland), 3 availability zones.
    EuWest1,
    /// EU (Frankfurt), 2 availability zones.
    EuCentral1,
    /// Asia Pacific (Singapore), 2 availability zones.
    ApSoutheast1,
    /// Asia Pacific (Tokyo), 3 availability zones.
    ApNortheast1,
    /// Asia Pacific (Sydney), 2 availability zones.
    ApSoutheast2,
    /// South America (São Paulo), 2 availability zones.
    SaEast1,
}

impl Region {
    /// All nine regions, in Table 1 order.
    pub const ALL: [Region; 9] = [
        Region::UsEast1,
        Region::UsWest2,
        Region::UsWest1,
        Region::EuWest1,
        Region::EuCentral1,
        Region::ApSoutheast1,
        Region::ApNortheast1,
        Region::ApSoutheast2,
        Region::SaEast1,
    ];

    /// The region's API name, e.g. `us-east-1`.
    pub fn api_name(self) -> &'static str {
        match self {
            Region::UsEast1 => "us-east-1",
            Region::UsWest2 => "us-west-2",
            Region::UsWest1 => "us-west-1",
            Region::EuWest1 => "eu-west-1",
            Region::EuCentral1 => "eu-central-1",
            Region::ApSoutheast1 => "ap-southeast-1",
            Region::ApNortheast1 => "ap-northeast-1",
            Region::ApSoutheast2 => "ap-southeast-2",
            Region::SaEast1 => "sa-east-1",
        }
    }

    /// The human-readable location from Table 1.
    pub fn location(self) -> &'static str {
        match self {
            Region::UsEast1 => "Virginia",
            Region::UsWest2 => "Oregon",
            Region::UsWest1 => "California",
            Region::EuWest1 => "Ireland",
            Region::EuCentral1 => "Frankfurt",
            Region::ApSoutheast1 => "Singapore",
            Region::ApNortheast1 => "Tokyo",
            Region::ApSoutheast2 => "Sydney",
            Region::SaEast1 => "Sao Paulo",
        }
    }

    /// Number of availability zones (Table 1).
    pub fn az_count(self) -> usize {
        match self {
            Region::UsEast1 => 4,
            Region::UsWest2 => 3,
            Region::UsWest1 => 3,
            Region::EuWest1 => 3,
            Region::EuCentral1 => 2,
            Region::ApSoutheast1 => 2,
            Region::ApNortheast1 => 3,
            Region::ApSoutheast2 => 2,
            Region::SaEast1 => 2,
        }
    }

    /// Instance startup-delay range in seconds.
    ///
    /// Mao & Humphrey (cited by the paper as \[25\]) measured 200–700 s VM
    /// startup times that "mainly vary in regions"; we give each region a
    /// stable sub-range of that interval.
    pub fn startup_range_secs(self) -> (u64, u64) {
        match self {
            Region::UsEast1 => (200, 350),
            Region::UsWest2 => (220, 380),
            Region::UsWest1 => (230, 400),
            Region::EuWest1 => (250, 420),
            Region::EuCentral1 => (260, 450),
            Region::ApSoutheast1 => (300, 550),
            Region::ApNortheast1 => (280, 500),
            Region::ApSoutheast2 => (320, 600),
            Region::SaEast1 => (400, 700),
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.api_name())
    }
}

/// A single availability zone: a region plus a zone letter index
/// (0 → `a`, 1 → `b`, …).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Zone {
    /// The region this zone belongs to.
    pub region: Region,
    /// Zone index within the region (0-based; rendered as a letter).
    pub index: u8,
}

impl Zone {
    /// Create a zone, checking the index against Table 1.
    pub fn new(region: Region, index: u8) -> Self {
        assert!(
            (index as usize) < region.az_count(),
            "{} has only {} zones, index {index} invalid",
            region.api_name(),
            region.az_count()
        );
        Zone { region, index }
    }

    /// The zone's API-style name, e.g. `us-east-1a`.
    pub fn name(self) -> String {
        let letter = (b'a' + self.index) as char;
        format!("{}{}", self.region.api_name(), letter)
    }

    /// A stable small integer unique across all zones (for seeding and
    /// dense indexing).
    pub fn ordinal(self) -> usize {
        let mut base = 0usize;
        for r in Region::ALL {
            if r == self.region {
                return base + self.index as usize;
            }
            base += r.az_count();
        }
        unreachable!("region not in Region::ALL")
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// All 24 availability zones of Table 1, in region order.
pub fn all_zones() -> Vec<Zone> {
    Region::ALL
        .into_iter()
        .flat_map(|r| {
            (0..r.az_count() as u8).map(move |i| Zone {
                region: r,
                index: i,
            })
        })
        .collect()
}

/// The 17 availability zones used in the paper's experiments (§5.2).
///
/// The paper does not enumerate which 17 of the 24 zones it used; we take a
/// fixed, documented subset: every zone except the last zone of each
/// multi-zone region beyond the first two per region — concretely, at most
/// two zones per region, plus the extra zones of the large US regions. The
/// exact membership matters far less than the count and the cross-region
/// spread, which both match the paper.
pub fn experiment_zones() -> Vec<Zone> {
    let mut zones = Vec::with_capacity(17);
    for r in Region::ALL {
        // Two zones per region where available, one otherwise: 9 regions
        // yield 17 once single-extra adjustments below are applied.
        let take = match r {
            // 4-zone region contributes 3.
            Region::UsEast1 => 3,
            // 3-zone regions contribute 2.
            Region::UsWest2 | Region::UsWest1 | Region::EuWest1 | Region::ApNortheast1 => 2,
            // 2-zone regions contribute 2 or 1 to land exactly on 17.
            Region::EuCentral1 | Region::ApSoutheast1 | Region::ApSoutheast2 => 2,
            Region::SaEast1 => 0,
        };
        for i in 0..take {
            zones.push(Zone::new(r, i));
        }
    }
    debug_assert_eq!(zones.len(), 17);
    zones
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table1_counts() {
        let counts: Vec<usize> = Region::ALL.iter().map(|r| r.az_count()).collect();
        assert_eq!(counts, vec![4, 3, 3, 3, 2, 2, 3, 2, 2]);
        assert_eq!(all_zones().len(), 24);
    }

    #[test]
    fn zone_names() {
        assert_eq!(Zone::new(Region::UsEast1, 0).name(), "us-east-1a");
        assert_eq!(Zone::new(Region::UsEast1, 3).name(), "us-east-1d");
        assert_eq!(Zone::new(Region::SaEast1, 1).name(), "sa-east-1b");
    }

    #[test]
    #[should_panic(expected = "only")]
    fn invalid_zone_index_panics() {
        Zone::new(Region::EuCentral1, 2);
    }

    #[test]
    fn ordinals_are_dense_and_unique() {
        let zones = all_zones();
        let ords: HashSet<usize> = zones.iter().map(|z| z.ordinal()).collect();
        assert_eq!(ords.len(), 24);
        assert_eq!(*ords.iter().max().unwrap(), 23);
        assert_eq!(Zone::new(Region::UsEast1, 0).ordinal(), 0);
        assert_eq!(Zone::new(Region::UsWest2, 0).ordinal(), 4);
    }

    #[test]
    fn experiment_zone_set() {
        let zones = experiment_zones();
        assert_eq!(zones.len(), 17);
        let unique: HashSet<Zone> = zones.iter().copied().collect();
        assert_eq!(unique.len(), 17);
        // More than 20 AZs exist; 17 spread over at least 8 regions gives
        // plenty of room for 5- or 7-node Paxos groups.
        let regions: HashSet<Region> = zones.iter().map(|z| z.region).collect();
        assert!(regions.len() >= 8);
    }

    #[test]
    fn startup_ranges_within_paper_bounds() {
        for r in Region::ALL {
            let (lo, hi) = r.startup_range_secs();
            assert!(lo >= 200 && hi <= 700 && lo < hi, "{r}: {lo}..{hi}");
        }
    }
}
