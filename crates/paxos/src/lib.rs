//! # paxos — Multi-Paxos state-machine replication over `simnet`
//!
//! The execution substrate for the paper's first evaluation system, a
//! Chubby-like distributed **lock service** (§5.1.1): a replicated state
//! machine driven by a Multi-Paxos protocol with
//!
//! * stable leadership with heartbeats and randomized election timeouts,
//! * classic two-phase (prepare/accept) consensus per log slot with
//!   recovery of previously accepted values on leader change,
//! * in-order application to a pluggable [`StateMachine`],
//! * client request routing, forwarding, retransmission and
//!   exactly-once application (per-client dedup),
//! * log catch-up for lagging or restarted replicas, and
//! * **view change**: membership reconfiguration through committed
//!   `Reconfig` log entries — the mechanism the bidding framework uses to
//!   swap spot instances between bidding intervals (§4: "Adding and
//!   removing a spot instance is supported by the view change of Paxos").
//!
//! The quorum rule is pluggable ([`msg::QuorumRule`]): simple majority for
//! the lock service, or the larger `⌈(n+m)/2⌉` quorums RS-Paxos requires.
//!
//! Everything runs inside a deterministic [`simnet::Simulation`], so whole
//! cluster lifetimes — including the crash schedules the spot market
//! inflicts — replay bit-identically from a seed.

pub mod ballot;
pub mod client;
pub mod harness;
pub mod lock;
pub mod msg;
pub mod node;
pub mod open_loop;
pub mod replica;

pub use ballot::{Ballot, Slot};
pub use client::{ClientState, CompletedOp};
pub use harness::Cluster;
pub use lock::{LockCmd, LockResp, LockService};
pub use msg::{BatchEntry, ClientOp, Command, Msg, QuorumRule};
pub use node::PaxosNode;
pub use open_loop::{OpenLoopClient, OpenOp};
pub use replica::{Replica, ReplicaConfig, StateMachine};
