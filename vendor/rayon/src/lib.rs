//! Offline shim for the `rayon` entry points this workspace uses.
//!
//! `par_iter()` / `into_par_iter()` return the corresponding **sequential**
//! std iterators, so every downstream `Iterator` adapter (`map`,
//! `filter_map`, `collect`, …) works unchanged. The build environment has
//! no crates.io access, and the workspace's hot loops are already
//! vectorized inner numerics; losing data parallelism trades wall-clock
//! for determinism and zero dependencies. The call sites keep their
//! rayon shape so a real rayon can be swapped back in when the registry
//! becomes reachable.

// Vendored API-compat shim: exempt from workspace lint policy.
#![allow(clippy::all)]

pub mod prelude {
    /// `into_par_iter()` for owned collections — sequential fallback.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// The "parallel" iterator (here: the plain sequential one).
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` for borrowed collections — sequential fallback.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowing iterator type.
        type Iter: Iterator;
        /// Iterate by reference.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn ranges_and_arrays_work() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        let arr: Vec<u64> = [1u64, 6, 12].into_par_iter().collect();
        assert_eq!(arr, vec![1, 6, 12]);
    }
}
