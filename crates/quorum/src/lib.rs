//! # quorum — acceptance sets, quorum systems and service availability
//!
//! The availability side of the paper (§2.2, §3, §4.1):
//!
//! * [`acceptance`] — Definition 1's *acceptance sets* (intersecting,
//!   monotone collections of node subsets) as explicit bitmask collections,
//!   with property checks and minimal-quorum extraction.
//! * [`systems`] — the quorum systems used by the services: simple
//!   majority (Paxos), `k`-of-`n` thresholds (the RS-Paxos write quorum,
//!   which needs intersection ≥ m and therefore `k = ⌈(n+m)/2⌉`), and
//!   weighted majorities.
//! * [`availability`] — the non-failure probability of an acceptance set
//!   (Eq. 1), via exact subset enumeration for arbitrary systems and an
//!   O(n²) Poisson-binomial dynamic program for threshold systems.
//! * [`weighted`] — the optimal vote assignment w_i = log₂((1-p_i)/p_i)
//!   (Eq. 11, Spasojevic & Berman; Tong & Kain) with the monarchy/dummy
//!   rules of Amir & Wool, giving the *optimal availability acceptance set*
//!   of Definition 2.
//! * [`solve`] — the inverse problem the bidding algorithm needs
//!   (Fig. 3 line 4): the largest equal per-node failure probability that
//!   still meets a service availability target (`node_failure_pr`).

pub mod acceptance;
pub mod availability;
pub mod rule;
pub mod solve;
pub mod systems;
pub mod weighted;

pub use acceptance::AcceptanceSet;
pub use availability::{acceptance_availability, system_availability, threshold_availability};
pub use rule::QuorumRule;
pub use solve::node_failure_pr;
pub use systems::{MajorityQuorum, QuorumSystem, ThresholdQuorum, WeightedMajority};
pub use weighted::{optimal_system, optimal_weights};
