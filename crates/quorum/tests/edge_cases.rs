//! Edge cases of the inverse-availability solver, the quorum rules, and
//! the weighted-majority construction: the degenerate inputs the bidding
//! loop can feed them (single-node groups, all-equal bids, unreliable or
//! perfect nodes) and the θ(3,5) arithmetic the storage service leans on.

use quorum::availability::threshold_availability;
use quorum::solve::{node_failure_pr, node_failure_pr_majority};
use quorum::systems::ThresholdQuorum;
use quorum::weighted::quantize_weights;
use quorum::{optimal_system, optimal_weights, system_availability, QuorumRule, QuorumSystem};

// ------------------------------------------------------- solve: n = 1

#[test]
fn single_node_inversion_is_exact() {
    // A 1-of-1 system is available iff its node is: availability = 1 − p,
    // so the largest feasible failure probability is exactly 1 − target.
    for target in [0.5, 0.9, 0.999, 0.999999] {
        let p = node_failure_pr(1, 1, target).expect("feasible");
        assert!(
            (p - (1.0 - target)).abs() < 1e-9,
            "target {target}: got {p}, want {}",
            1.0 - target
        );
    }
    let p = node_failure_pr_majority(1, 0.995).expect("feasible");
    assert!((p - 0.005).abs() < 1e-9, "majority of one: {p}");
}

#[test]
fn trivial_and_unreachable_targets() {
    // k = 0: every node may fail, any p works.
    assert_eq!(node_failure_pr(4, 0, 0.9999), Some(1.0));
    // target = 0: vacuous, any p works.
    assert_eq!(node_failure_pr(3, 2, 0.0), Some(1.0));
    // target > 1 is unreachable even with perfect nodes.
    assert_eq!(node_failure_pr(5, 3, 1.0 + 1e-9), None);
    // target = 1 with k = n is only met by perfect nodes.
    let p = node_failure_pr(3, 3, 1.0).expect("perfect nodes qualify");
    assert!(p < 1e-12, "got {p}");
}

#[test]
fn solution_is_tight_at_the_boundary() {
    // Just below the returned p the target holds, just above it fails —
    // the solver really returns the crossing, not merely a feasible point.
    for &(n, k, target) in &[(5usize, 3usize, 0.9999), (7, 4, 0.99999), (1, 1, 0.99)] {
        let p = node_failure_pr(n, k, target).expect("feasible");
        let eps = 1e-9;
        assert!(threshold_availability(&vec![(p - eps).max(0.0); n], k) >= target);
        assert!(threshold_availability(&vec![(p + eps).min(1.0); n], k) < target);
    }
}

// ------------------------------------------------ all-equal bid inputs

#[test]
fn equal_failure_probabilities_reduce_to_simple_majority() {
    // All-equal bids give all-equal failure probabilities; the optimal
    // weighted system then degenerates to one vote each, and its
    // availability matches the plain majority formula.
    let fps = vec![0.03; 5];
    let weights = optimal_weights(&fps);
    assert!(
        weights.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12),
        "equal inputs, unequal weights: {weights:?}"
    );
    let system = optimal_system(&fps);
    let weighted = system_availability(&system, &fps);
    let majority = threshold_availability(&fps, 3);
    assert!(
        (weighted - majority).abs() < 1e-12,
        "weighted {weighted} vs majority {majority}"
    );
}

// ------------------------------------------------- degenerate weights

#[test]
fn hopeless_nodes_elect_a_monarch() {
    // Every node fails more often than not: the best quorum system is a
    // monarchy of the least unreliable node.
    let fps = [0.9, 0.55, 0.7];
    let weights = optimal_weights(&fps);
    assert_eq!(weights, vec![0.0, 1.0, 0.0]);
    let system = optimal_system(&fps);
    let avail = system_availability(&system, &fps);
    assert!(
        (avail - (1.0 - 0.55)).abs() < 1e-12,
        "monarchy availability {avail}"
    );
}

#[test]
fn perfect_node_dominates_quantization() {
    // p = 0 maps to infinite weight; quantization must keep it a monarch
    // rather than overflow or drown it among finite weights.
    let weights = optimal_weights(&[0.0, 0.01, 0.4]);
    assert!(weights[0].is_infinite());
    let q = quantize_weights(&weights);
    let others: u64 = q[1] + q[2];
    assert!(q[0] > others, "perfect node outvotes the rest: {q:?}");
}

#[test]
fn coin_flip_nodes_still_yield_a_working_system() {
    // p = 1/2 everywhere: real weights all quantize to zero; the fallback
    // crowns a single node instead of returning the empty (invalid)
    // weighting.
    let weights = optimal_weights(&[0.5, 0.5, 0.5]);
    let q = quantize_weights(&weights);
    assert_eq!(q.iter().filter(|&&w| w > 0).count(), 1, "one king: {q:?}");
    let fps = [0.5, 0.5, 0.5];
    let avail = system_availability(&optimal_system(&fps), &fps);
    assert!((avail - 0.5).abs() < 1e-12, "monarch of a coin flip: {avail}");
}

// ----------------------------------------------------- θ(3,5) quorums

#[test]
fn rs_paxos_theta_3_5_tolerates_exactly_one_failure() {
    let rule = QuorumRule::RsPaxos { m: 3 };
    // Quorums of ⌈(5+3)/2⌉ = 4: any two intersect in ≥ 3 replicas, enough
    // to reconstruct a 3-data-shard object.
    assert_eq!(rule.quorum_size(5), 4);
    assert_eq!(rule.failure_tolerance(5), 1);
    assert_eq!(rule.min_nodes(), 3);
    // Contrast: majority over 5 tolerates 2 but guarantees only a
    // 1-replica intersection.
    assert_eq!(QuorumRule::Majority.failure_tolerance(5), 2);

    // The threshold system sees the same arithmetic: with one node down a
    // quorum still exists, with two it cannot.
    let sys = ThresholdQuorum::rs_paxos(5, 3);
    assert_eq!(sys.threshold(), 4);
    let one_down = 0b01111u32; // node 4 failed
    let two_down = 0b00111u32; // nodes 3, 4 failed
    assert!(sys.is_quorum(one_down));
    assert!(!sys.is_quorum(two_down));
    // And availability with perfectly reliable nodes minus one is 1.
    let fps = [0.0, 0.0, 0.0, 0.0, 1.0];
    assert!((system_availability(&sys, &fps) - 1.0).abs() < 1e-12);
}
