//! Drivers for every table and figure in the paper's evaluation (§5),
//! plus the ablations DESIGN.md calls out. Each driver returns structured
//! rows; the `repro` binary renders them as the paper's series.

use jupiter::{ExtraStrategy, JupiterStrategy, ServiceSpec};
use rayon::prelude::*;
use spot_market::{
    BidEra, InstanceType, Market, MarketConfig, Price, PriceTrace, TraceGenerator, Zone,
};
use spot_model::{FailureModel, FailureModelConfig};

use crate::repair::{RepairConfig, RepairPolicy};
use crate::scenario::{Scenario, SweepSpec};

/// Experiment scale: the paper's full runs or a quick smoke-scale variant
/// for tests and debug builds.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Training history length in weeks (the paper trains ≈ 3 months).
    pub train_weeks: u64,
    /// Evaluation span in weeks (the paper replays 11 weeks).
    pub eval_weeks: u64,
    /// Availability zones (the paper uses 17).
    pub zones: usize,
    /// Bidding intervals (hours) to sweep (the paper: 1, 3, 6, 9, 12).
    pub intervals: Vec<u64>,
    /// Master seed for trace generation.
    pub seed: u64,
}

impl Scale {
    /// The paper's scale: 13 training weeks, 11 evaluation weeks, 17
    /// zones, intervals {1, 3, 6, 9, 12} h.
    pub fn paper(seed: u64) -> Self {
        Scale {
            train_weeks: 13,
            eval_weeks: 11,
            zones: 17,
            intervals: vec![1, 3, 6, 9, 12],
            seed,
        }
    }

    /// A smoke-test scale that preserves the experiment structure.
    pub fn quick(seed: u64) -> Self {
        Scale {
            train_weeks: 2,
            eval_weeks: 1,
            zones: 8,
            intervals: vec![6],
            seed,
        }
    }

    /// Training prefix length in minutes.
    pub fn train_minutes(&self) -> u64 {
        self.train_weeks * 7 * 24 * 60
    }

    /// Full market horizon in minutes.
    pub fn horizon_minutes(&self) -> u64 {
        (self.train_weeks + self.eval_weeks) * 7 * 24 * 60
    }

    /// Build the market for one instance type at this scale.
    pub fn market(&self, ty: InstanceType) -> Market {
        let mut cfg = MarketConfig::paper(self.seed, self.horizon_minutes());
        cfg.zones.truncate(self.zones);
        cfg.types = vec![ty];
        Market::generate(cfg)
    }

    /// A [`Scenario`] over this scale's market: train on the prefix,
    /// evaluate the remaining span.
    pub fn scenario(&self, ty: InstanceType) -> Scenario {
        Scenario::new(self.market(ty), self.train_minutes(), self.horizon_minutes())
    }
}

// ---------------------------------------------------------------- Fig. 1

/// A spot-price history sample: the series behind Fig. 1 (two hours of
/// `us-east-1a` `m1.small` prices).
pub fn fig1_series(seed: u64) -> Vec<(u64, Price)> {
    let gen = TraceGenerator::new(seed);
    let zone = spot_market::topology::all_zones()[0];
    let trace = gen.generate(zone, InstanceType::M1Small, 120);
    (0..120).map(|m| (m, trace.price_at(m))).collect()
}

// --------------------------------------------------------------- Table 1

/// Table 1 rows: region, location, availability-zone count.
pub fn table1() -> Vec<(&'static str, &'static str, usize)> {
    spot_market::topology::Region::ALL
        .into_iter()
        .map(|r| (r.api_name(), r.location(), r.az_count()))
        .collect()
}

// ---------------------------------------------------------------- Fig. 4

/// One bar of the Fig. 4 micro-benchmark.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Availability zone.
    pub zone: Zone,
    /// Instance type.
    pub instance_type: InstanceType,
    /// The bid the model chose for ≤ 0.01 monthly out-of-bid probability.
    pub bid: Option<Price>,
    /// The estimated out-of-bid probability at that bid.
    pub estimated: f64,
    /// The measured out-of-bid fraction over the evaluation month.
    pub measured: f64,
}

/// Fig. 4: train the failure model on ~3 months of history, choose the
/// minimal bid with estimated monthly out-of-bid probability ≤ 0.01, then
/// measure the realized out-of-bid fraction over the held-out month.
pub fn fig4(scale: &Scale) -> Vec<Fig4Row> {
    const TARGET: f64 = 0.01;
    let month = 30 * 24 * 60;
    let mut jobs = Vec::new();
    for ty in [InstanceType::M1Small, InstanceType::M3Large] {
        let gen = TraceGenerator::new(scale.seed);
        for zone in spot_market::topology::experiment_zones()
            .into_iter()
            .take(5)
        {
            jobs.push((gen.clone(), zone, ty));
        }
    }
    jobs.into_par_iter()
        .map(|(gen, zone, ty)| {
            let total = scale.train_minutes() + month;
            let trace = gen.generate(zone, ty, total);
            let train = trace.window(0, scale.train_minutes());
            let model = FailureModel::from_trace(&train, FailureModelConfig::default());
            let spot = train.price_at(scale.train_minutes() - 1);
            let age = train.sojourn_age_at(scale.train_minutes() - 1) as u32;
            // Out-of-bid only (Fig. 4's y-axis excludes the FP⁰ floor).
            let forecast = model.forecast(spot, age, month as u32);
            let cap = ty.on_demand_price(zone.region);
            let (bid, estimated) = match &forecast {
                None => (None, 1.0),
                Some(f) => {
                    let bid = std::iter::once(spot)
                        .chain(f.levels().iter().copied())
                        .filter(|&b| b >= spot && b < cap)
                        .find(|&b| f.out_of_bid_fraction(b) <= TARGET);
                    let est = bid.map(|b| f.out_of_bid_fraction(b)).unwrap_or(1.0);
                    (bid, est)
                }
            };
            let measured = match bid {
                None => 1.0,
                Some(b) => trace.fraction_above(b, scale.train_minutes(), total),
            };
            Fig4Row {
                zone,
                instance_type: ty,
                bid,
                estimated,
                measured,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 5

/// One bar of Fig. 5 (one-week feasibility run).
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Which service.
    pub service: String,
    /// Strategy name (or "Baseline").
    pub strategy: String,
    /// One-week cost.
    pub cost: Price,
    /// Measured availability over the week.
    pub availability: f64,
}

/// Fig. 5: a one-week run of the lock service and the storage service
/// under Jupiter and Extra(0, 0.1), against the on-demand baseline,
/// bidding hourly.
pub fn fig5(scale: &Scale) -> Vec<Fig5Row> {
    let week = 7 * 24 * 60;
    let eval_start = scale.train_minutes();
    let specs = [ServiceSpec::lock_service(), ServiceSpec::storage_service()];
    let mut rows = Vec::new();
    for spec in specs {
        // Fig. 5 runs a single held-out week, so the market horizon stops
        // there rather than at the scale's full evaluation span.
        let market = {
            let mut cfg = MarketConfig::paper(scale.seed, eval_start + week);
            cfg.zones.truncate(scale.zones);
            cfg.types = vec![spec.instance_type];
            Market::generate(cfg)
        };
        let scenario = Scenario::new(market, eval_start, eval_start + week);
        let sweep = SweepSpec::new(spec.clone())
            .strategy(|_| Box::new(JupiterStrategy::new()))
            .strategy(|_| Box::new(ExtraStrategy::new(0, 0.1)))
            .intervals(vec![1]);
        for cell in scenario.run(&sweep) {
            rows.push(Fig5Row {
                service: spec.name.clone(),
                strategy: cell.result.strategy.clone(),
                cost: cell.result.total_cost,
                availability: cell.result.availability(),
            });
        }
        rows.push(Fig5Row {
            service: spec.name.clone(),
            strategy: "Baseline".into(),
            cost: scenario.baseline_cost(&spec),
            availability: spec.baseline_availability(),
        });
    }
    rows
}

// ------------------------------------------------------- Figs. 6/7, 8/9

/// One point of the cost/availability sweeps (Figs. 6–9).
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Bidding interval in hours (0 marks the interval-free baseline).
    pub interval_hours: u64,
    /// Strategy name.
    pub strategy: String,
    /// Total cost over the evaluation span.
    pub cost: Price,
    /// Measured availability.
    pub availability: f64,
    /// Out-of-bid kills.
    pub kills: usize,
}

impl SweepRow {
    fn from_cell(cell: &crate::scenario::CellOutcome) -> SweepRow {
        SweepRow {
            interval_hours: cell.interval_hours,
            strategy: cell.result.strategy.clone(),
            cost: cell.result.total_cost,
            availability: cell.result.availability(),
            kills: cell.result.total_kills(),
        }
    }
}

fn sweep(spec: &ServiceSpec, scale: &Scale) -> Vec<SweepRow> {
    let scenario = scale.scenario(spec.instance_type);
    let sweep = SweepSpec::new(spec.clone())
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .strategy(|_| Box::new(ExtraStrategy::new(0, 0.2)))
        .strategy(|_| Box::new(ExtraStrategy::new(2, 0.2)))
        .intervals(scale.intervals.clone());
    let mut rows: Vec<SweepRow> = scenario
        .run(&sweep)
        .iter()
        .map(SweepRow::from_cell)
        .collect();
    rows.push(SweepRow {
        interval_hours: 0,
        strategy: "Baseline".into(),
        cost: scenario.baseline_cost(spec),
        availability: spec.baseline_availability(),
        kills: 0,
    });
    rows.sort_by(|a, b| (a.interval_hours, &a.strategy).cmp(&(b.interval_hours, &b.strategy)));
    rows
}

/// Figs. 6 & 7: lock-service cost and availability across bidding
/// intervals and strategies over the evaluation span.
pub fn lock_sweep(scale: &Scale) -> Vec<SweepRow> {
    sweep(&ServiceSpec::lock_service(), scale)
}

/// Figs. 8 & 9: the same sweep for the erasure-coded storage service.
pub fn storage_sweep(scale: &Scale) -> Vec<SweepRow> {
    sweep(&ServiceSpec::storage_service(), scale)
}

/// The headline numbers: best-interval Jupiter cost reduction vs the
/// on-demand baseline (the paper reports 81.23 % and 85.32 %).
#[derive(Clone, Debug)]
pub struct Headline {
    /// Lock-service cost reduction in percent.
    pub lock_reduction_pct: f64,
    /// Storage-service cost reduction in percent.
    pub storage_reduction_pct: f64,
    /// The best interval for the lock service.
    pub lock_best_interval: u64,
    /// The best interval for the storage service.
    pub storage_best_interval: u64,
    /// Whether the lock service's best interval actually held the
    /// baseline availability level (false = the reported number is the
    /// most-available fallback, not an SLA-matched saving).
    pub lock_met_sla: bool,
    /// The same flag for the storage service.
    pub storage_met_sla: bool,
}

/// Compute the headline savings from sweep rows: the cheapest Jupiter
/// interval **among those that hold the baseline availability level**
/// (the paper's claim is cost reduction *at matched availability*; an
/// interval that dips below the target is disqualified even if cheaper).
pub fn headline(lock: &[SweepRow], storage: &[SweepRow]) -> Headline {
    fn best(rows: &[SweepRow]) -> (u64, f64, bool) {
        let baseline_row = rows
            .iter()
            .find(|r| r.strategy == "Baseline")
            .expect("baseline present");
        let baseline = baseline_row.cost.as_dollars();
        let target = baseline_row.availability;
        let qualifying = rows
            .iter()
            .filter(|r| r.strategy == "Jupiter" && r.availability >= target)
            .min_by(|a, b| a.cost.cmp(&b.cost));
        let met_sla = qualifying.is_some();
        // Fall back to the most-available interval when none qualifies —
        // flagged, so the caller never mistakes it for an SLA-matched
        // saving.
        let best = qualifying.unwrap_or_else(|| {
            rows.iter()
                .filter(|r| r.strategy == "Jupiter")
                .max_by(|a, b| {
                    a.availability
                        .partial_cmp(&b.availability)
                        .expect("finite availability")
                })
                .expect("jupiter rows present")
        });
        (
            best.interval_hours,
            100.0 * (1.0 - best.cost.as_dollars() / baseline),
            met_sla,
        )
    }
    let (lock_best_interval, lock_reduction_pct, lock_met_sla) = best(lock);
    let (storage_best_interval, storage_reduction_pct, storage_met_sla) = best(storage);
    Headline {
        lock_reduction_pct,
        storage_reduction_pct,
        lock_best_interval,
        storage_best_interval,
        lock_met_sla,
        storage_met_sla,
    }
}

// ----------------------------------------------------- Repair-policy sweep

/// One row of the repair-policy sweep: a (strategy, interval) cell
/// replayed under one [`RepairPolicy`].
#[derive(Clone, Debug)]
pub struct RepairRow {
    /// Bidding interval in hours.
    pub interval_hours: u64,
    /// Strategy name.
    pub strategy: String,
    /// The repair policy this row replayed under.
    pub policy: RepairPolicy,
    /// Total cost (spot plus on-demand fallback charges).
    pub cost: Price,
    /// The on-demand share of that cost (zero unless the policy is
    /// hybrid and repair escalated).
    pub on_demand_cost: Price,
    /// Measured quorum availability.
    pub availability: f64,
    /// Minutes spent below the decided group strength.
    pub degraded_minutes: u64,
    /// Out-of-bid kills (boundary bids and repair rebids alike).
    pub kills: usize,
}

/// The repair-policy sweep plus the on-demand baseline it is bounded by.
#[derive(Clone, Debug)]
pub struct RepairSweep {
    /// One row per (interval, strategy, policy) cell, grid order.
    pub rows: Vec<RepairRow>,
    /// What the service would cost held on-demand for the whole window —
    /// every repairing cell must stay below this.
    pub baseline_cost: Price,
}

/// The repair-controller experiment: the lock service under Jupiter and
/// the kill-prone Extra(0, 0.2) heuristic, each interval replayed with
/// repair off, spot-only reactive rebids, and the hybrid on-demand
/// fallback. Boundary decisions are frozen across policies, so any
/// availability difference is the repair controller's doing.
pub fn repair_sweep(scale: &Scale) -> RepairSweep {
    let spec = ServiceSpec::lock_service();
    let scenario = scale.scenario(spec.instance_type);
    let sweep = SweepSpec::new(spec.clone())
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .strategy(|_| Box::new(ExtraStrategy::new(0, 0.2)))
        .intervals(scale.intervals.clone())
        .repairs(vec![
            RepairConfig::off(),
            RepairConfig::reactive(),
            RepairConfig::hybrid(),
        ]);
    let rows = scenario
        .run(&sweep)
        .iter()
        .map(|cell| RepairRow {
            interval_hours: cell.interval_hours,
            strategy: cell.result.strategy.clone(),
            policy: cell.repair,
            cost: cell.result.total_cost,
            on_demand_cost: cell.result.on_demand_cost,
            availability: cell.result.availability(),
            degraded_minutes: cell.result.degraded_minutes,
            kills: cell.result.total_kills(),
        })
        .collect();
    RepairSweep {
        rows,
        baseline_cost: scenario.baseline_cost(&spec),
    }
}

// ------------------------------------------------------------- Era sweep

/// One row of the interruption-era sweep: a (strategy, era, repair
/// policy) cell at a fixed interval.
#[derive(Clone, Debug)]
pub struct EraRow {
    /// The interruption era the cell replayed under.
    pub era: BidEra,
    /// The repair policy (reactive rebids vs proactive migration).
    pub policy: RepairPolicy,
    /// Strategy name.
    pub strategy: String,
    /// Total billed cost.
    pub cost: Price,
    /// Measured quorum availability.
    pub availability: f64,
    /// Minutes below the decided group strength.
    pub degraded_minutes: u64,
    /// Instance deaths (out-of-bid kills or capacity reclamations).
    pub kills: usize,
    /// Successful pre-deadline drains (capacity era, Migrate only).
    pub drains: u64,
    /// Migrations whose replacement booted after the deadline.
    pub late_drains: u64,
}

/// The era sweep plus its framing constants.
#[derive(Clone, Debug)]
pub struct EraSweep {
    /// One row per (strategy, policy, era) cell, grid order.
    pub rows: Vec<EraRow>,
    /// The on-demand baseline cost bounding every cell.
    pub baseline_cost: Price,
    /// The fixed bidding interval used.
    pub interval_hours: u64,
}

/// The capacity-era experiment: the erasure-coded storage service (RS-Paxos
/// θ(3,5) tolerates a single failure, so repair latency shows up directly
/// as unavailability) under Jupiter and the feedback controller, replayed
/// under both interruption eras with reactive repair racing proactive
/// migration. Under the bidding era there are no notices, so the Migrate
/// rows replay exactly as Reactive — the capacity-era delta between the
/// two policies is the advance notice's worth.
pub fn era_sweep(scale: &Scale) -> EraSweep {
    use jupiter::FeedbackStrategy;
    use obs::AuditKind;
    const INTERVAL: u64 = 3;
    let spec = ServiceSpec::storage_service();
    let scenario = scale
        .scenario(spec.instance_type)
        .with_obs(obs::Obs::simulated().0);
    let sweep = SweepSpec::new(spec.clone())
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .strategy(|_| Box::new(FeedbackStrategy::new()))
        .intervals(vec![INTERVAL])
        .repairs(vec![RepairConfig::reactive(), RepairConfig::migrate()])
        .eras(vec![BidEra::Bidding, BidEra::CapacityReclaim]);
    let rows = scenario
        .run(&sweep)
        .iter()
        .map(|cell| {
            let count = |wanted: &str| {
                cell.result
                    .audit
                    .iter()
                    .filter(|r| {
                        matches!(&r.kind, AuditKind::Migration { action, .. } if action == wanted)
                    })
                    .count() as u64
            };
            EraRow {
                era: cell.era,
                policy: cell.repair,
                strategy: cell.result.strategy.clone(),
                cost: cell.result.total_cost,
                availability: cell.result.availability(),
                degraded_minutes: cell.result.degraded_minutes,
                kills: cell.result.total_kills(),
                drains: count("drained"),
                late_drains: count("late_drain"),
            }
        })
        .collect();
    EraSweep {
        rows,
        baseline_cost: scenario.baseline_cost(&spec),
        interval_hours: INTERVAL,
    }
}

// -------------------------------------------------------------- Ablations

/// Estimator-semantics ablation row: the paper's expectation-based
/// interval failure probability (Eq. 5) versus the absorbing (survival)
/// variant, at matched bids.
#[derive(Clone, Debug)]
pub struct EstimatorRow {
    /// Zone examined.
    pub zone: Zone,
    /// The bid both estimators price.
    pub bid: Price,
    /// Eq. 5 expectation estimate.
    pub expectation_fp: f64,
    /// Absorbing (kill-probability) estimate.
    pub absorbing_fp: f64,
    /// Realized: was the instance killed within the horizon?
    pub killed: bool,
    /// Realized out-of-bid time fraction.
    pub realized_fraction: f64,
}

/// Ablation: expectation vs absorbing failure estimates against realized
/// outcomes, sampled at weekly decision points across the evaluation
/// span.
pub fn ablation_estimator(scale: &Scale) -> Vec<EstimatorRow> {
    let ty = InstanceType::M1Small;
    let market = scale.market(ty);
    let train_end = scale.train_minutes();
    let horizon: u32 = 360;
    let mut rows = Vec::new();
    for &zone in market.zones().iter().take(6) {
        let trace = market.trace(zone, ty);
        let model =
            FailureModel::from_trace(&trace.window(0, train_end), FailureModelConfig::default());
        let mut start = train_end;
        while start + horizon as u64 <= scale.horizon_minutes() {
            let spot = trace.price_at(start);
            let age = trace.sojourn_age_at(start) as u32;
            // A mid-risk bid: two levels above spot when possible.
            let Some(f) = model.forecast(spot, age, horizon) else {
                start += 7 * 24 * 60;
                continue;
            };
            let bid = f
                .levels()
                .iter()
                .copied()
                .filter(|&b| b > spot)
                .nth(1)
                .unwrap_or(spot);
            let expectation_fp = model.fp_from_forecast(&f, bid, spot);
            let absorbing_fp = model.estimate_fp_absorbing(bid, spot, age, horizon);
            let end = start + horizon as u64;
            let killed = trace
                .first_minute_above(bid, start)
                .map(|k| k < end)
                .unwrap_or(false);
            let realized_fraction = trace.fraction_above(bid, start, end);
            rows.push(EstimatorRow {
                zone,
                bid,
                expectation_fp,
                absorbing_fp,
                killed,
                realized_fraction,
            });
            start += 7 * 24 * 60; // one sample per week per zone
        }
    }
    rows
}

/// Greedy-vs-exact ablation row.
#[derive(Clone, Debug)]
pub struct OptimalityRow {
    /// Sampled decision minute.
    pub minute: u64,
    /// Jupiter's cost upper bound.
    pub greedy_cost: Price,
    /// The exact optimum's cost upper bound.
    pub exact_cost: Price,
}

/// Ablation: Jupiter's greedy cost vs the exact NLP optimum on small
/// (7-zone) instances sampled weekly across the evaluation span.
pub fn ablation_greedy_vs_exact(scale: &Scale) -> Vec<OptimalityRow> {
    use jupiter::framework::MarketSnapshot;
    let ty = InstanceType::M1Small;
    let mut cfg = MarketConfig::paper(scale.seed, scale.horizon_minutes());
    // Seven zones: enough slack for the greedy to find 5-7 feasible
    // nodes, while the exact search space stays tractable with a thinned
    // per-zone bid grid.
    cfg.zones.truncate(7);
    cfg.types = vec![ty];
    let market = Market::generate(cfg);
    let train_end = scale.train_minutes();
    let spec = ServiceSpec::lock_service();

    let mut greedy_fw = jupiter::BiddingFramework::new(spec.clone(), JupiterStrategy::new());
    let mut exact_fw = jupiter::BiddingFramework::new(
        spec.clone(),
        jupiter::ExhaustiveSolver {
            max_zones: 8,
            max_levels_per_zone: 8,
        },
    );
    // Both solvers rank the same market, so they share one fit per zone
    // through a store rather than training twice.
    let store = jupiter::ModelStore::new();
    for &z in market.zones() {
        let key = jupiter::ModelKey {
            zone: z,
            instance_type: ty,
            trained_until: train_end,
        };
        let kernel = store.get_or_fit(key, || {
            spot_model::FrozenKernel::from_trace(&market.trace(z, ty).window(0, train_end))
        });
        greedy_fw.install_kernel(z, ty, std::sync::Arc::clone(&kernel));
        exact_fw.install_kernel(z, ty, kernel);
    }

    let mut rows = Vec::new();
    let mut minute = train_end;
    while minute < scale.horizon_minutes() {
        let snapshots: Vec<MarketSnapshot> = market
            .zones()
            .iter()
            .map(|&z| {
                let t = market.trace(z, ty);
                MarketSnapshot {
                    zone: z,
                    instance_type: ty,
                    spot_price: t.price_at(minute),
                    sojourn_age: t.sojourn_age_at(minute) as u32,
                }
            })
            .collect();
        let greedy = greedy_fw.decide(&snapshots, 360);
        let exact = exact_fw.decide(&snapshots, 360);
        if greedy.n() > 0 && exact.n() > 0 {
            rows.push(OptimalityRow {
                minute,
                greedy_cost: greedy.cost_upper_bound(),
                exact_cost: exact.cost_upper_bound(),
            });
        }
        minute += 7 * 24 * 60;
    }
    rows
}

/// Adaptive-interval ablation row (§5.5's proposed extension).
#[derive(Clone, Debug)]
pub struct AdaptiveRow {
    /// Strategy label (fixed interval or "\[adaptive\]").
    pub strategy: String,
    /// Total cost.
    pub cost: Price,
    /// Measured availability.
    pub availability: f64,
    /// Mean realized interval length in hours.
    pub mean_interval_hours: f64,
}

/// Ablation: Jupiter under fixed 1 h / 6 h / 12 h intervals versus the
/// adaptive schedule that tracks the price-change rate.
pub fn ablation_adaptive(scale: &Scale) -> Vec<AdaptiveRow> {
    use crate::adaptive::AdaptiveConfig;
    let spec = ServiceSpec::lock_service();
    let scenario = scale.scenario(spec.instance_type);
    let sweep = SweepSpec::new(spec.clone())
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .intervals(vec![1, 6, 12]);
    let mut rows: Vec<AdaptiveRow> = scenario
        .run(&sweep)
        .iter()
        .map(|cell| AdaptiveRow {
            strategy: format!("Jupiter fixed {}h", cell.interval_hours),
            cost: cell.result.total_cost,
            availability: cell.result.availability(),
            mean_interval_hours: cell.interval_hours as f64,
        })
        .collect();

    // The adaptive run reuses the fixed cells' kernels from the store.
    let r = scenario.run_adaptive(&spec, JupiterStrategy::new(), AdaptiveConfig::default());
    let mean_interval = if r.intervals.len() > 1 {
        let total: u64 = r
            .intervals
            .windows(2)
            .map(|w| w[1].start - w[0].start)
            .sum();
        total as f64 / 60.0 / (r.intervals.len() - 1) as f64
    } else {
        0.0
    };
    rows.push(AdaptiveRow {
        strategy: r.strategy.clone(),
        cost: r.total_cost,
        availability: r.availability(),
        mean_interval_hours: mean_interval,
    });
    rows
}

/// Estimator-variant replay: the paper's expectation-based Jupiter versus
/// the absorbing-estimator variant, at the best fixed interval.
pub fn ablation_estimator_replay(scale: &Scale) -> Vec<SweepRow> {
    let spec = ServiceSpec::lock_service();
    let scenario = scale.scenario(spec.instance_type);
    let sweep = SweepSpec::new(spec)
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .strategy(|_| Box::new(JupiterStrategy::absorbing()))
        .intervals(vec![6]);
    scenario.run(&sweep).iter().map(SweepRow::from_cell).collect()
}

/// Weighted-voting vs simple-majority availability at heterogeneous
/// failure probabilities (the §4.1 design-choice ablation — pure
/// analysis, no replay).
#[derive(Clone, Debug)]
pub struct VotingRow {
    /// The per-node failure probabilities examined.
    pub profile: Vec<f64>,
    /// Simple-majority availability.
    pub majority: f64,
    /// Eq. 11 weighted-voting availability (quantized votes).
    pub weighted: f64,
}

/// The §4.1 ablation across representative failure-probability profiles.
pub fn ablation_weighted_voting() -> Vec<VotingRow> {
    use quorum::{optimal_system, MajorityQuorum, QuorumSystem};
    let profiles: Vec<Vec<f64>> = vec![
        vec![0.01; 5],                         // equal, the Jupiter target
        vec![0.01, 0.012, 0.009, 0.011, 0.01], // near-equal (realistic)
        vec![0.01, 0.1, 0.1, 0.1, 0.1],        // the paper's §4.1 example
        vec![0.001, 0.3, 0.3, 0.3, 0.3],       // monarchy regime
        vec![0.05, 0.1, 0.15, 0.2, 0.25],      // spread
    ];
    profiles
        .into_iter()
        .map(|p| {
            let majority = MajorityQuorum::new(p.len()).availability(&p);
            let weighted = optimal_system(&p).availability(&p);
            VotingRow {
                profile: p,
                majority,
                weighted,
            }
        })
        .collect()
}

/// Fixed-once ablation: Andrzejak-style pre-computed bids held for the
/// whole deployment versus online re-bidding (the paper's §6 critique).
pub fn ablation_fixed_once(scale: &Scale) -> Vec<SweepRow> {
    let spec = ServiceSpec::lock_service();
    let scenario = scale.scenario(spec.instance_type);
    let sweep = SweepSpec::new(spec)
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .strategy(|_| Box::new(jupiter::FixedOnce::new(JupiterStrategy::new())))
        .intervals(vec![6]);
    scenario.run(&sweep).iter().map(SweepRow::from_cell).collect()
}

/// Model-mismatch ablation row: the semi-Markov failure model backtested
/// on its own process versus the banded AR(1) process of Ben-Yehuda et
/// al. (which violates the discrete-ladder assumption).
#[derive(Clone, Debug)]
pub struct MismatchRow {
    /// Which process generated the market ("semi-markov" / "ar1").
    pub process: String,
    /// Walk-forward calibration of the model on that process.
    pub mean_predicted: f64,
    /// Realized mean out-of-bid fraction at the model-chosen bids.
    pub mean_realized: f64,
    /// Mean absolute calibration error.
    pub mean_abs_error: f64,
    /// Realized kill rate at those bids.
    pub kill_rate: f64,
}

/// Ablation: train and backtest the paper's failure model on traces from
/// its assumed process and from a structurally different one.
pub fn ablation_model_mismatch(scale: &Scale) -> Vec<MismatchRow> {
    use spot_market::{ArTraceGenerator, TraceGenerator};
    use spot_model::{backtest, BidRule};

    let ty = InstanceType::M1Small;
    let zones: Vec<Zone> = spot_market::topology::experiment_zones()
        .into_iter()
        .take(4)
        .collect();
    let total = scale.horizon_minutes();
    let train = scale.train_minutes();

    let run = |name: &str, traces: Vec<PriceTrace>| -> MismatchRow {
        let mut reports = Vec::new();
        for (trace, zone) in traces.iter().zip(&zones) {
            let cap = ty.on_demand_price(zone.region);
            reports.push(backtest(
                trace,
                train,
                360,
                24 * 60,
                BidRule::TargetFp {
                    target: 0.0103,
                    cap,
                },
                false,
                spot_model::FailureModelConfig::default(),
            ));
        }
        let n: f64 = reports
            .iter()
            .map(|r| r.samples as f64)
            .sum::<f64>()
            .max(1.0);
        let weighted = |f: &dyn Fn(&spot_model::CalibrationReport) -> f64| -> f64 {
            reports.iter().map(|r| f(r) * r.samples as f64).sum::<f64>() / n
        };
        MismatchRow {
            process: name.into(),
            mean_predicted: weighted(&|r| r.mean_predicted),
            mean_realized: weighted(&|r| r.mean_realized),
            mean_abs_error: weighted(&|r| r.mean_abs_error),
            kill_rate: weighted(&|r| r.kill_rate),
        }
    };

    let sm_gen = TraceGenerator::new(scale.seed);
    let ar_gen = ArTraceGenerator::new(scale.seed);
    let sm_traces: Vec<PriceTrace> = zones
        .iter()
        .map(|&z| sm_gen.generate(z, ty, total))
        .collect();
    // The AR process quotes near-continuously; re-quote it on a $0.001
    // grid so the semi-Markov state space stays bounded (a market quoting
    // on a coarse grid, not a model concession — forecast cost is
    // quadratic in distinct prices).
    let quantum = Price::from_micros(1_000);
    let ar_traces: Vec<PriceTrace> = zones
        .iter()
        .map(|&z| ar_gen.generate(z, ty, total).quantized(quantum))
        .collect();
    vec![run("semi-markov", sm_traces), run("ar1-banded", ar_traces)]
}

// ------------------------------------------ Heterogeneous-pool race

/// One row of the heterogeneous-pool strategy race: a (strategy, pool
/// column) cell at the fixed 6 h interval.
#[derive(Clone, Debug)]
pub struct HeteroRow {
    /// Strategy display name.
    pub strategy: String,
    /// `+`-joined API names of the pool column the cell replayed over
    /// (e.g. `m1.small+m3.large`).
    pub pool_label: String,
    /// Total billed cost over the evaluation span.
    pub cost: Price,
    /// Measured availability.
    pub availability: f64,
    /// Out-of-bid kills.
    pub kills: usize,
    /// Mean decided group size (node count, not strength).
    pub mean_group_size: f64,
}

/// The heterogeneous-pool race plus its framing constants.
#[derive(Clone, Debug)]
pub struct HeteroSweep {
    /// One row per (strategy, pool column), grid order.
    pub rows: Vec<HeteroRow>,
    /// The on-demand baseline cost for the mixed-pool service.
    pub baseline_cost: Price,
    /// The strength floor every cell had to reach.
    pub min_strength: u32,
    /// The fixed bidding interval used.
    pub interval_hours: u64,
}

/// The tentpole experiment: Jupiter, the Li et al.-style feedback
/// controller, and the kill-prone Extra heuristic race over single-type
/// pools and the mixed pool on one heterogeneous market, all holding the
/// same capacity-weighted strength floor. The mix should match the best
/// single type's availability at strictly lower cost — the optimizer is
/// free to buy strength wherever it is cheapest per dollar.
pub fn hetero_sweep(scale: &Scale) -> HeteroSweep {
    use jupiter::FeedbackStrategy;
    const MIN_STRENGTH: u32 = 8;
    const INTERVAL: u64 = 6;
    let mut cfg = MarketConfig::hetero_paper(scale.seed, scale.horizon_minutes());
    cfg.zones.truncate(scale.zones);
    let market = Market::generate(cfg);
    let scenario = Scenario::new(market, scale.train_minutes(), scale.horizon_minutes());
    let spec = ServiceSpec::lock_service()
        .with_pools(&[InstanceType::M1Small, InstanceType::M3Large])
        .with_min_strength(MIN_STRENGTH);
    let sweep = SweepSpec::new(spec.clone())
        .strategy(|_| Box::new(JupiterStrategy::new()))
        .strategy(|_| Box::new(FeedbackStrategy::new()))
        .strategy(|_| Box::new(ExtraStrategy::new(2, 0.2)))
        .intervals(vec![INTERVAL])
        .pools(vec![
            vec![InstanceType::M1Small],
            vec![InstanceType::M3Large],
            vec![InstanceType::M1Small, InstanceType::M3Large],
        ]);
    let rows = scenario
        .run(&sweep)
        .iter()
        .map(|cell| HeteroRow {
            strategy: cell.result.strategy.clone(),
            pool_label: cell
                .pool_types
                .iter()
                .map(|t| t.api_name())
                .collect::<Vec<_>>()
                .join("+"),
            cost: cell.result.total_cost,
            availability: cell.result.availability(),
            kills: cell.result.total_kills(),
            mean_group_size: cell.result.mean_group_size(),
        })
        .collect();
    HeteroSweep {
        rows,
        baseline_cost: scenario.baseline_cost(&spec),
        min_strength: MIN_STRENGTH,
        interval_hours: INTERVAL,
    }
}

// --------------------------------------------- Auto-scaler experiment

/// The auto-scaler experiment's outcome: the load-tracked replay against
/// the peak-provisioned static fleet on the same market.
#[derive(Clone, Debug)]
pub struct AutoscaleReport {
    /// The auto-scaled replay (mixed pool, diurnal demand), with series
    /// and audit log attached — `pool.fleet.*` and the `scale_decision`
    /// records live here.
    pub result: crate::ReplayResult,
    /// The same strategy holding the peak strength target statically.
    pub static_result: crate::ReplayResult,
    /// Applied scale-outs.
    pub scale_outs: u64,
    /// Applied scale-ins.
    pub scale_ins: u64,
    /// The peak strength target the static fleet was provisioned for.
    pub peak_strength: u32,
    /// The on-demand baseline cost for the mixed-pool service.
    pub baseline_cost: Price,
}

/// The deterministic diurnal arrival rate driving the auto-scaler
/// experiment: period one day, trough 40 req/s, peak 160 req/s.
pub fn diurnal_rate(t_secs: f64) -> f64 {
    let phase = (t_secs % 86_400.0) / 86_400.0 * std::f64::consts::TAU;
    100.0 - 60.0 * phase.cos()
}

/// Requests/s one unit of capacity-weighted strength serves in the
/// auto-scaler experiment (so the diurnal rate maps to 3.2–12.8 strength
/// units of demand).
pub const PER_STRENGTH_THROUGHPUT: f64 = 12.5;

/// The auto-scaler experiment: replay the mixed-pool lock service under
/// Jupiter with the [`crate::AutoScaler`] re-targeting fleet strength at
/// every 3 h boundary from the diurnal demand forecast, then replay the
/// same market with the fleet statically provisioned for peak demand.
/// The controller must hold the availability floor while billing less
/// than peak provisioning.
pub fn autoscale_report(scale: &Scale) -> AutoscaleReport {
    use crate::autoscale::{demand_series, AutoScaler, AutoscaleConfig};
    use crate::lifecycle::{on_demand_baseline_cost, replay_repair_stored, ReplayConfig};

    let mut cfg = MarketConfig::hetero_paper(scale.seed, scale.horizon_minutes());
    cfg.zones.truncate(scale.zones);
    let market = Market::generate(cfg);
    let eval_start = scale.train_minutes();
    let eval_end = scale.horizon_minutes();
    let spec = ServiceSpec::lock_service()
        .with_pools(&[InstanceType::M1Small, InstanceType::M3Large]);

    let demand = demand_series(
        diurnal_rate,
        eval_start,
        eval_end,
        60,
        PER_STRENGTH_THROUGHPUT,
    );
    let asc = AutoscaleConfig {
        min_strength: 4,
        max_strength: 24,
        ..AutoscaleConfig::default()
    };
    let peak_demand = demand.iter().map(|&(_, d)| d).fold(0.0, f64::max);
    let peak_strength = ((peak_demand * (1.0 + asc.headroom)).ceil() as u32)
        .clamp(asc.min_strength, asc.max_strength);
    let mut scaler = AutoScaler::new(asc, demand);

    let store = jupiter::ModelStore::new();
    let config = ReplayConfig::new(eval_start, eval_end, 3);
    let interval = config.interval_hours * 60;
    let obs = obs::Obs::simulated().0;
    let result = crate::lifecycle::replay_autoscale_stored(
        &market,
        &spec,
        JupiterStrategy::new(),
        config,
        crate::repair::RepairConfig::off(),
        |_| interval,
        &store,
        &mut scaler,
        &obs,
    );
    let (scale_outs, scale_ins) = scaler.scale_events();

    let static_spec = spec.clone().with_min_strength(peak_strength);
    let static_result = replay_repair_stored(
        &market,
        &static_spec,
        JupiterStrategy::new(),
        config,
        crate::repair::RepairConfig::off(),
        &store,
        &obs::Obs::disabled(),
    );
    let baseline_cost = on_demand_baseline_cost(&market, &spec, config);
    AutoscaleReport {
        result,
        static_result,
        scale_outs,
        scale_ins,
        peak_strength,
        baseline_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_requires_matched_availability() {
        let row = |strategy: &str, h: u64, cost: f64, avail: f64| SweepRow {
            interval_hours: h,
            strategy: strategy.into(),
            cost: Price::from_dollars(cost),
            availability: avail,
            kills: 0,
        };
        let sweep = vec![
            row("Baseline", 0, 100.0, 0.9999),
            row("Jupiter", 6, 30.0, 0.99995), // qualifies
            row("Jupiter", 12, 20.0, 0.99),   // cheapest but disqualified
        ];
        let h = headline(&sweep, &sweep);
        assert_eq!(h.lock_best_interval, 6);
        assert!((h.lock_reduction_pct - 70.0).abs() < 1e-9);
        assert!(h.lock_met_sla && h.storage_met_sla);

        // When nothing qualifies, fall back to the most available row —
        // and say so instead of silently reporting the fallback as a
        // matched-availability saving.
        let sweep = vec![
            row("Baseline", 0, 100.0, 0.9999),
            row("Jupiter", 6, 30.0, 0.995),
            row("Jupiter", 12, 20.0, 0.99),
        ];
        let h = headline(&sweep, &sweep);
        assert_eq!(h.lock_best_interval, 6);
        assert!(!h.lock_met_sla && !h.storage_met_sla);
    }

    #[test]
    fn fixed_once_ablation_runs() {
        let rows = ablation_fixed_once(&Scale::quick(7));
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.strategy.contains("fixed-once")));
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.availability));
            assert!(r.cost > Price::ZERO);
        }
    }

    #[test]
    fn repair_sweep_is_monotone_and_bounded() {
        let s = repair_sweep(&Scale::quick(7));
        // 1 interval × 2 strategies × 3 policies.
        assert_eq!(s.rows.len(), 6);
        assert!(s.baseline_cost > Price::ZERO);
        for chunk in s.rows.chunks(3) {
            let [off, reactive, hybrid] = chunk else {
                panic!("three policies per (interval, strategy)");
            };
            assert_eq!(off.policy, RepairPolicy::Off);
            assert_eq!(reactive.policy, RepairPolicy::Reactive);
            assert_eq!(hybrid.policy, RepairPolicy::Hybrid);
            // Frozen boundary decisions: repair only ever adds uptime.
            assert!(reactive.availability >= off.availability - 1e-12);
            assert!(hybrid.availability >= reactive.availability - 1e-12);
            assert!(hybrid.degraded_minutes <= off.degraded_minutes);
            // Spot-only repair never bills on-demand.
            assert_eq!(off.on_demand_cost, Price::ZERO);
            assert_eq!(reactive.on_demand_cost, Price::ZERO);
            // Bounded extra cost: repair stays below holding the fleet
            // on-demand outright.
            assert!(hybrid.cost < s.baseline_cost, "{hybrid:?}");
        }
    }

    #[test]
    fn era_sweep_migration_beats_reactive_under_capacity() {
        let s = era_sweep(&Scale::quick(7));
        // 2 strategies × 2 policies × 2 eras at one interval.
        assert_eq!(s.rows.len(), 8);
        assert!(s.baseline_cost > Price::ZERO);
        for r in &s.rows {
            assert!((0.0..=1.0).contains(&r.availability), "{r:?}");
            assert!(r.cost > Price::ZERO, "{r:?}");
            assert!(r.cost < s.baseline_cost, "{r:?}");
        }
        let find = |strategy: &str, policy: RepairPolicy, era: BidEra| {
            s.rows
                .iter()
                .find(|r| r.strategy == strategy && r.policy == policy && r.era == era)
                .expect("cell present")
        };
        let mut total_drains = 0;
        for strategy in ["Jupiter", "Feedback"] {
            // Bidding era: no notices, so Migrate replays exactly as
            // Reactive — the policy is strictly additive.
            let rb = find(strategy, RepairPolicy::Reactive, BidEra::Bidding);
            let mb = find(strategy, RepairPolicy::Migrate, BidEra::Bidding);
            assert_eq!(rb.cost, mb.cost, "{strategy}: bidding-era cost drifted");
            assert_eq!(rb.degraded_minutes, mb.degraded_minutes);
            assert_eq!(rb.kills, mb.kills);
            assert_eq!(mb.drains, 0, "no drains without notices");
            // Capacity era: acting on the advance notice must never be
            // worse than waiting for the kill, and drains must land.
            let rc = find(strategy, RepairPolicy::Reactive, BidEra::CapacityReclaim);
            let mc = find(strategy, RepairPolicy::Migrate, BidEra::CapacityReclaim);
            assert!(rc.kills > 0, "{strategy}: capacity era must reclaim");
            assert!(
                mc.availability >= rc.availability - 1e-12,
                "{strategy}: migrate {} < reactive {}",
                mc.availability,
                rc.availability
            );
            assert!(
                mc.degraded_minutes <= rc.degraded_minutes,
                "{strategy}: migrate degraded {} > reactive {}",
                mc.degraded_minutes,
                rc.degraded_minutes
            );
            total_drains += mc.drains;
        }
        assert!(total_drains >= 1, "at least one pre-deadline drain");
    }

    #[test]
    fn model_mismatch_rows_are_sane() {
        let rows = ablation_model_mismatch(&Scale::quick(7));
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.mean_realized), "{r:?}");
            assert!((0.0..=1.0).contains(&r.kill_rate), "{r:?}");
        }
    }

    #[test]
    fn fig1_series_is_plausible() {
        let s = fig1_series(42);
        assert_eq!(s.len(), 120);
        // A step function: consecutive equal runs with occasional changes.
        let changes = s.windows(2).filter(|w| w[0].1 != w[1].1).count();
        assert!(changes >= 1, "prices should move within two hours");
        for (_, p) in &s {
            assert!(*p > Price::ZERO);
        }
    }

    #[test]
    fn table1_matches_the_paper() {
        let t = table1();
        assert_eq!(t.len(), 9);
        assert_eq!(t[0], ("us-east-1", "Virginia", 4));
        assert_eq!(t[8], ("sa-east-1", "Sao Paulo", 2));
        let total: usize = t.iter().map(|r| r.2).sum();
        assert_eq!(total, 24);
    }

    #[test]
    fn fig4_quick_scale() {
        let rows = fig4(&Scale::quick(7));
        assert_eq!(rows.len(), 10); // 5 zones × 2 types
        let feasible = rows.iter().filter(|r| r.bid.is_some()).count();
        assert!(feasible >= 7, "most zones must find a bid: {feasible}");
        for r in rows.iter().filter(|r| r.bid.is_some()) {
            assert!(r.estimated <= 0.01 + 1e-9);
            // Measured stays the same order of magnitude as the target in
            // most zones; exact agreement is not expected (the paper's
            // Fig. 4 also shows two exceedances).
            assert!(
                r.measured <= 0.2,
                "{}: measured {}",
                r.zone.name(),
                r.measured
            );
        }
    }

    #[test]
    fn weighted_voting_ablation_shapes() {
        let rows = ablation_weighted_voting();
        assert_eq!(rows.len(), 5);
        // Equal profile: identical availability.
        assert!((rows[0].majority - rows[0].weighted).abs() < 1e-12);
        // Monarchy regime: weighted strictly wins.
        assert!(rows[3].weighted > rows[3].majority);
    }

    #[test]
    fn hetero_sweep_races_strategies_over_pool_columns() {
        let s = hetero_sweep(&Scale::quick(7));
        // 3 strategies × 3 pool columns at one interval.
        assert_eq!(s.rows.len(), 9);
        let strategies: std::collections::BTreeSet<&str> =
            s.rows.iter().map(|r| r.strategy.as_str()).collect();
        assert!(strategies.contains("Jupiter"));
        assert!(strategies.contains("Feedback"));
        assert_eq!(strategies.len(), 3);
        let labels: std::collections::BTreeSet<&str> =
            s.rows.iter().map(|r| r.pool_label.as_str()).collect();
        assert_eq!(
            labels,
            ["m1.small", "m3.large", "m1.small+m3.large"]
                .into_iter()
                .collect()
        );
        for r in &s.rows {
            assert!((0.0..=1.0).contains(&r.availability), "{r:?}");
            assert!(r.cost > Price::ZERO, "{r:?}");
            assert!(r.cost < s.baseline_cost, "{r:?} vs {:?}", s.baseline_cost);
        }
    }

    #[test]
    fn autoscale_report_tracks_load_and_undercuts_peak_provisioning() {
        let r = autoscale_report(&Scale::quick(7));
        assert!(r.scale_outs >= 1, "diurnal peak must scale out");
        assert!(
            r.result
                .audit
                .iter()
                .any(|rec| rec.kind.label() == "scale_decision"),
            "scale decisions must be audited"
        );
        assert!(
            r.result.series_named("pool.fleet.m1.small").is_some()
                || r.result.series_named("pool.fleet.m3.large").is_some(),
            "per-type fleet series must be recorded"
        );
        assert!((0.0..=1.0).contains(&r.result.availability()));
        // Tracking the trough must bill less than holding peak strength.
        assert!(
            r.result.total_cost < r.static_result.total_cost,
            "autoscale {:?} !< static {:?}",
            r.result.total_cost,
            r.static_result.total_cost
        );
        assert!(r.static_result.total_cost < r.baseline_cost);
    }

    #[test]
    fn estimator_ablation_orders_correctly() {
        let rows = ablation_estimator(&Scale::quick(7));
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.absorbing_fp >= r.expectation_fp - 1e-9,
                "{}: absorbing {} < expectation {}",
                r.zone.name(),
                r.absorbing_fp,
                r.expectation_fp
            );
        }
    }
}
