//! Service-level replay: run the *actual* Paxos lock service while the
//! spot market kills and replaces its instances.
//!
//! The market-level replay ([`crate::lifecycle`]) accounts availability by
//! quorum arithmetic, as the paper's 11-week trace replays do. This module
//! closes the loop for the feasibility claim (§5.4): the bid schedule is
//! executed against a real replicated lock service on the simulated
//! network — instances join through Paxos **view change**, out-of-bid
//! terminations crash live replicas mid-protocol, and a closed-loop client
//! measures request-level behaviour through every failover.
//!
//! Time mapping: one market minute = one simulated second, so a 12-hour
//! market window runs as a 43 200 s protocol simulation. Leader failovers
//! (~1–2 s simulated) therefore correspond to one or two market minutes of
//! measured unavailability — the same order as real Chubby failovers.

use std::collections::HashMap;

use jupiter::framework::MarketSnapshot;
use jupiter::{BiddingFramework, BiddingStrategy, ServiceSpec};
use obs::{Obs, SloSpec, SloTracker};
use paxos::{ClientOp, Cluster, LockCmd, LockService, ReplicaConfig};
use simnet::{NetworkConfig, NodeId, SimTime};
use spot_market::{Market, Price, Zone};


/// Service-level replay parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServiceReplayConfig {
    /// Market minute the evaluation starts at (history before it trains
    /// the models).
    pub eval_start: u64,
    /// Evaluated market minutes (kept short: this runs a full protocol
    /// simulation).
    pub window_minutes: u64,
    /// Bidding interval in hours.
    pub interval_hours: u64,
    /// Latency bound a request must meet to count as served (simulated
    /// milliseconds).
    pub sla_ms: u64,
    /// Simulation seed.
    pub seed: u64,
}

/// What the service-level replay observed.
#[derive(Clone, Debug)]
pub struct ServiceReplayOutcome {
    /// Lock operations completed.
    pub ops_completed: usize,
    /// Lock operations still outstanding at the end.
    pub ops_unfinished: usize,
    /// Mean completion latency (simulated ms).
    pub mean_latency_ms: f64,
    /// Worst completion latency (simulated ms).
    pub max_latency_ms: u64,
    /// Fraction of completed ops within the SLA bound.
    pub sla_fraction: f64,
    /// Membership reconfigurations executed.
    pub reconfigs: usize,
    /// Out-of-bid crashes injected.
    pub crashes: usize,
    /// Length of the agreed log prefix across live replicas at the end.
    pub agreed_log_len: usize,
}

fn to_sim(minute_rel: u64) -> SimTime {
    SimTime::from_secs(minute_rel)
}

/// Exact quantile of a sorted sample (nearest-rank); 0 on empty input.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Fold the tracer ring into `trace.*` instruments: per-operation commit
/// latency (the duration of each complete `client.request` root span, with
/// exact p50/p99 published as counters so the bench baseline can diff
/// them), per-hop critical-path attribution histograms, and orphan/
/// incomplete counts for chaos post-mortems. No-op when tracing is
/// disabled, so the untraced replay path is untouched.
pub fn record_trace_metrics(obs: &Obs) {
    if !obs.trace.is_enabled() {
        return;
    }
    let events = obs.trace.events();
    let traces = obs::assemble_traces(&events);
    let latency_hist = obs.histogram("trace.commit_latency_micros");
    let mut latencies: Vec<u64> = Vec::new();
    let mut orphans = 0u64;
    let mut incomplete = 0u64;
    for t in &traces {
        orphans += t.orphans().len() as u64;
        let Some(lat) = t.latency_micros() else {
            incomplete += 1;
            continue;
        };
        latencies.push(lat);
        latency_hist.record(lat);
        for (hop, micros) in obs::hop_self_times(&obs::critical_path(t)) {
            obs.histogram(&format!("trace.hop.{hop}_micros")).record(micros);
        }
    }
    latencies.sort_unstable();
    obs.counter("trace.ops").add(latencies.len() as u64);
    obs.counter("trace.orphan_spans").add(orphans);
    obs.counter("trace.incomplete").add(incomplete);
    obs.counter("trace.commit_latency_p50_micros")
        .add(quantile(&latencies, 0.50));
    obs.counter("trace.commit_latency_p99_micros")
        .add(quantile(&latencies, 0.99));
}

/// Online request-latency SLO: feed the assembled traces' commit
/// latencies (one observation per completed operation, timestamped on
/// the market-minute axis — one sim second is one market minute) into a
/// [`SloTracker`] with the paper's 0.99 objective against `sla_ms`.
/// Burn-rate alerts land in `obs.alerts` as `slo.request_latency.*`;
/// the verdict is published as `slo.request_latency.availability` /
/// `slo.request_latency.budget_remaining` ppm counters. No-op unless
/// both tracing and alerting are enabled.
pub fn record_latency_slo(obs: &Obs, eval_start: u64, window_minutes: u64, sla_ms: u64) {
    if !obs.trace.is_enabled() || !obs.alerts.is_enabled() {
        return;
    }
    let events = obs.trace.events();
    let traces = obs::assemble_traces(&events);
    let mut completions: Vec<(u64, bool)> = traces
        .iter()
        .filter_map(|t| {
            let latency = t.latency_micros()?;
            let done_micros = t.root()?.end_micros?;
            Some((
                eval_start + done_micros / 1_000_000,
                latency <= sla_ms.saturating_mul(1_000),
            ))
        })
        .collect();
    completions.sort_unstable();
    let mut slo = SloTracker::new(SloSpec::request_latency(window_minutes), obs.alerts.clone());
    for &(minute, ok) in &completions {
        slo.record(minute, if ok { 1.0 } else { 0.0 }, 1.0);
    }
    obs.counter("slo.request_latency.availability")
        .add((slo.availability().clamp(0.0, 1.0) * 1e6).round() as u64);
    obs.counter("slo.request_latency.budget_remaining")
        .add((slo.budget_remaining().max(0.0) * 1e6).round() as u64);
    obs.counter("slo.request_latency.alerts_fired")
        .add(slo.alerts_fired());
}

/// Run the lock service under a bidding strategy for a short market
/// window. Returns request-level metrics.
pub fn lock_service_replay<S: BiddingStrategy>(
    market: &Market,
    strategy: S,
    config: ServiceReplayConfig,
) -> ServiceReplayOutcome {
    lock_service_replay_observed(market, strategy, config, &Obs::disabled())
}

/// [`lock_service_replay`] with observability: the bidding framework and
/// every Paxos replica record into the shared [`Obs`] (`jupiter.*` and
/// `paxos.*` instruments).
pub fn lock_service_replay_observed<S: BiddingStrategy>(
    market: &Market,
    strategy: S,
    config: ServiceReplayConfig,
    obs: &Obs,
) -> ServiceReplayOutcome {
    let spec = ServiceSpec::lock_service();
    let ty = spec.instance_type;
    assert!(
        config.eval_start + config.window_minutes <= market.horizon(),
        "window beyond market horizon"
    );

    // Train the failure models on the revealed prefix.
    let mut framework = BiddingFramework::new(spec.clone(), strategy).with_obs(obs.clone());
    for &z in market.zones() {
        framework.observe(z, ty, &market.trace(z, ty).window(0, config.eval_start));
    }

    // The protocol cluster. Node 0..n₀ are created per the first decision.
    let snapshot = |minute: u64| -> Vec<MarketSnapshot> {
        market
            .zones()
            .iter()
            .map(|&z| {
                let t = market.trace(z, ty);
                MarketSnapshot {
                    zone: z,
                    instance_type: ty,
                    spot_price: t.price_at(minute),
                    sojourn_age: t.sojourn_age_at(minute) as u32,
                }
            })
            .collect()
    };
    let interval_min = config.interval_hours * 60;
    let first = framework.decide(&snapshot(config.eval_start), interval_min as u32);
    assert!(first.n() > 0, "strategy found no initial deployment");

    let mut cluster: Cluster<LockService> = Cluster::new(
        first.n(),
        LockService::new(),
        ReplicaConfig {
            obs: obs.clone(),
            ..ReplicaConfig::default()
        },
        NetworkConfig::default(),
        config.seed,
    );
    // zone → (node, bid) for the live fleet.
    let mut fleet: HashMap<Zone, (NodeId, Price)> = HashMap::new();
    for (slot, pb) in first.bids.iter().enumerate() {
        fleet.insert(pb.zone, (NodeId(slot), pb.bid));
    }
    let admin = cluster.add_client();
    let worker = cluster.add_client();

    let mut reconfigs = 0usize;
    let mut crashes = 0usize;
    // Cumulative trajectories on the market-minute axis — the crash/churn
    // view of the same window the market replay records per interval.
    let crash_series = obs.series.series("service.crashes");
    let fleet_series = obs.series.series("service.fleet_size");
    let reconfig_series = obs.series.series("service.reconfigs");
    fleet_series.record(config.eval_start, fleet.len() as f64);

    // Pre-queue a steady lock workload: acquire/release pairs.
    let mut queued = 0usize;
    let refill = |cluster: &mut Cluster<LockService>, queued: &mut usize, upto: usize| {
        while *queued < upto {
            let name = format!("lease-{}", *queued / 2);
            let cmd = if (*queued).is_multiple_of(2) {
                LockCmd::Acquire {
                    name,
                    owner: worker,
                }
            } else {
                LockCmd::Release {
                    name,
                    owner: worker,
                }
            };
            cluster.submit(worker, ClientOp::App(cmd));
            *queued += 1;
        }
    };
    // One op roughly every two simulated seconds.
    let total_ops = (config.window_minutes / 2).max(4) as usize;
    refill(&mut cluster, &mut queued, total_ops.min(64));

    let mut boundary = config.eval_start;
    let window_end = config.eval_start + config.window_minutes;
    while boundary < window_end {
        let interval_end = (boundary + interval_min).min(window_end);

        // Kills within this interval, in market-minute order.
        let mut kills: Vec<(u64, Zone)> = fleet
            .iter()
            .filter_map(|(&zone, &(_, bid))| {
                market
                    .out_of_bid_at(zone, ty, bid, boundary, interval_end)
                    .map(|k| (k, zone))
            })
            .collect();
        kills.sort_unstable();

        for (kill_minute, zone) in kills {
            cluster
                .sim
                .run_until(to_sim(kill_minute - config.eval_start));
            let upto = (queued + 16).min(total_ops);
            refill(&mut cluster, &mut queued, upto);
            if let Some((node, _)) = fleet.remove(&zone) {
                cluster.crash(node);
                crashes += 1;
                crash_series.record(kill_minute, crashes as f64);
            }
        }
        cluster
            .sim
            .run_until(to_sim(interval_end - config.eval_start));
        if interval_end >= window_end {
            break;
        }

        // ---- bidding-interval boundary: re-decide and reconfigure -------
        // Fold the newly revealed prices of every zone into the models.
        for &z in market.zones() {
            framework.observe(z, ty, &market.trace(z, ty).window(boundary, interval_end));
        }
        let decision = framework.decide(&snapshot(interval_end), interval_min as u32);
        if decision.n() == 0 {
            boundary = interval_end;
            continue; // keep the current fleet rather than run nothing
        }

        let mut add_nodes = Vec::new();
        let mut new_fleet: HashMap<Zone, (NodeId, Price)> = HashMap::new();
        for pb in &decision.bids {
            let (zone, bid) = (pb.zone, pb.bid);
            match fleet.get(&zone) {
                // A standing higher bid keeps protecting the instance —
                // carry it over instead of churning the membership.
                Some(&(node, old_bid)) if old_bid >= bid => {
                    new_fleet.insert(zone, (node, old_bid));
                }
                _ => {
                    if !market.grants(zone, ty, bid, interval_end) {
                        continue;
                    }
                    let node = cluster.spawn_server(LockService::new());
                    add_nodes.push(node);
                    new_fleet.insert(zone, (node, bid));
                }
            }
        }
        let remove_nodes: Vec<NodeId> = fleet
            .iter()
            .filter(|(z, _)| !new_fleet.contains_key(*z))
            .map(|(_, &(n, _))| n)
            .collect();
        if !add_nodes.is_empty() || !remove_nodes.is_empty() {
            cluster.submit(
                admin,
                ClientOp::Reconfig {
                    add: add_nodes,
                    remove: remove_nodes.clone(),
                },
            );
            let deadline = cluster.sim.now() + SimTime::from_secs(120);
            cluster.run_until_drained(admin, deadline);
            cluster.refresh_clients();
            for node in remove_nodes {
                if cluster.sim.is_up(node) {
                    cluster.crash(node); // the instance is returned to EC2
                }
            }
            reconfigs += 1;
        }
        fleet = new_fleet;
        fleet_series.record(interval_end, fleet.len() as f64);
        reconfig_series.record(interval_end, reconfigs as f64);
        let upto = (queued + 32).min(total_ops);
        refill(&mut cluster, &mut queued, upto);
        boundary = interval_end;
    }

    // Drain what remains, bounded.
    let deadline = cluster.sim.now() + SimTime::from_secs(300);
    cluster.run_until_drained(worker, deadline);

    // ---- metrics -------------------------------------------------------
    let history = cluster
        .sim
        .actor(worker)
        .and_then(paxos::PaxosNode::as_client)
        .map(|c| c.history().to_vec())
        .unwrap_or_default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut unfinished = 0usize;
    for op in &history {
        match &op.completed {
            Some((done, _)) => latencies.push(done.as_millis() - op.issued_at.as_millis()),
            None => unfinished += 1,
        }
    }
    let completed = latencies.len();
    let mean = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / completed as f64
    };
    let max = latencies.iter().copied().max().unwrap_or(0);
    let within = latencies.iter().filter(|&&l| l <= config.sla_ms).count();
    let agreed = cluster.assert_log_agreement();
    record_trace_metrics(obs);
    record_latency_slo(obs, config.eval_start, config.window_minutes, config.sla_ms);

    ServiceReplayOutcome {
        ops_completed: completed,
        ops_unfinished: unfinished,
        mean_latency_ms: mean,
        max_latency_ms: max,
        sla_fraction: if completed == 0 {
            0.0
        } else {
            within as f64 / completed as f64
        },
        reconfigs,
        crashes,
        agreed_log_len: agreed,
    }
}

/// Outcome of a storage-service service-level replay.
#[derive(Clone, Debug)]
pub struct StorageReplayOutcome {
    /// Store operations completed (puts + gets).
    pub ops_completed: usize,
    /// Operations still outstanding at the end.
    pub ops_unfinished: usize,
    /// Gets that returned the exact bytes last put under the key.
    pub correct_reads: usize,
    /// Gets answered at all.
    pub reads: usize,
    /// Out-of-bid crashes injected.
    pub crashes: usize,
    /// Replica slot rebinds (zone or bid changes at boundaries).
    pub rebinds: usize,
}

/// Run the RS-Paxos storage service under a bidding strategy for a short
/// market window.
///
/// RS-Paxos keeps a fixed five-slot membership (shard index = slot), so
/// zone changes at bidding-interval boundaries are modelled as slot
/// *rebinds*: the outgoing instance is terminated and a fresh replica
/// takes over the slot, recovering state through protocol catch-up —
/// operationally the replacement flow of §4 with the shard index pinned.
pub fn storage_service_replay<S: BiddingStrategy>(
    market: &Market,
    strategy: S,
    config: ServiceReplayConfig,
) -> StorageReplayOutcome {
    storage_service_replay_observed(market, strategy, config, &Obs::disabled())
}

/// [`storage_service_replay`] with observability: the bidding framework
/// and every RS-Paxos replica record into the shared [`Obs`] (`jupiter.*`
/// and `storage.*` instruments).
pub fn storage_service_replay_observed<S: BiddingStrategy>(
    market: &Market,
    strategy: S,
    config: ServiceReplayConfig,
    obs: &Obs,
) -> StorageReplayOutcome {
    use storage::{RsCluster, RsConfig, StoreCmd, StoreResp};

    let spec = ServiceSpec::storage_service();
    let ty = spec.instance_type;
    assert!(
        config.eval_start + config.window_minutes <= market.horizon(),
        "window beyond market horizon"
    );

    let mut framework = BiddingFramework::new(spec.clone(), strategy).with_obs(obs.clone());
    for &z in market.zones() {
        framework.observe(z, ty, &market.trace(z, ty).window(0, config.eval_start));
    }
    let snapshot = |minute: u64| -> Vec<MarketSnapshot> {
        market
            .zones()
            .iter()
            .map(|&z| {
                let t = market.trace(z, ty);
                MarketSnapshot {
                    zone: z,
                    instance_type: ty,
                    spot_price: t.price_at(minute),
                    sojourn_age: t.sojourn_age_at(minute) as u32,
                }
            })
            .collect()
    };
    let interval_min = config.interval_hours * 60;
    let pick = |decision: &jupiter::BidDecision| -> Vec<(Zone, Price)> {
        decision.bids.iter().map(|b| (b.zone, b.bid)).take(5).collect()
    };
    let first = framework.decide(&snapshot(config.eval_start), interval_min as u32);
    let mut assignment = pick(&first);
    assert_eq!(assignment.len(), 5, "storage needs five zones");

    let mut cluster = RsCluster::new(
        5,
        RsConfig {
            obs: obs.clone(),
            ..RsConfig::default()
        },
        NetworkConfig::default(),
        config.seed,
    );
    let client = cluster.add_client();

    let mut crashes = 0usize;
    let mut rebinds = 0usize;
    let crash_series = obs.series.series("storage.crashes");
    let rebind_series = obs.series.series("storage.rebinds");
    let mut expected: std::collections::HashMap<String, u8> = Default::default();
    let mut op_counter = 0usize;
    let total_ops = (config.window_minutes / 3).max(4) as usize;
    let submit_some = |cluster: &mut RsCluster,
                           op_counter: &mut usize,
                           expected: &mut std::collections::HashMap<String, u8>,
                           upto: usize| {
        while *op_counter < upto {
            let key = format!("obj-{}", *op_counter % 7);
            if (*op_counter).is_multiple_of(2) {
                let tag = (*op_counter % 251) as u8;
                expected.insert(key.clone(), tag);
                cluster.submit(
                    client,
                    StoreCmd::Put {
                        key,
                        object: bytes::Bytes::from(vec![tag; 256]),
                    },
                );
            } else {
                cluster.submit(client, StoreCmd::Get { key });
            }
            *op_counter += 1;
        }
    };
    submit_some(&mut cluster, &mut op_counter, &mut expected, total_ops.min(40));

    let mut boundary = config.eval_start;
    let window_end = config.eval_start + config.window_minutes;
    let mut dead: Vec<usize> = Vec::new();
    while boundary < window_end {
        let interval_end = (boundary + interval_min).min(window_end);
        // Kills within this interval, slot by slot.
        let mut kills: Vec<(u64, usize)> = assignment
            .iter()
            .enumerate()
            .filter(|(slot, _)| !dead.contains(slot))
            .filter_map(|(slot, &(zone, bid))| {
                market
                    .out_of_bid_at(zone, ty, bid, boundary, interval_end)
                    .map(|k| (k, slot))
            })
            .collect();
        kills.sort_unstable();
        for (kill_minute, slot) in kills {
            cluster
                .sim
                .run_until(to_sim(kill_minute - config.eval_start));
            let upto = (op_counter + 8).min(total_ops);
            submit_some(&mut cluster, &mut op_counter, &mut expected, upto);
            cluster.crash(cluster.servers()[slot]);
            dead.push(slot);
            crashes += 1;
            crash_series.record(kill_minute, crashes as f64);
        }
        cluster
            .sim
            .run_until(to_sim(interval_end - config.eval_start));
        if interval_end >= window_end {
            break;
        }

        // Boundary: fold in revealed prices, re-decide, rebind slots.
        for &z in market.zones() {
            framework.observe(z, ty, &market.trace(z, ty).window(boundary, interval_end));
        }
        let decision = framework.decide(&snapshot(interval_end), interval_min as u32);
        let target = pick(&decision);
        if target.len() == 5 {
            // Keep slots whose zone survives with an adequate standing
            // bid; rebind the rest (restart = replacement instance).
            let mut unused: Vec<(Zone, Price)> = target
                .iter()
                .copied()
                .filter(|(z, _)| !assignment.iter().any(|(az, _)| az == z))
                .collect();
            for (slot, entry) in assignment.iter_mut().enumerate() {
                let (zone, bid) = *entry;
                let keep = target
                    .iter()
                    .any(|&(z, b)| z == zone && bid >= b)
                    && !dead.contains(&slot);
                if keep {
                    continue;
                }
                let Some((nz, nb)) = unused.pop() else {
                    // No replacement zone: revive the slot in place.
                    if dead.contains(&slot) {
                        cluster.restart(cluster.servers()[slot]);
                        dead.retain(|&s| s != slot);
                        rebinds += 1;
                    }
                    continue;
                };
                if !dead.contains(&slot) {
                    cluster.crash(cluster.servers()[slot]);
                } else {
                    dead.retain(|&s| s != slot);
                }
                cluster.restart(cluster.servers()[slot]);
                *entry = (nz, nb);
                rebinds += 1;
            }
        } else {
            // Strategy found nothing better: revive any dead slots.
            for slot in dead.drain(..) {
                cluster.restart(cluster.servers()[slot]);
                rebinds += 1;
            }
        }
        rebind_series.record(interval_end, rebinds as f64);
        let upto = (op_counter + 16).min(total_ops);
        submit_some(&mut cluster, &mut op_counter, &mut expected, upto);
        boundary = interval_end;
    }

    let deadline = cluster.sim.now() + SimTime::from_secs(300);
    cluster.run_until_drained(client, deadline);

    let history = cluster
        .sim
        .actor(client)
        .and_then(storage::RsNode::as_client)
        .map(|c| c.history().to_vec())
        .unwrap_or_default();
    let mut completed = 0usize;
    let mut unfinished = 0usize;
    let mut reads = 0usize;
    let mut correct_reads = 0usize;
    // Replay the history to know what each get should have returned.
    let mut shadow: std::collections::HashMap<String, u8> = Default::default();
    for op in &history {
        match (&op.cmd, &op.completed) {
            (_, None) => unfinished += 1,
            (StoreCmd::Put { key, object }, Some(_)) => {
                completed += 1;
                shadow.insert(key.clone(), object.first().copied().unwrap_or(0));
            }
            (StoreCmd::Get { key }, Some((_, resp))) => {
                completed += 1;
                reads += 1;
                let want = shadow.get(key).copied();
                let got = match resp {
                    StoreResp::Value { object: Some(o) } => o.first().copied(),
                    StoreResp::Value { object: None } => None,
                    _ => Some(0xFF),
                };
                if want == got {
                    correct_reads += 1;
                }
            }
            (_, Some(_)) => completed += 1,
        }
    }
    record_trace_metrics(obs);
    record_latency_slo(obs, config.eval_start, config.window_minutes, config.sla_ms);

    StorageReplayOutcome {
        ops_completed: completed,
        ops_unfinished: unfinished,
        correct_reads,
        reads,
        crashes,
        rebinds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jupiter::JupiterStrategy;
    use spot_market::{InstanceType, MarketConfig};


    #[test]
    fn lock_service_survives_a_market_window() {
        // 2 weeks of training, a 4-hour evaluated window at 2-hour
        // intervals: at least one reconfiguration cycle plus any kills the
        // market dishes out.
        let train = 2 * 7 * 24 * 60;
        let mut cfg = MarketConfig::paper(31, train + 5 * 60);
        cfg.zones.truncate(8);
        cfg.types = vec![InstanceType::M1Small];
        let market = spot_market::Market::generate(cfg);
        let out = lock_service_replay(
            &market,
            JupiterStrategy::new(),
            ServiceReplayConfig {
                eval_start: train,
                window_minutes: 4 * 60,
                interval_hours: 2,
                sla_ms: 5_000,
                seed: 9,
            },
        );
        assert!(out.ops_completed > 50, "completed {}", out.ops_completed);
        assert!(out.sla_fraction > 0.95, "sla {}", out.sla_fraction);
        assert!(out.reconfigs <= 2);
        assert!(out.agreed_log_len > 0);
        assert_eq!(out.ops_unfinished, 0);
    }
    #[test]
    fn storage_service_survives_a_market_window() {
        let train = 2 * 7 * 24 * 60;
        let mut cfg = MarketConfig::paper(41, train + 5 * 60);
        cfg.zones.truncate(8);
        cfg.types = vec![InstanceType::M3Large];
        let market = spot_market::Market::generate(cfg);
        let out = storage_service_replay(
            &market,
            JupiterStrategy {
                max_nodes: Some(5),
                ..JupiterStrategy::new()
            },
            ServiceReplayConfig {
                eval_start: train,
                window_minutes: 4 * 60,
                interval_hours: 2,
                sla_ms: 5_000,
                seed: 3,
            },
        );
        assert!(out.ops_completed > 30, "completed {}", out.ops_completed);
        assert_eq!(out.ops_unfinished, 0, "stalled ops");
        assert!(out.reads > 10);
        assert_eq!(
            out.correct_reads, out.reads,
            "a linearizable store never returns stale bytes"
        );
    }
}
