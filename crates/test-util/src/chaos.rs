//! Chaos-sweep drivers: run a seeded workload against a cluster while a
//! [`ChaosSchedule`] injects faults, then run the safety checkers.
//!
//! Both drivers are pure functions of the schedule (workload, cluster
//! seeds, and fault times all derive from `schedule.seed`), so a failing
//! run reproduces byte-for-byte from the printed seed — asserted via the
//! simulator's run [`fingerprint`](simnet::Simulation::fingerprint).
//!
//! On failure, [`shrink_and_report`] reduces the schedule to its minimal
//! failing prefix, re-runs it with tracing enabled, and packages the
//! seed, the pretty-printed schedule, the obs trace, and the exact
//! re-run command into a [`ChaosFailure`].

use std::fmt;

use obs::Obs;
use paxos::{ClientOp, LockCmd, ReplicaConfig};
use rand::Rng;
use simnet::{ChaosSchedule, SimTime};
use storage::{RsConfig, StoreCmd};

use crate::check::{check_lock_cluster, check_storage_cluster};
use crate::env::repro_command;
use crate::fixtures::{lock_cluster, storage_cluster};
use crate::rng::{derive_seed, rng_from};

/// Sub-seed streams carved out of one schedule seed.
const STREAM_CLUSTER: u64 = 1;
const STREAM_WORKLOAD: u64 = 2;

/// How long after the last chaos event the clients get to drain before
/// the run is declared stuck.
const DRAIN_GRACE: SimTime = SimTime::from_secs(240);

/// What a successful chaos run produced.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOutcome {
    /// The simulator's run digest — equal across runs of the same
    /// schedule, the byte-for-byte reproducibility witness.
    pub fingerprint: u64,
    /// Completed client operations audited by the checker.
    pub ops_checked: usize,
    /// Reads answered `Unavailable` (storage runs; 0 for lock runs).
    pub unavailable_reads: usize,
    /// Keys degraded below `m` surviving byte shards (storage runs; see
    /// [`crate::check::StorageCheckStats::eroded_keys`]).
    pub eroded_keys: usize,
}

/// Everything needed to reproduce and diagnose a failing chaos run.
#[derive(Clone, Debug)]
pub struct ChaosFailure {
    /// The schedule seed.
    pub seed: u64,
    /// Why the (full) run failed.
    pub reason: String,
    /// The minimal failing prefix, pretty-printed.
    pub schedule: String,
    /// Why the minimal prefix fails (usually the same reason).
    pub minimal_reason: String,
    /// Obs trace (JSON lines) of the minimal failing run.
    pub trace_json: String,
    /// Alerts the online monitors fired during the minimal failing run
    /// (liveness watchdog stalls, SLO burns) — the monitor's verdict on
    /// *what* degraded, alongside the checker's verdict on what broke.
    pub verdicts: Vec<obs::AlertEvent>,
    /// Copy-paste command that re-runs exactly this schedule.
    pub repro: String,
}

impl fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "chaos run failed: {}", self.reason)?;
        writeln!(f, "minimal failing prefix: {}", self.minimal_reason)?;
        write!(f, "{}", self.schedule)?;
        writeln!(f, "reproduce with:\n  {}", self.repro)?;
        if self.verdicts.is_empty() {
            writeln!(f, "monitor verdicts: none fired during the minimal run")?;
        } else {
            writeln!(f, "monitor verdicts ({}):", self.verdicts.len())?;
            for a in &self.verdicts {
                writeln!(
                    f,
                    "  [{}] {} @ {} µs: {}",
                    a.severity.label(),
                    a.monitor,
                    a.at_micros,
                    a.message
                )?;
            }
        }
        let events = self.trace_json.lines().count();
        writeln!(f, "obs trace of the minimal run ({events} events):")?;
        for line in self.trace_json.lines().take(40) {
            writeln!(f, "  {line}")?;
        }
        if events > 40 {
            writeln!(f, "  … {} more", events - 40)?;
        }
        Ok(())
    }
}

/// Run the lock-service workload under `schedule` and check every lock
/// invariant. `obs` instruments the replicas (pass [`Obs::disabled`]
/// for sweeps; it does not affect determinism).
pub fn run_lock_chaos(schedule: &ChaosSchedule, obs: &Obs) -> Result<ChaosOutcome, String> {
    let cfg = ReplicaConfig {
        obs: obs.clone(),
        ..ReplicaConfig::default()
    };
    let mut c = lock_cluster(5, cfg, derive_seed(schedule.seed, STREAM_CLUSTER));
    let clients = [c.add_client(), c.add_client()];

    // Seeded workload, queued up-front; the closed-loop clients trickle
    // it through the cluster while faults land.
    let mut wl = rng_from(derive_seed(schedule.seed, STREAM_WORKLOAD));
    for (ci, &client) in clients.iter().enumerate() {
        // Command-embedded timestamps: monotone per client, so lease
        // expiry is deterministic and renewals can never go backwards.
        let mut now_ms = 1_000 * (ci as u64 + 1);
        for _ in 0..12 {
            now_ms += 1_500;
            let name = if wl.gen_bool(0.5) { "alpha" } else { "beta" };
            let name = name.to_string();
            let cmd = match wl.gen_range(0..6u32) {
                0 => LockCmd::Acquire {
                    name,
                    owner: client,
                },
                1 | 2 => LockCmd::AcquireLease {
                    name,
                    owner: client,
                    now_ms,
                    ttl_ms: wl.gen_range(2_000..10_000),
                },
                3 => LockCmd::Renew {
                    name,
                    owner: client,
                    now_ms,
                },
                4 => LockCmd::Release {
                    name,
                    owner: client,
                },
                _ => LockCmd::Holder { name },
            };
            c.submit(client, ClientOp::App(cmd));
        }
    }

    // Execute the fault schedule interleaved with the workload.
    for ev in &schedule.events {
        c.sim.run_until(ev.at);
        obs.set_time_micros(c.sim.now().as_millis() * 1_000);
        c.apply_chaos(&ev.action);
    }

    // Recovery epilogue: whatever state the schedule (or a shrunk prefix
    // of it) left behind, restore the network and every replica so the
    // drain below asserts *eventual* progress, not luck.
    c.apply_chaos(&simnet::ChaosAction::ClearLinkChaos);
    c.apply_chaos(&simnet::ChaosAction::Heal);
    for id in c.servers().to_vec() {
        c.apply_chaos(&simnet::ChaosAction::Restart(id));
    }

    let deadline = c.sim.now() + DRAIN_GRACE;
    for &client in &clients {
        if !c.run_until_drained(client, deadline) {
            return Err(format!(
                "liveness: client {client} still has outstanding ops {} after the \
                 schedule healed",
                DRAIN_GRACE
            ));
        }
    }
    obs.set_time_micros(c.sim.now().as_millis() * 1_000);

    let stats = check_lock_cluster(&c)?;
    Ok(ChaosOutcome {
        fingerprint: c.sim.fingerprint(),
        ops_checked: stats.responses_checked,
        unavailable_reads: 0,
        eroded_keys: 0,
    })
}

/// Run the θ(3,5) storage workload under `schedule` and check
/// read-your-writes plus final decoded-value integrity.
pub fn run_storage_chaos(schedule: &ChaosSchedule, obs: &Obs) -> Result<ChaosOutcome, String> {
    let cfg = RsConfig {
        obs: obs.clone(),
        ..RsConfig::default()
    };
    let m = cfg.m;
    let mut c = storage_cluster(5, cfg, derive_seed(schedule.seed, STREAM_CLUSTER));
    let client = c.add_client();

    // Single closed-loop writer over three keys: rounds of put/get with
    // the occasional delete. Object bytes are a pure function of
    // (seed, round, key) so any stale read is detectable.
    let mut wl = rng_from(derive_seed(schedule.seed, STREAM_WORKLOAD));
    for round in 0..6u64 {
        for key_i in 0..3u64 {
            let key = format!("k{key_i}");
            if wl.gen_bool(0.1) {
                c.submit(client, StoreCmd::Delete { key });
                continue;
            }
            if wl.gen_bool(0.7) {
                let len = wl.gen_range(16..256usize);
                let tag = derive_seed(schedule.seed, (round << 8) | key_i);
                let object: Vec<u8> = (0..len).map(|i| (tag.rotate_left(i as u32 % 64) & 0xFF) as u8).collect();
                c.submit(
                    client,
                    StoreCmd::Put {
                        key: key.clone(),
                        object: object.into(),
                    },
                );
            }
            if wl.gen_bool(0.8) {
                c.submit(client, StoreCmd::Get { key });
            }
        }
    }

    for ev in &schedule.events {
        c.sim.run_until(ev.at);
        obs.set_time_micros(c.sim.now().as_millis() * 1_000);
        c.apply_chaos(&ev.action);
    }

    c.apply_chaos(&simnet::ChaosAction::ClearLinkChaos);
    c.apply_chaos(&simnet::ChaosAction::Heal);
    for id in c.servers().to_vec() {
        c.apply_chaos(&simnet::ChaosAction::Restart(id));
    }

    let deadline = c.sim.now() + DRAIN_GRACE;
    if !c.run_until_drained(client, deadline) {
        return Err(format!(
            "liveness: storage client still has outstanding ops {} after the \
             schedule healed",
            DRAIN_GRACE
        ));
    }
    obs.set_time_micros(c.sim.now().as_millis() * 1_000);

    let writers = c.clients().to_vec();
    let stats = check_storage_cluster(&c, &writers, m)?;
    Ok(ChaosOutcome {
        fingerprint: c.sim.fingerprint(),
        ops_checked: stats.ops_checked,
        unavailable_reads: stats.unavailable_reads,
        eroded_keys: stats.eroded_keys,
    })
}

/// Shrink a failing schedule to its minimal failing prefix, re-run that
/// prefix with tracing on, and package the full diagnosis.
///
/// `run` is the driver under test ([`run_lock_chaos`] or
/// [`run_storage_chaos`]); `reason` is the failure the caller observed
/// on the full schedule.
pub fn shrink_and_report(
    schedule: &ChaosSchedule,
    test_name: &str,
    reason: String,
    run: impl Fn(&ChaosSchedule, &Obs) -> Result<ChaosOutcome, String>,
) -> ChaosFailure {
    let minimal = schedule
        .minimal_failing_prefix(|s| run(s, &Obs::disabled()).is_err())
        .unwrap_or_else(|| schedule.clone());
    let (obs, _clock) = Obs::simulated();
    let minimal_reason = match run(&minimal, &obs) {
        Err(e) => e,
        // Shrinking re-runs must be deterministic, so this only happens
        // if a driver is nondeterministic — worth reporting loudly.
        Ok(_) => "minimal prefix did not reproduce the failure (nondeterminism!)".to_string(),
    };
    ChaosFailure {
        seed: schedule.seed,
        reason,
        schedule: minimal.to_string(),
        minimal_reason,
        trace_json: obs.trace.to_json_lines(),
        verdicts: obs.alerts.snapshot(),
        repro: repro_command(test_name, schedule.seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::ChaosPlan;

    #[test]
    fn quiet_lock_run_passes_and_fingerprints_identically() {
        let s = ChaosSchedule::empty(11);
        let a = run_lock_chaos(&s, &Obs::disabled()).expect("quiet run is safe");
        let b = run_lock_chaos(&s, &Obs::disabled()).expect("quiet run is safe");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(a.ops_checked > 0, "checker saw completed ops");
    }

    #[test]
    fn quiet_storage_run_passes() {
        let s = ChaosSchedule::empty(12);
        let out = run_storage_chaos(&s, &Obs::disabled()).expect("quiet run is safe");
        assert!(out.ops_checked > 0);
    }

    #[test]
    fn chaotic_lock_run_is_reproducible() {
        let plan = ChaosPlan::lock_service(SimTime::from_secs(45), 10);
        let s = ChaosSchedule::generate(77, &plan);
        let a = run_lock_chaos(&s, &Obs::disabled()).expect("within-margin chaos is safe");
        let b = run_lock_chaos(&s, &Obs::disabled()).expect("within-margin chaos is safe");
        assert_eq!(a.fingerprint, b.fingerprint, "byte-identical reproduction");
    }

    #[test]
    fn failure_report_carries_seed_and_repro() {
        let plan = ChaosPlan::lock_service(SimTime::from_secs(30), 6);
        let s = ChaosSchedule::generate(5, &plan);
        // A synthetic always-failing driver exercises the report path
        // without needing a real bug.
        let fail = shrink_and_report(&s, "lock_sweep", "synthetic".into(), |_, _| {
            Err("synthetic".into())
        });
        assert_eq!(fail.seed, 5);
        assert!(fail.repro.contains("CHAOS_SEED=0x5"));
        let text = fail.to_string();
        assert!(text.contains("reproduce with"));
        assert!(text.contains("chaos schedule seed="));
        // The monitor-verdict block renders even when nothing fired.
        assert!(text.contains("monitor verdicts"));
    }

    #[test]
    fn failure_report_renders_fired_verdicts() {
        let plan = ChaosPlan::lock_service(SimTime::from_secs(30), 6);
        let s = ChaosSchedule::generate(6, &plan);
        // A driver that fires an alert into the re-run's sink before
        // failing: the report must carry the monitor's verdict.
        let fail = shrink_and_report(&s, "lock_sweep", "synthetic".into(), |_, obs| {
            obs.alerts.emit(
                42_000_000,
                "watchdog.liveness",
                obs::Severity::Critical,
                "no progress for 30000000 µs".to_string(),
                Vec::new(),
                Vec::new(),
            );
            Err("synthetic".into())
        });
        assert_eq!(fail.verdicts.len(), 1);
        let text = fail.to_string();
        assert!(text.contains("monitor verdicts (1):"));
        assert!(text.contains("[critical] watchdog.liveness @ 42000000 µs"));
    }
}
