//! Quorum systems: majority, threshold and weighted-majority voting.

use crate::acceptance::{AcceptanceSet, Mask};

/// A quorum system over `n` nodes: decides whether a set of live nodes can
/// make progress. Implementations must be monotone and intersecting (they
/// induce an acceptance set per Definition 1).
pub trait QuorumSystem {
    /// Universe size.
    fn n(&self) -> usize;

    /// Whether the live-node set `mask` contains a quorum.
    fn is_quorum(&self, mask: Mask) -> bool;

    /// Service availability under independent failure probabilities
    /// (the availability of the induced acceptance set, Eq. 1).
    fn availability(&self, fps: &[f64]) -> f64 {
        assert_eq!(fps.len(), self.n(), "fps length mismatch");
        crate::availability::acceptance_availability(self.n(), fps, |m| self.is_quorum(m))
    }

    /// Materialize the induced acceptance set (small `n` only).
    fn acceptance_set(&self) -> AcceptanceSet {
        AcceptanceSet::from_predicate(self.n(), |m| self.is_quorum(m))
    }

    /// Maximum number of simultaneous failures always tolerated.
    fn failure_tolerance(&self) -> usize {
        let full: Mask = ((1u64 << self.n()) - 1) as Mask;
        // Largest f such that every (n-f)-subset is a quorum.
        let mut best = 0;
        'outer: for f in 1..=self.n() {
            for mask in 0..=full {
                if mask.count_ones() as usize == self.n() - f && !self.is_quorum(mask) {
                    break 'outer;
                }
            }
            best = f;
        }
        best
    }
}

/// Simple majority: any `⌊n/2⌋ + 1` nodes (the standard Paxos quorum, §4.1:
/// the paper fixes equal votes for compatibility with Paxos family
/// protocols).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MajorityQuorum {
    n: usize,
}

impl MajorityQuorum {
    /// A majority system over `n` nodes (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!((1..=AcceptanceSet::MAX_NODES).contains(&n));
        MajorityQuorum { n }
    }

    /// The quorum size `⌊n/2⌋ + 1`.
    pub fn quorum_size(&self) -> usize {
        self.n / 2 + 1
    }
}

impl QuorumSystem for MajorityQuorum {
    fn n(&self) -> usize {
        self.n
    }

    fn is_quorum(&self, mask: Mask) -> bool {
        mask.count_ones() as usize >= self.quorum_size()
    }

    fn availability(&self, fps: &[f64]) -> f64 {
        crate::availability::threshold_availability(fps, self.quorum_size())
    }
}

/// Any `k` of `n` nodes. The RS-Paxos write quorum is a threshold system:
/// with erasure coding θ(m, n) any two quorums must intersect in ≥ m nodes
/// so the coded value is reconstructible, hence `k = ⌈(n+m)/2⌉`
/// (θ(3,5) ⇒ k = 4, tolerating only one failure — §5.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdQuorum {
    n: usize,
    k: usize,
}

impl ThresholdQuorum {
    /// A `k`-of-`n` system; requires `n/2 < k ≤ n` so quorums intersect.
    pub fn new(n: usize, k: usize) -> Self {
        assert!((1..=AcceptanceSet::MAX_NODES).contains(&n));
        assert!(k <= n, "threshold above universe");
        assert!(2 * k > n, "k={k} of n={n} quorums would not intersect");
        ThresholdQuorum { n, k }
    }

    /// The RS-Paxos quorum for `n` replicas and θ(m, n) coding:
    /// the smallest `k` with `2k − n ≥ m`.
    pub fn rs_paxos(n: usize, m: usize) -> Self {
        assert!(m >= 1 && m <= n, "invalid erasure parameter m={m}, n={n}");
        let k = (n + m).div_ceil(2);
        Self::new(n, k)
    }

    /// The threshold `k`.
    pub fn threshold(&self) -> usize {
        self.k
    }
}

impl QuorumSystem for ThresholdQuorum {
    fn n(&self) -> usize {
        self.n
    }

    fn is_quorum(&self, mask: Mask) -> bool {
        mask.count_ones() as usize >= self.k
    }

    fn availability(&self, fps: &[f64]) -> f64 {
        crate::availability::threshold_availability(fps, self.k)
    }

    fn failure_tolerance(&self) -> usize {
        self.n - self.k
    }
}

/// Weighted-majority voting: live nodes win when their total weight
/// strictly exceeds half the total (Gifford's weighted voting; the optimal
/// static scheme of Spasojevic & Berman with Eq. 11 weights).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedMajority {
    weights: Vec<u64>,
}

impl WeightedMajority {
    /// A weighted system; total weight must be positive.
    pub fn new(weights: Vec<u64>) -> Self {
        assert!((1..=AcceptanceSet::MAX_NODES).contains(&weights.len()));
        assert!(weights.iter().sum::<u64>() > 0, "all-zero weights");
        WeightedMajority { weights }
    }

    /// The per-node weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    fn total(&self) -> u64 {
        self.weights.iter().sum()
    }
}

impl QuorumSystem for WeightedMajority {
    fn n(&self) -> usize {
        self.weights.len()
    }

    fn is_quorum(&self, mask: Mask) -> bool {
        let live: u64 = self
            .weights
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &w)| w)
            .sum();
        2 * live > self.total()
    }

    fn availability(&self, fps: &[f64]) -> f64 {
        assert_eq!(fps.len(), self.n(), "fps length mismatch");
        crate::availability::weighted_availability(&self.weights, fps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_basics() {
        let q = MajorityQuorum::new(5);
        assert_eq!(q.quorum_size(), 3);
        assert!(q.is_quorum(0b00111));
        assert!(!q.is_quorum(0b00011));
        assert_eq!(q.failure_tolerance(), 2);
        assert!(q.acceptance_set().is_valid());
    }

    #[test]
    fn even_majorities_still_intersect() {
        let q = MajorityQuorum::new(4);
        assert_eq!(q.quorum_size(), 3);
        assert_eq!(q.failure_tolerance(), 1);
    }

    #[test]
    fn rs_paxos_quorum_sizes() {
        // The paper's storage configuration: θ(3,5) ⇒ quorum 4, f = 1.
        let q = ThresholdQuorum::rs_paxos(5, 3);
        assert_eq!(q.threshold(), 4);
        assert_eq!(q.failure_tolerance(), 1);
        // Replication (m = 1) degenerates to simple majority.
        let rep = ThresholdQuorum::rs_paxos(5, 1);
        assert_eq!(rep.threshold(), 3);
        assert_eq!(rep.failure_tolerance(), 2);
        // θ(4,7) ⇒ ⌈11/2⌉ = 6.
        assert_eq!(ThresholdQuorum::rs_paxos(7, 4).threshold(), 6);
    }

    #[test]
    #[should_panic(expected = "intersect")]
    fn non_intersecting_threshold_rejected() {
        ThresholdQuorum::new(4, 2);
    }

    #[test]
    fn weighted_majority_semantics() {
        // Weights 3,1,1: node 0 alone is a quorum (3 > 5/2); nodes 1+2
        // alone are not (2 < 2.5).
        let w = WeightedMajority::new(vec![3, 1, 1]);
        assert!(w.is_quorum(0b001));
        assert!(!w.is_quorum(0b110));
        assert!(w.acceptance_set().is_valid());
    }

    #[test]
    fn weighted_equal_weights_match_majority() {
        let w = WeightedMajority::new(vec![1; 5]);
        let m = MajorityQuorum::new(5);
        for mask in 0..(1u32 << 5) {
            assert_eq!(w.is_quorum(mask), m.is_quorum(mask));
        }
    }

    #[test]
    fn availabilities_agree_between_dp_and_enumeration() {
        let fps = [0.01, 0.2, 0.05, 0.1, 0.3];
        let q = MajorityQuorum::new(5);
        let dp = q.availability(&fps);
        let brute = crate::availability::acceptance_availability(5, &fps, |m| q.is_quorum(m));
        assert!((dp - brute).abs() < 1e-12);

        let w = WeightedMajority::new(vec![4, 2, 1, 1, 1]);
        let dp = w.availability(&fps);
        let brute = crate::availability::acceptance_availability(5, &fps, |m| w.is_quorum(m));
        assert!((dp - brute).abs() < 1e-12);
    }
}
