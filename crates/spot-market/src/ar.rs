//! An alternative price process: AR(1) with a price band.
//!
//! Ben-Yehuda et al. ("Deconstructing Amazon EC2 spot instance pricing",
//! cited by the paper as \[1\]) conjectured that pre-2011 spot prices were
//! *not* market-driven but produced by a hidden autoregressive algorithm
//! banded between a reserve floor and a cap. This module implements that
//! process as a second, structurally different trace generator.
//!
//! Its purpose here is the **model-mismatch ablation**: the paper's
//! failure model assumes a semi-Markov chain over discrete price levels;
//! training it on AR(1)-banded traces measures how gracefully the bidding
//! framework degrades when the market does not match its modelling
//! assumptions.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::instance::InstanceType;
use crate::money::Price;
use crate::topology::Zone;
use crate::trace::{PricePoint, PriceTrace};

/// Parameters of the banded AR(1) process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArParams {
    /// Long-run mean as a fraction of the on-demand price.
    pub mean_fraction: f64,
    /// AR coefficient φ ∈ (0, 1): persistence of deviations.
    pub phi: f64,
    /// Innovation standard deviation as a fraction of the on-demand
    /// price.
    pub sigma_fraction: f64,
    /// Reserve floor as a fraction of the on-demand price.
    pub floor_fraction: f64,
    /// Cap as a fraction of the on-demand price.
    pub cap_fraction: f64,
    /// Mean minutes between AR updates (updates arrive as a Poisson-like
    /// stream; the banded value is re-quoted at each arrival).
    pub mean_update_minutes: f64,
}

impl Default for ArParams {
    fn default() -> Self {
        ArParams {
            mean_fraction: 0.18,
            phi: 0.92,
            sigma_fraction: 0.025,
            floor_fraction: 0.10,
            cap_fraction: 1.2,
            mean_update_minutes: 9.0,
        }
    }
}

/// Deterministic AR(1) trace generator (same interface shape as
/// [`crate::gen::TraceGenerator`]).
#[derive(Clone, Debug)]
pub struct ArTraceGenerator {
    seed: u64,
    params: ArParams,
}

impl ArTraceGenerator {
    /// A generator with default parameters.
    pub fn new(seed: u64) -> Self {
        ArTraceGenerator {
            seed,
            params: ArParams::default(),
        }
    }

    /// A generator with custom parameters.
    pub fn with_params(seed: u64, params: ArParams) -> Self {
        ArTraceGenerator { seed, params }
    }

    fn rng_for(&self, zone: Zone, ty: InstanceType) -> ChaCha8Rng {
        let mut x = self
            .seed
            .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            .wrapping_add(zone.ordinal() as u64 + 101)
            .wrapping_mul(0x1656_67B1_9E37_79F9)
            .wrapping_add(ty as u64 + 11);
        x ^= x >> 30;
        ChaCha8Rng::seed_from_u64(x)
    }

    /// A standard normal via Box–Muller (deterministic from the stream).
    fn gauss(rng: &mut ChaCha8Rng) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Generate `minutes` of AR(1)-banded prices for `(zone, ty)`.
    pub fn generate(&self, zone: Zone, ty: InstanceType, minutes: u64) -> PriceTrace {
        assert!(minutes > 0, "trace length must be positive");
        let mut rng = self.rng_for(zone, ty);
        let od = ty.on_demand_price(zone.region).as_dollars();
        // Mild per-zone personality.
        let mean = od * self.params.mean_fraction * rng.gen_range(0.8..1.25);
        let sigma = od * self.params.sigma_fraction * rng.gen_range(0.7..1.4);
        let floor = od * self.params.floor_fraction;
        let cap = od * self.params.cap_fraction;
        let phi = (self.params.phi * rng.gen_range(0.95..1.02)).clamp(0.5, 0.995);

        let mut x = mean + sigma * Self::gauss(&mut rng);
        let quote =
            |x: f64| -> Price { Price::from_dollars(x.clamp(floor, cap)).round_up_to_tick() };
        let mut points = vec![PricePoint {
            minute: 0,
            price: quote(x),
        }];
        let mut t = 0u64;
        while t < minutes {
            // Next update arrival.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let dt = (-u.ln() * self.params.mean_update_minutes).ceil().max(1.0) as u64;
            t += dt;
            if t >= minutes {
                break;
            }
            x = mean + phi * (x - mean) + sigma * Self::gauss(&mut rng);
            let price = quote(x);
            if points.last().expect("non-empty").price != price {
                points.push(PricePoint { minute: t, price });
            }
        }
        PriceTrace::new(points, minutes)
    }

    /// The parameters.
    pub fn params(&self) -> &ArParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;
    use crate::topology::all_zones;

    fn zone() -> Zone {
        all_zones()[0]
    }

    #[test]
    fn deterministic_and_banded() {
        let g = ArTraceGenerator::new(5);
        let a = g.generate(zone(), InstanceType::M1Small, 20_000);
        let b = g.generate(zone(), InstanceType::M1Small, 20_000);
        assert_eq!(a, b);
        let od = InstanceType::M1Small
            .on_demand_price(zone().region)
            .as_dollars();
        for s in a.segments() {
            let p = s.price.as_dollars();
            assert!(p >= 0.10 * od - 1e-9, "below reserve: {p}");
            assert!(p <= 1.2 * od + 1e-4, "above cap: {p}");
        }
    }

    #[test]
    fn ar_process_is_persistent() {
        // φ ≈ 0.92 ⇒ strongly positive level autocorrelation.
        let g = ArTraceGenerator::new(9);
        let t = g.generate(zone(), InstanceType::M1Small, 4 * 7 * 24 * 60);
        let s = TraceStats::of(&t);
        assert!(
            s.level_autocorr > 0.5,
            "expected persistence, got {}",
            s.level_autocorr
        );
        assert!(s.changes_per_hour > 1.0);
    }

    #[test]
    fn ar_differs_structurally_from_semi_markov() {
        // The AR process quotes on a near-continuous grid: far more
        // distinct price values than the ladder generator's ≤ 24 levels.
        let g = ArTraceGenerator::new(11);
        let t = g.generate(zone(), InstanceType::M1Small, 4 * 7 * 24 * 60);
        let mut distinct: Vec<Price> = t.segments().map(|s| s.price).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(
            distinct.len() > 40,
            "only {} distinct prices",
            distinct.len()
        );
    }

    #[test]
    fn zones_differ() {
        let g = ArTraceGenerator::new(5);
        let a = g.generate(all_zones()[0], InstanceType::M1Small, 5_000);
        let b = g.generate(all_zones()[1], InstanceType::M1Small, 5_000);
        assert_ne!(a, b);
    }
}
