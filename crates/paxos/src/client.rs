//! A closed-loop client: submits one operation at a time, retransmits on
//! timeout, cycles through servers until it finds the leader, and records
//! a full request history (issue time, completion time, response) so the
//! harness can measure service-level availability and latency.

use std::collections::VecDeque;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use simnet::{Context, NodeId, SimTime, TimerToken};

use crate::msg::{ClientOp, Msg};
use crate::replica::StateMachine;

const TICK_TOKEN: TimerToken = TimerToken(1);

/// One completed (or still outstanding) operation in the client history.
#[derive(Clone, Debug)]
pub struct CompletedOp<SM: StateMachine> {
    /// Request id.
    pub req_id: u64,
    /// The submitted operation.
    pub op: ClientOp<SM::Command>,
    /// When the client first issued it.
    pub issued_at: SimTime,
    /// Completion time and response (`None` while outstanding; the inner
    /// response is `None` for reconfigurations).
    pub completed: Option<(SimTime, Option<SM::Response>)>,
}

/// In-flight bookkeeping.
#[derive(Clone, Debug)]
struct InFlight {
    req_id: u64,
    last_sent: SimTime,
    target: usize,
}

/// Client actor state.
#[derive(Clone, Debug)]
pub struct ClientState<SM: StateMachine> {
    me: NodeId,
    servers: Vec<NodeId>,
    tick: SimTime,
    timeout: SimTime,
    next_req: u64,
    queue: VecDeque<ClientOp<SM::Command>>,
    inflight: Option<InFlight>,
    leader_hint: Option<NodeId>,
    history: Vec<CompletedOp<SM>>,
    rng: ChaCha8Rng,
}

impl<SM: StateMachine> ClientState<SM> {
    /// A client that talks to `servers`.
    pub fn new(me: NodeId, servers: Vec<NodeId>, seed: u64) -> Self {
        assert!(!servers.is_empty(), "client needs at least one server");
        ClientState {
            me,
            servers,
            tick: SimTime::from_millis(100),
            timeout: SimTime::from_millis(1_000),
            next_req: 1,
            queue: VecDeque::new(),
            inflight: None,
            leader_hint: None,
            history: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(seed ^ (me.0 as u64).wrapping_mul(0x51_7C_C1_B7)),
        }
    }

    /// Queue an operation for submission (fired from the next tick).
    pub fn submit(&mut self, op: ClientOp<SM::Command>) -> u64 {
        let req_id = self.next_req;
        self.next_req += 1;
        self.queue.push_back(op);
        req_id
    }

    /// Update the server list (after a view change).
    pub fn set_servers(&mut self, servers: Vec<NodeId>) {
        assert!(!servers.is_empty());
        self.servers = servers;
        self.leader_hint = None;
        if let Some(f) = &mut self.inflight {
            f.target = 0;
        }
    }

    /// The full request history.
    pub fn history(&self) -> &[CompletedOp<SM>] {
        &self.history
    }

    /// Number of operations not yet completed (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + usize::from(self.inflight.is_some())
    }

    fn send_current(&mut self, ctx: &mut Context<Msg<SM>>) {
        let Some(f) = &mut self.inflight else { return };
        let entry = self
            .history
            .iter()
            .find(|h| h.req_id == f.req_id)
            .expect("in-flight op recorded");
        let target = match self.leader_hint {
            Some(l) if self.servers.contains(&l) => l,
            _ => self.servers[f.target % self.servers.len()],
        };
        f.last_sent = ctx.now;
        ctx.send(
            target,
            Msg::Request {
                client: self.me,
                req_id: f.req_id,
                op: entry.op.clone(),
            },
        );
    }

    /// Boot: arm the tick.
    pub fn on_start(&mut self, ctx: &mut Context<Msg<SM>>) {
        ctx.set_timer(self.tick, TICK_TOKEN);
    }

    /// Tick: launch queued work, retransmit timed-out requests.
    pub fn on_timer(&mut self, _t: TimerToken, ctx: &mut Context<Msg<SM>>) {
        ctx.set_timer(self.tick, TICK_TOKEN);
        if self.inflight.is_none() {
            if let Some(op) = self.queue.pop_front() {
                let req_id = self.next_issue_id();
                self.history.push(CompletedOp {
                    req_id,
                    op,
                    issued_at: ctx.now,
                    completed: None,
                });
                self.inflight = Some(InFlight {
                    req_id,
                    last_sent: ctx.now,
                    target: self.rng.gen_range(0..self.servers.len()),
                });
                self.send_current(ctx);
            }
            return;
        }
        let timed_out = self
            .inflight
            .as_ref()
            .map(|f| ctx.now.saturating_sub(f.last_sent) >= self.timeout)
            .unwrap_or(false);
        if timed_out {
            if let Some(f) = &mut self.inflight {
                f.target += 1;
            }
            self.leader_hint = None;
            self.send_current(ctx);
        }
    }

    fn next_issue_id(&mut self) -> u64 {
        // History ids must match submission order: reuse the counter
        // sequence 1, 2, … in FIFO order.
        let issued = self.history.len() as u64;
        issued + 1
    }

    /// Message dispatch (responses only).
    pub fn on_message(&mut self, from: NodeId, msg: Msg<SM>, _ctx: &mut Context<Msg<SM>>) {
        if let Msg::Response { req_id, resp } = msg {
            let matches = self
                .inflight
                .as_ref()
                .map(|f| f.req_id == req_id)
                .unwrap_or(false);
            if matches {
                self.inflight = None;
                self.leader_hint = Some(from);
                let now = _ctx.now;
                if let Some(h) = self.history.iter_mut().find(|h| h.req_id == req_id) {
                    h.completed = Some((now, resp));
                }
            }
        }
    }
}
