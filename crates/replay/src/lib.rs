//! # replay — the trace-replay experiment harness
//!
//! Drives the bidding framework against a (synthetic) spot market exactly
//! the way the paper's evaluation does (§5): train the per-zone failure
//! models on a history prefix, then replay an evaluation span interval by
//! interval —
//!
//! 1. shortly before each interval boundary, snapshot every zone (price,
//!    sojourn age), let the strategy bid, and launch the new fleet
//!    (startup delays per region apply; old instances are terminated at
//!    the boundary, so replacements overlap with the outgoing fleet as the
//!    paper prescribes);
//! 2. during the interval, instances die at the first minute their zone's
//!    price strictly exceeds their bid (out-of-bid termination; no
//!    re-bidding until the next boundary — unless a
//!    [`repair::RepairPolicy`] is active, in which case the repair
//!    controller rebids the missing slots mid-interval with exponential
//!    backoff, escalating to on-demand fallbacks under `Hybrid`);
//! 3. account **cost** with the 2014 billing rules (free provider-killed
//!    partial hours, charged user-terminated partial hours) and
//!    **availability** as the fraction of minutes a quorum of the current
//!    group is running — the paper's replay measures out-of-bid downtime
//!    ("cost and availability … are certained with the given spot prices
//!    data").
//!
//! [`experiments`] packages the paper's figures (4 through 9 plus the
//! headline savings and the ablations) as callable drivers returning
//! structured rows; [`service_level`] replays shorter windows against the
//! *actual* Paxos lock service / RS-Paxos store with injected crashes, for
//! the feasibility check (§5.4) where message-level behaviour matters.

pub mod adaptive;
pub mod autoscale;
pub mod chaos;
pub mod experiments;
pub mod fleet;
pub mod lifecycle;
pub mod repair;
pub mod results;
pub mod scenario;
pub mod service_level;

pub use adaptive::{replay_adaptive, replay_adaptive_stored, AdaptiveConfig};
pub use autoscale::{demand_series, AutoScaler, AutoscaleConfig, ObservedInterval, ScaleAction};
pub use chaos::{capacity_fault_schedule, market_fault_schedule};
pub use fleet::{fleet_replay, fleet_replay_observed, FleetResult};
pub use lifecycle::{
    replay_autoscale_stored, replay_repair_stored, replay_strategy, replay_strategy_observed,
    replay_strategy_stored, InstanceRecord, ReplayConfig,
};
pub use repair::{RepairConfig, RepairPolicy};
pub use results::{IntervalOutcome, ReplayResult};
pub use scenario::{CellOutcome, Scenario, StrategyFactory, SweepSpec};
pub use service_level::{record_latency_slo, record_trace_metrics};
