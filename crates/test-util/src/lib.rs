//! # test-util — shared fixtures, seeded RNG plumbing and safety checkers
//!
//! Support code for the workspace's test suites, in four layers:
//!
//! * [`rng`] — seed derivation and seeded-RNG construction, so every test
//!   spells randomness the same way and every failure prints a
//!   reproducing seed;
//! * [`env`] — the `CHAOS_SCHEDULES` / `CHAOS_SEED` environment knobs and
//!   the exact re-run command a failing chaos test prints;
//! * [`fixtures`] — the synthetic-market and cluster constructions that
//!   used to be copy-pasted across the root integration tests;
//! * [`check`] + [`chaos`] — the safety checkers (lock invariants for the
//!   Paxos lock service, read-your-writes / decoded-value for RS-Paxos
//!   θ(3,5)) and the drivers that run a [`simnet::ChaosSchedule`] against
//!   a live cluster and report failures with seed, schedule, and obs
//!   trace attached.
//!
//! This crate is a test dependency only: nothing in the shipped library
//! path depends on it, so the `paxos`/`storage` crates stay free of
//! dev-dependency cycles (the chaos suites that need both live in the
//! workspace root's `tests/`).

pub mod chaos;
pub mod check;
pub mod env;
pub mod fixtures;
pub mod rng;

pub use chaos::{
    run_lock_chaos, run_lock_chaos_batched, run_storage_chaos, run_storage_chaos_batched,
    shrink_and_report, ChaosFailure, ChaosOutcome,
};
pub use check::{check_lock_cluster, check_storage_cluster};
pub use env::{chaos_schedules, chaos_seed, repro_command};
pub use fixtures::{
    hetero_market_days, lock_cluster, market_days, quick_market, repair_pair, storage_cluster,
};
pub use rng::{derive_seed, rng_from};
