//! Auto-scaler demo: replay a heterogeneous m1.small + m3.large fleet
//! under a diurnal load curve and print where the capacity came from.
//!
//! ```text
//! cargo run --release --example autoscaler
//! ```

use spot_jupiter::jupiter::{JupiterStrategy, ModelStore, ServiceSpec};
use spot_jupiter::obs::Obs;
use spot_jupiter::replay::experiments::{diurnal_rate, PER_STRENGTH_THROUGHPUT};
use spot_jupiter::replay::{
    demand_series, replay_autoscale_stored, AutoScaler, AutoscaleConfig, RepairConfig,
    ReplayConfig,
};
use spot_jupiter::spot_market::{InstanceType, Market, MarketConfig};

fn main() {
    // Ten days of per-type market history across four zones: five train
    // days, five evaluation days.
    let mut cfg = MarketConfig::hetero_paper(2014, 10 * 24 * 60);
    cfg.zones.truncate(4);
    let market = Market::generate(cfg);
    let train = 5 * 24 * 60;

    let pools = [InstanceType::M1Small, InstanceType::M3Large];
    let spec = ServiceSpec::lock_service().with_pools(&pools);
    println!(
        "service: {} over {{{}}}, diurnal load {:.0}..{:.0} req/s",
        spec.name,
        pools.map(|t| t.api_name()).join(", "),
        diurnal_rate(0.0),
        diurnal_rate(43_200.0),
    );

    // The controller re-targets the fleet's serving strength at every
    // 3-hour bidding boundary from the sampled demand curve; Jupiter then
    // buys that strength from whichever (zone, type) pools are cheapest.
    let demand = demand_series(diurnal_rate, train, market.horizon(), 60, PER_STRENGTH_THROUGHPUT);
    let mut scaler = AutoScaler::new(
        AutoscaleConfig {
            min_strength: 4,
            max_strength: 24,
            ..AutoscaleConfig::default()
        },
        demand,
    );
    let (obs, _clock) = Obs::simulated();
    let result = replay_autoscale_stored(
        &market,
        &spec,
        JupiterStrategy::new(),
        ReplayConfig::new(train, market.horizon(), 3),
        RepairConfig::off(),
        |_| 180,
        &ModelStore::new(),
        &mut scaler,
        &obs,
    );

    println!("\nper-pool allocation:");
    println!(
        "{:<18} {:<10} {:>7} {:>10} {:>12} {:>10}",
        "zone", "type", "weight", "instances", "node-hours", "cost ($)"
    );
    for ((zone, ty), cost) in result.cost_by_pool() {
        let in_pool = result
            .instances
            .iter()
            .filter(|rec| rec.zone == zone && rec.instance_type == ty);
        let (mut launched, mut minutes) = (0u64, 0u64);
        for rec in in_pool {
            launched += 1;
            minutes += rec.ended_at - rec.granted_at;
        }
        println!(
            "{:<18} {:<10} {:>7} {:>10} {:>12.1} {:>10.2}",
            zone.name(),
            ty.api_name(),
            ty.capacity_weight(),
            launched,
            minutes as f64 / 60.0,
            cost.as_dollars()
        );
    }

    let (outs, ins) = scaler.scale_events();
    println!(
        "\navailability {:.6}, total ${:.2} ({} scale-outs, {} scale-ins, final target {})",
        result.availability(),
        result.total_cost.as_dollars(),
        outs,
        ins,
        scaler.target()
    );
}
