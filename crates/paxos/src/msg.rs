//! Wire messages, log entries and quorum rules.

use simnet::NodeId;

pub use quorum::QuorumRule;

use crate::ballot::{Ballot, Slot};
use crate::replica::StateMachine;

/// An operation a client may submit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientOp<C> {
    /// An application command for the state machine.
    App(C),
    /// A membership change: add `add`, then remove `remove`.
    Reconfig {
        /// Nodes to add to the view.
        add: Vec<NodeId>,
        /// Nodes to remove from the view.
        remove: Vec<NodeId>,
    },
}

/// One client operation inside a [`Command::Batch`]: the same
/// (client, req_id, cmd) triple as [`Command::App`], without the enum
/// overhead, so a batch is a flat run of entries applied atomically in
/// one slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchEntry<C> {
    /// Originating client node.
    pub client: NodeId,
    /// Client-local request id (monotone per client).
    pub req_id: u64,
    /// The state-machine command.
    pub cmd: C,
}

/// A value agreed on for a log slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command<C> {
    /// An application command, tagged with its originator for routing the
    /// response and deduplicating retransmissions.
    App {
        /// Originating client node.
        client: NodeId,
        /// Client-local request id (monotone per client).
        req_id: u64,
        /// The state-machine command.
        cmd: C,
    },
    /// Membership change (applies from the next slot onward).
    Reconfig {
        /// Originating client node.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// Nodes to add.
        add: Vec<NodeId>,
        /// Nodes to remove.
        remove: Vec<NodeId>,
    },
    /// Several application commands agreed on as one slot value. The
    /// entries are applied in order within the slot, atomically: a batch
    /// is either entirely chosen (and thus entirely applied on every
    /// replica) or not chosen at all. Invariants: never empty, never
    /// nested, and at most one entry per (client, req_id).
    Batch(Vec<BatchEntry<C>>),
    /// A no-op used to fill gaps during leader recovery.
    Noop,
}

/// A slot's accepted (not necessarily chosen) state, carried in promises.
#[derive(Clone, Debug)]
pub struct AcceptedEntry<C> {
    /// The slot this entry belongs to.
    pub slot: Slot,
    /// The ballot at which it was accepted.
    pub ballot: Ballot,
    /// The value.
    pub value: Command<C>,
}

/// A chosen slot value, carried in promises, commits and catch-up replies.
#[derive(Clone, Debug)]
pub struct ChosenEntry<C> {
    /// The slot.
    pub slot: Slot,
    /// The chosen value.
    pub value: Command<C>,
}

/// A state snapshot replacing the compacted log prefix: the applied state
/// machine plus everything a replica needs to resume from `applied`.
#[derive(Clone, Debug)]
pub struct SnapshotData<SM: StateMachine> {
    /// Every slot below this is applied into `sm`.
    pub applied: Slot,
    /// The membership view as of `applied`.
    pub view: Vec<NodeId>,
    /// Number of reconfigurations applied.
    pub view_id: u64,
    /// The state machine at `applied`.
    pub sm: SM,
    /// The exactly-once cache at `applied`.
    pub dedup: Vec<(NodeId, u64, Option<SM::Response>)>,
}

/// The protocol messages. `SM` fixes both command and response types.
#[derive(Clone, Debug)]
pub enum Msg<SM: StateMachine> {
    /// Phase-1a: a candidate asks for promises from `from_slot` on.
    Prepare {
        /// The candidate's ballot.
        ballot: Ballot,
        /// Slots below this are already chosen at the candidate.
        from_slot: Slot,
    },
    /// Phase-1b: promise not to accept lower ballots; reports state.
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// Accepted-but-not-chosen entries at or above `from_slot`.
        accepted: Vec<AcceptedEntry<SM::Command>>,
        /// Chosen entries at or above the candidate's `from_slot` (and
        /// above the acceptor's compaction floor).
        chosen: Vec<ChosenEntry<SM::Command>>,
        /// The acceptor's first unchosen slot.
        commit_index: Slot,
        /// The acceptor's snapshot, included when the candidate asked for
        /// slots below the acceptor's compaction floor.
        snapshot: Option<SnapshotData<SM>>,
    },
    /// Phase-2a: accept request for one slot.
    Accept {
        /// The leader's ballot.
        ballot: Ballot,
        /// Target slot.
        slot: Slot,
        /// Proposed value.
        value: Command<SM::Command>,
    },
    /// Phase-2b: the acceptor accepted.
    Accepted {
        /// Echoed ballot.
        ballot: Ballot,
        /// Echoed slot.
        slot: Slot,
    },
    /// Nack: the sender has promised a higher ballot.
    Reject {
        /// The higher promised ballot.
        promised: Ballot,
    },
    /// Leader → all: a value is chosen.
    Commit {
        /// The chosen entry.
        entry: ChosenEntry<SM::Command>,
    },
    /// Leader liveness + commit-index gossip.
    Heartbeat {
        /// The leader's ballot.
        ballot: Ballot,
        /// The leader's first unchosen slot.
        commit_index: Slot,
    },
    /// A lagging replica asks for chosen entries from `from_slot`.
    CatchupRequest {
        /// First missing slot.
        from_slot: Slot,
    },
    /// Response to [`Msg::CatchupRequest`].
    CatchupReply {
        /// A snapshot, when the requested slots were compacted away.
        snapshot: Option<SnapshotData<SM>>,
        /// A batch of chosen entries (above the snapshot, if any).
        entries: Vec<ChosenEntry<SM::Command>>,
    },
    /// Client → replica (possibly forwarded): submit an operation.
    Request {
        /// The originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// The operation.
        op: ClientOp<SM::Command>,
    },
    /// Replica → client: the operation was applied.
    Response {
        /// Echoed request id.
        req_id: u64,
        /// The state machine's response (`None` for reconfigurations).
        resp: Option<SM::Response>,
        /// The responder's applied index after this operation took
        /// effect. Clients carry the maximum seen as their session
        /// `floor`, which gates follower-served reads (session
        /// monotonicity).
        at: Slot,
    },
    /// Client → replica: a read-only command the replica may answer
    /// locally from its applied state, without going through the log.
    ReadRequest {
        /// The originating client.
        client: NodeId,
        /// Client-local request id.
        req_id: u64,
        /// The read-only command ([`StateMachine::is_read_only`]).
        cmd: SM::Command,
        /// The client's session floor: the applied index its last
        /// acknowledged write reached. The replica must not answer
        /// until its own applied index is at least this.
        floor: Slot,
    },
    /// Replica → client: a locally served read.
    ReadResponse {
        /// Echoed request id.
        req_id: u64,
        /// The read's result, evaluated at the replica's applied state.
        resp: SM::Response,
        /// The replica's applied index at evaluation time.
        at: Slot,
    },
}

/// Message kind names, indexed by [`Msg::kind_index`]. Used to label
/// per-type observability counters.
pub const MSG_KINDS: [&str; 13] = [
    "prepare",
    "promise",
    "accept",
    "accepted",
    "reject",
    "commit",
    "heartbeat",
    "catchup_request",
    "catchup_reply",
    "request",
    "response",
    "read_request",
    "read_response",
];

impl<SM: StateMachine> Msg<SM> {
    /// Stable snake_case name of this message's variant.
    pub fn kind(&self) -> &'static str {
        MSG_KINDS[self.kind_index()]
    }

    /// Index of this variant into [`MSG_KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Msg::Prepare { .. } => 0,
            Msg::Promise { .. } => 1,
            Msg::Accept { .. } => 2,
            Msg::Accepted { .. } => 3,
            Msg::Reject { .. } => 4,
            Msg::Commit { .. } => 5,
            Msg::Heartbeat { .. } => 6,
            Msg::CatchupRequest { .. } => 7,
            Msg::CatchupReply { .. } => 8,
            Msg::Request { .. } => 9,
            Msg::Response { .. } => 10,
            Msg::ReadRequest { .. } => 11,
            Msg::ReadResponse { .. } => 12,
        }
    }
}
