//! Property-based tests of the semi-Markov failure model.

use proptest::prelude::*;
use spot_market::{Price, PricePoint, PriceTrace};
use spot_model::{FailureModel, FailureModelConfig, FrozenKernel};

/// Strategy: a random multi-level trace with enough transitions to train.
fn training_trace() -> impl Strategy<Value = PriceTrace> {
    (
        proptest::collection::vec((1u64..30, 0usize..5), 20..120),
        proptest::collection::vec(50u64..5_000, 5..=5),
    )
        .prop_map(|(steps, levels)| {
            let mut levels: Vec<Price> = levels
                .into_iter()
                .map(|m| Price::from_micros(m * 100))
                .collect();
            levels.sort_unstable();
            levels.dedup();
            let mut points = vec![PricePoint {
                minute: 0,
                price: levels[0],
            }];
            let mut t = 0;
            for (dt, idx) in steps {
                t += dt;
                let price = levels[idx % levels.len()];
                if points.last().expect("non-empty").price != price {
                    points.push(PricePoint { minute: t, price });
                }
            }
            PriceTrace::new(points, t + 30)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hazards are probabilities; next-state distributions sum to one.
    #[test]
    fn kernel_outputs_are_probabilities(trace in training_trace(), age in 1u32..50) {
        let k = FrozenKernel::from_trace(&trace);
        for i in 0..k.n_states() as u16 {
            let h = k.hazard(i, age);
            prop_assert!((0.0..=1.0).contains(&h), "hazard {h}");
            let d = k.next_state_dist(i, age);
            let sum: f64 = d.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "dist sums to {sum}");
            prop_assert!(d.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
        }
    }

    /// The kernel rows `Σ_{j,k} q̂` never exceed 1 (Eq. 13 normalization).
    #[test]
    fn kernel_rows_are_subnormalized(trace in training_trace()) {
        let k = FrozenKernel::from_trace(&trace);
        for i in 0..k.n_states() as u16 {
            let mut row = 0.0;
            for j in 0..k.n_states() as u16 {
                for kk in 1..=40u32 {
                    row += k.q(i, j, kk);
                }
            }
            prop_assert!(row <= 1.0 + 1e-9, "row {i} = {row}");
        }
    }

    /// Estimated failure probabilities are probabilities, are 1 below the
    /// market price, never fall below FP⁰, and decrease as the bid rises.
    #[test]
    fn fp_estimates_behave(trace in training_trace(), horizon in 10u32..300) {
        let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
        let now = trace.horizon() - 1;
        let spot = trace.price_at(now);
        let age = trace.sojourn_age_at(now) as u32;

        let below = Price::from_micros(spot.as_micros().saturating_sub(100));
        if below < spot {
            prop_assert_eq!(model.estimate_fp(below, spot, age, horizon), 1.0);
        }
        let mut last = 1.0 + 1e-12;
        for mult in [10u64, 12, 15, 20, 30] {
            let bid = Price::from_micros(spot.as_micros() * mult / 10);
            let fp = model.estimate_fp(bid, spot, age, horizon);
            prop_assert!((0.0..=1.0).contains(&fp));
            prop_assert!(fp >= 0.01 - 1e-9, "fp {fp} below FP⁰");
            prop_assert!(fp <= last + 1e-9, "fp not monotone in bid");
            last = fp;
        }
    }

    /// Absorbing estimates dominate expectation estimates (an instance
    /// that is out-of-bid for any minute has certainly been killed).
    #[test]
    fn absorbing_dominates_expectation(trace in training_trace(), horizon in 10u32..200) {
        let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
        let now = trace.horizon() - 1;
        let spot = trace.price_at(now);
        let age = trace.sojourn_age_at(now) as u32;
        for mult in [10u64, 15, 25] {
            let bid = Price::from_micros(spot.as_micros() * mult / 10);
            let e = model.estimate_fp(bid, spot, age, horizon);
            let a = model.estimate_fp_absorbing(bid, spot, age, horizon);
            prop_assert!(a >= e - 1e-9, "absorbing {a} < expectation {e}");
        }
    }

    /// Refit equivalence: a kernel grown incrementally — observe the
    /// trace in segments via a builder, freeze a snapshot midway, then
    /// fork-extend the frozen kernel with the remaining segments — yields
    /// the same `q` / `hazard` / `mean_sojourn` values as a one-shot fit
    /// over the same segment windows.
    #[test]
    fn incremental_refit_equals_one_shot(
        trace in training_trace(),
        cut_pct in 10u64..90,
        freeze_pct in 20u64..80,
    ) {
        use spot_model::{KernelBuilder, MAX_SOJOURN_MINUTES};
        let horizon = trace.horizon();
        let cut = (horizon * cut_pct / 100).max(1);
        let freeze_at = (cut * freeze_pct / 100).max(1);
        // Segment windows (each right-censors its own tail — the windows,
        // not the full trace, are the ground truth both sides must match).
        let segments = [
            trace.window(0, freeze_at),
            trace.window(freeze_at, cut),
            trace.window(cut, horizon),
        ];

        // One-shot: a single builder over every segment.
        let mut one_shot = KernelBuilder::new();
        for s in &segments {
            one_shot.observe_trace(s);
        }
        let one_shot = one_shot.freeze();

        // Incremental: builder for the first segment, freeze, then
        // copy-on-write extend per remaining segment.
        let mut builder = KernelBuilder::new();
        builder.observe_trace(&segments[0]);
        let mut incremental = builder.freeze();
        for s in &segments[1..] {
            incremental = incremental.extend(s);
        }

        prop_assert_eq!(incremental.prices(), one_shot.prices());
        prop_assert_eq!(incremental.total_transitions(), one_shot.total_transitions());
        let n = one_shot.n_states() as u16;
        for i in 0..n {
            prop_assert_eq!(
                incremental.mean_sojourn(i).to_bits(),
                one_shot.mean_sojourn(i).to_bits(),
                "mean_sojourn({}) diverged", i
            );
            for age in [1u32, 2, 7, 30, MAX_SOJOURN_MINUTES as u32] {
                prop_assert_eq!(
                    incremental.hazard(i, age).to_bits(),
                    one_shot.hazard(i, age).to_bits(),
                    "hazard({}, {}) diverged", i, age
                );
            }
            for j in 0..n {
                for k in [1u32, 3, 11, 60] {
                    prop_assert_eq!(
                        incremental.q(i, j, k).to_bits(),
                        one_shot.q(i, j, k).to_bits(),
                        "q({}, {}, {}) diverged", i, j, k
                    );
                }
            }
        }
    }

    /// The minimum-bid search returns a feasible bid below the cap that
    /// indeed meets the target, and no cheaper price level does.
    #[test]
    fn min_bid_is_minimal_and_feasible(trace in training_trace(), target in 0.02f64..0.5) {
        let model = FailureModel::from_trace(&trace, FailureModelConfig::default());
        let now = trace.horizon() - 1;
        let spot = trace.price_at(now);
        let age = trace.sojourn_age_at(now) as u32;
        let cap = Price::from_micros(spot.as_micros() * 100);
        if let Some(bid) = model.min_bid_for_fp(target, spot, age, 120, cap) {
            prop_assert!(bid >= spot && bid < cap);
            let fp = model.estimate_fp(bid, spot, age, 120);
            prop_assert!(fp <= target + 1e-9, "chosen bid misses target");
            // No strictly cheaper kernel level within [spot, bid) works.
            for &level in model.kernel().prices() {
                if level >= spot && level < bid {
                    let f = model.estimate_fp(level, spot, age, 120);
                    prop_assert!(f > target, "cheaper level {level} also feasible");
                }
            }
        }
    }
}
