//! System-level property tests: accounting invariants of the trace-replay
//! engine under randomized markets and strategies.

use proptest::prelude::*;
use spot_jupiter::jupiter::{ExtraStrategy, JupiterStrategy, ModelStore, ServiceSpec};
use spot_jupiter::obs::{AuditKind, Obs};
use spot_jupiter::replay::lifecycle::{replay_repair_stored, replay_strategy};
use spot_jupiter::replay::{RepairConfig, ReplayConfig};
use spot_jupiter::spot_market::{BidEra, InstanceType, Price, Termination};
use test_util::{derive_seed, hetero_market_days, market_days as market};

proptest! {
    // Each case replays several simulated days; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn replay_accounting_invariants(
        seed in any::<u64>(),
        zones in 4usize..8,
        extra in 0usize..3,
        portion in 0.05f64..0.4,
        interval in 1u64..12,
    ) {
        let m = market(seed, zones, 6);
        let spec = ServiceSpec::lock_service();
        let train = 3 * 24 * 60;
        let config = ReplayConfig::new(train, 6 * 24 * 60, interval);
        let r = replay_strategy(&m, &spec, ExtraStrategy::new(extra, portion), config);

        // Window accounting.
        prop_assert_eq!(r.window_minutes, 3 * 24 * 60);
        prop_assert!(r.up_minutes <= r.window_minutes);

        // Interval accounting: up time bounded by interval length; the
        // intervals tile the window.
        let mut covered = 0;
        for (i, iv) in r.intervals.iter().enumerate() {
            let end = r
                .intervals
                .get(i + 1)
                .map(|n| n.start)
                .unwrap_or(config.eval_end);
            prop_assert!(iv.up_minutes <= end - iv.start, "interval overflow");
            covered += end - iv.start;
        }
        prop_assert_eq!(covered, r.window_minutes);
        let interval_up: u64 = r.intervals.iter().map(|i| i.up_minutes).sum();
        prop_assert_eq!(interval_up, r.up_minutes);

        // Instance records: lifetimes ordered and inside the horizon; the
        // total cost is exactly the sum of the per-instance charges.
        let mut total = spot_jupiter::spot_market::Price::ZERO;
        for rec in &r.instances {
            prop_assert!(rec.granted_at <= rec.ended_at);
            prop_assert!(rec.ended_at <= config.eval_end);
            total += rec.cost;
        }
        prop_assert_eq!(total, r.total_cost);

        // Determinism: the same inputs replay identically.
        let r2 = replay_strategy(&m, &spec, ExtraStrategy::new(extra, portion), config);
        prop_assert_eq!(r.total_cost, r2.total_cost);
        prop_assert_eq!(r.up_minutes, r2.up_minutes);
        prop_assert_eq!(r.instances.len(), r2.instances.len());
    }

    #[test]
    fn repair_accounting_invariants(
        seed in any::<u64>(),
        zones in 4usize..8,
        portion in 0.01f64..0.2,
        interval in 2u64..9,
        hybrid in any::<bool>(),
    ) {
        // The repair controller's books under randomized churny markets:
        // every charge is attributed exactly once (total = spot + on-demand,
        // summed from the per-instance records), the fleet never exceeds
        // the decided group size even while repairing, and the repair
        // counters reconcile with the replay's death counters.
        let m = market(seed, zones, 6);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(3 * 24 * 60, 6 * 24 * 60, interval);
        let repair = if hybrid { RepairConfig::hybrid() } else { RepairConfig::reactive() };
        let (obs, _clock) = Obs::simulated();
        let r = replay_repair_stored(
            &m,
            &spec,
            ExtraStrategy::new(0, portion),
            config,
            repair,
            &ModelStore::new(),
            &obs,
        );

        // No double-billing: the ledger splits exactly into spot and
        // on-demand charges, record by record.
        let mut spot = Price::ZERO;
        let mut on_demand = Price::ZERO;
        for rec in &r.instances {
            if rec.on_demand {
                on_demand += rec.cost;
            } else {
                spot += rec.cost;
            }
        }
        prop_assert_eq!(spot + on_demand, r.total_cost);
        prop_assert_eq!(on_demand, r.on_demand_cost);
        prop_assert_eq!(spot, r.spot_cost());
        if !hybrid {
            prop_assert_eq!(r.on_demand_cost, Price::ZERO);
            prop_assert!(r.instances.iter().all(|rec| !rec.on_demand));
        }

        // The fleet never exceeds the configured group size: repair
        // refills toward the interval's decided strength, never past it.
        for iv in &r.intervals {
            prop_assert!(
                iv.max_live <= iv.group_size,
                "interval at {}: {} live > group {}",
                iv.start, iv.max_live, iv.group_size
            );
            prop_assert!(iv.degraded_minutes <= r.window_minutes);
        }
        let degraded: u64 = r.intervals.iter().map(|i| i.degraded_minutes).sum();
        prop_assert_eq!(degraded, r.degraded_minutes);

        // Counter reconciliation: with repair active every out-of-bid
        // death is detected (in-window at the repair cursor or counted
        // too-late at the interval edge), and replacements never exceed
        // detections.
        let snap = r.metrics.as_ref().expect("observed replay");
        let deaths = snap.counter("replay.death.out_of_bid").unwrap_or(0);
        let detected = snap.counter("repair.deaths_detected").unwrap_or(0);
        prop_assert_eq!(detected, deaths);
        let spot_repl = snap.counter("repair.spot_replacements").unwrap_or(0);
        let od_launch = snap.counter("repair.on_demand_launches").unwrap_or(0);
        prop_assert!(spot_repl + od_launch <= detected,
            "replacements {} exceed detected deaths {}", spot_repl + od_launch, detected);
        prop_assert_eq!(snap.counter("repair.degraded_minutes").unwrap_or(0), r.degraded_minutes);
        if !hybrid {
            prop_assert_eq!(snap.counter("repair.on_demand_launches").unwrap_or(0), 0);
        }
    }

    #[test]
    fn hetero_billing_decomposes_by_pool(
        seed in any::<u64>(),
        zones in 4usize..8,
        min_strength in 5u32..11,
        hybrid in any::<bool>(),
    ) {
        // The heterogeneous-fleet ledger: charges split exactly into
        // per-(zone, type) pools and into spot vs on-demand with no
        // double billing; every instance ran in a declared pool; every
        // boundary decision reaches the strength floor; and (repair off)
        // the capacity-weighted live fleet never exceeds the strength
        // the boundary decision bought.
        let m = hetero_market_days(seed, zones, 6);
        let pools = [InstanceType::M1Small, InstanceType::M3Large];
        let spec = ServiceSpec::lock_service()
            .with_pools(&pools)
            .with_min_strength(min_strength);
        let config = ReplayConfig::new(3 * 24 * 60, 6 * 24 * 60, 6);
        let repair = if hybrid { RepairConfig::hybrid() } else { RepairConfig::off() };
        let (obs, _clock) = Obs::simulated();
        let r = replay_repair_stored(
            &m,
            &spec,
            JupiterStrategy::new(),
            config,
            repair,
            &ModelStore::new(),
            &obs,
        );

        // total = Σ per-(zone, type) pool charges = Σ spot + Σ on-demand.
        let pooled = r
            .cost_by_pool()
            .iter()
            .fold(Price::ZERO, |acc, &(_, c)| acc + c);
        prop_assert_eq!(pooled, r.total_cost);
        let mut spot = Price::ZERO;
        let mut on_demand = Price::ZERO;
        for rec in &r.instances {
            prop_assert!(
                pools.contains(&rec.instance_type),
                "instance billed to undeclared pool {:?}", rec.instance_type
            );
            if rec.on_demand {
                on_demand += rec.cost;
            } else {
                spot += rec.cost;
            }
        }
        prop_assert_eq!(spot + on_demand, r.total_cost);
        prop_assert_eq!(on_demand, r.on_demand_cost);

        // The audited boundary decisions are the strength targets the
        // launch pass worked toward (instances carry over boundaries, so
        // grant times can't reconstruct the decision).
        let audits = obs.audit.snapshot();
        for (i, iv) in r.intervals.iter().enumerate() {
            let end = r
                .intervals
                .get(i + 1)
                .map(|n| n.start)
                .unwrap_or(config.eval_end);
            let decided: u32 = audits
                .iter()
                .filter(|a| a.at_minute == iv.start.saturating_sub(config.decision_lead))
                .filter_map(|a| match &a.kind {
                    AuditKind::BidSelection {
                        capacity_weight, ..
                    } => Some(*capacity_weight as u32),
                    _ => None,
                })
                .sum();
            prop_assert!(
                decided >= min_strength,
                "interval at {}: decided strength {} below floor {}",
                iv.start, decided, min_strength
            );
            if !hybrid {
                // Sweep the interval's live set: capacity-weighted peak
                // occupancy never exceeds the decided strength (deltas
                // sort negatives first, so boundary swaps don't
                // double-count). The next boundary's decision fires
                // `decision_lead` minutes early and its grants overlap
                // this interval's tail — those belong to the next
                // interval's books, so clip them out.
                let mut events: Vec<(u64, i64)> = Vec::new();
                for rec in r.instances.iter().filter(|rec| {
                    rec.running_from < rec.ended_at
                        && rec.running_from < end
                        && rec.ended_at > iv.start
                        && rec.granted_at < end.saturating_sub(config.decision_lead)
                }) {
                    let w = i64::from(rec.instance_type.capacity_weight());
                    events.push((rec.running_from.max(iv.start), w));
                    events.push((rec.ended_at.min(end), -w));
                }
                events.sort_unstable();
                let (mut live, mut peak) = (0i64, 0i64);
                for (_, delta) in events {
                    live += delta;
                    peak = peak.max(live);
                }
                prop_assert!(
                    peak <= i64::from(decided),
                    "interval at {}: live strength {} exceeds decided {}",
                    iv.start, peak, decided
                );
            }
        }
    }

    #[test]
    fn capacity_era_invariants(
        seed in any::<u64>(),
        zones in 4usize..8,
        interval in 2u64..9,
    ) {
        // The capacity regime's contract under randomized markets: kills
        // follow the hidden capacity process (announced, never silent),
        // the books reconcile record by record, the slot accounting never
        // exceeds the decided group even mid-drain, and the replay is
        // deterministic.
        let m = market(seed, zones, 6);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(3 * 24 * 60, 6 * 24 * 60, interval)
            .with_era(BidEra::CapacityReclaim);
        let run = |repair: RepairConfig| {
            let (obs, _clock) = Obs::simulated();
            replay_repair_stored(
                &m,
                &spec,
                ExtraStrategy::new(0, 0.1),
                config,
                repair,
                &ModelStore::new(),
                &obs,
            )
        };
        let r = run(RepairConfig::migrate());

        // Billing reconciles record by record; the migration policy's
        // spot-only fallback never bills on-demand, so the drain window
        // (victim billed to its kill, replacement from its grant) is the
        // only deliberate overlap in the ledger.
        let mut total = Price::ZERO;
        for rec in &r.instances {
            prop_assert!(rec.granted_at <= rec.ended_at);
            prop_assert!(!rec.on_demand, "migration billed an on-demand instance");
            total += rec.cost;
        }
        prop_assert_eq!(total, r.total_cost);
        prop_assert_eq!(r.on_demand_cost, Price::ZERO);

        // The slot books never exceed the decided group even while a
        // drained victim and its replacement overlap.
        for iv in &r.intervals {
            prop_assert!(
                iv.max_live <= iv.group_size,
                "interval at {}: {} live > group {}",
                iv.start, iv.max_live, iv.group_size
            );
        }

        // Kill provenance: every provider kill is a reclamation the
        // market announced exactly `lead` minutes ahead — notices precede
        // reclamations by the configured lead, and no kill lands
        // unannounced.
        for rec in r.instances.iter().filter(|r| r.termination == Termination::Provider) {
            prop_assert_eq!(
                m.next_reclaim_at(rec.zone, rec.instance_type, rec.ended_at, rec.ended_at + 1),
                Some(rec.ended_at),
                "kill at {} is not a reclamation of its pool", rec.ended_at
            );
            let lead = m.capacity(rec.zone, rec.instance_type).lead();
            let announced = m
                .notices_in(rec.ended_at.saturating_sub(lead), rec.ended_at + 1)
                .iter()
                .any(|n| {
                    n.zone == rec.zone
                        && n.instance_type == rec.instance_type
                        && n.deadline == rec.ended_at
                        && n.at_minute + lead == rec.ended_at
                });
            prop_assert!(announced, "unannounced reclamation at {}", rec.ended_at);
        }

        // Deterministic replay: equal inputs, equal books.
        let again = run(RepairConfig::migrate());
        prop_assert_eq!(r.total_cost, again.total_cost);
        prop_assert_eq!(r.up_minutes, again.up_minutes);
        prop_assert_eq!(r.degraded_minutes, again.degraded_minutes);
        prop_assert_eq!(r.instances.len(), again.instances.len());
    }

    #[test]
    fn higher_extra_portion_never_hurts_availability(
        seed in any::<u64>(),
    ) {
        // Bidding a larger margin over the spot price weakly improves
        // availability in an identical market (same zones chosen: the
        // zone pick of Extra depends only on spot prices, not the
        // portion).
        let m = market(seed, 6, 5);
        let spec = ServiceSpec::lock_service();
        let config = ReplayConfig::new(2 * 24 * 60, 5 * 24 * 60, 3);
        let low = replay_strategy(&m, &spec, ExtraStrategy::new(0, 0.05), config);
        let high = replay_strategy(&m, &spec, ExtraStrategy::new(0, 0.6), config);
        prop_assert!(
            high.availability() >= low.availability() - 1e-12,
            "higher bids reduced availability: {} vs {}",
            high.availability(),
            low.availability()
        );
    }
}

/// Fixed-seed regression: at equal seeds the proactive-migration policy
/// never loses availability to reactive repair under the capacity regime
/// — the advance notice is strictly more information, and the controller
/// must turn it into at-worst-equal degraded time. A fixed derived seed
/// stream (not proptest randomness) keeps the comparison reproducible:
/// pool-occupancy interactions make per-seed dominance an empirical
/// regression bar, not a theorem, so a printed seed must re-run exactly.
#[test]
fn migration_never_loses_to_reactive_at_equal_seeds() {
    let base = 0xC0FFEE;
    let spec = ServiceSpec::lock_service();
    let mut drains_total = 0usize;
    for i in 0..10u64 {
        let seed = derive_seed(derive_seed(base, 0xE1A), i);
        let m = market(seed, 6, 6);
        let config =
            ReplayConfig::new(3 * 24 * 60, 6 * 24 * 60, 3).with_era(BidEra::CapacityReclaim);
        let run = |repair: RepairConfig| {
            let (obs, _clock) = Obs::simulated();
            replay_repair_stored(
                &m,
                &spec,
                ExtraStrategy::new(0, 0.1),
                config,
                repair,
                &ModelStore::new(),
                &obs,
            )
        };
        let reactive = run(RepairConfig::reactive());
        let migrate = run(RepairConfig::migrate());
        assert!(
            migrate.degraded_minutes <= reactive.degraded_minutes,
            "seed {seed:#x}: migrate degraded {} > reactive {}",
            migrate.degraded_minutes,
            reactive.degraded_minutes
        );
        assert!(
            migrate.up_minutes >= reactive.up_minutes,
            "seed {seed:#x}: migrate up {} < reactive {}",
            migrate.up_minutes,
            reactive.up_minutes
        );
        // Billing overlap beyond reactive's books is bounded by the drain
        // windows: the victim runs (and bills) to its kill while the
        // replacement already bills from its early grant — and nothing
        // else double-bills.
        drains_total += migrate
            .audit
            .iter()
            .filter(|r| {
                matches!(&r.kind, AuditKind::Migration { action, .. } if action == "drained")
            })
            .count();
    }
    assert!(
        drains_total >= 1,
        "ten capacity-era markets produced no successful pre-deadline drain"
    );
}
